//! Offline stand-in for the real `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of the rand API the measurement pipeline uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_bool` and `gen_range`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64.  The pipeline
//! only requires a *deterministic, well-mixed* generator — every consumer
//! seeds explicitly via `seed_from_u64` and no code depends on the exact
//! stream of the upstream StdRng — so swapping the real crate back in
//! changes concrete sampled values but no invariant.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

pub use rngs::StdRng;

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (mirrors the upstream trait; only `seed_from_u64` is used).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64 expansion, like upstream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from an RNG (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange {
    /// The sampled element type.
    type Output;

    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }

    /// Uniform value from a range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
