//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic standard RNG: xoshiro256++.
///
/// Statistically strong for simulation purposes, trivially seedable, and —
/// crucially for the scanner's determinism contract — a pure function of the
/// seed handed to [`SeedableRng::seed_from_u64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_respects_extremes_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..1_000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1_000).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u8..=255);
            assert!(w >= 1);
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
