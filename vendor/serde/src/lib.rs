//! Offline stand-in for the real `serde` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the tiny slice of serde it actually exercises: the
//! `Serialize` / `Deserialize` derive markers.  The derives (re-exported from
//! the local `serde_derive`) expand to nothing; the traits below exist so
//! that code written against the real serde API (`use serde::{Serialize,
//! Deserialize};`, bounds in future generic code) keeps compiling unchanged
//! when the genuine crate is swapped back in.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
