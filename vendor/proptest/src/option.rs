//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy generating `Option`s (`None` with probability 1/4, as a rough
/// mirror of upstream's default weighting).
pub struct OptionStrategy<S> {
    inner: S,
}

/// `of(strategy)`: an `Option` strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
