//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s whose elements come from an inner strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `vec(element, size)`: a vector strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
