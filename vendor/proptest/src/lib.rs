//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with range / `Just` /
//! `any` / union strategies, [`collection::vec`], [`option::of`], and the
//! `prop_assert*` macros.  Failing cases are reported with the sampled
//! inputs; shrinking is not implemented (failures print the raw case
//! instead), which is acceptable for a deterministic, seeded test-suite.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run a closure body for each sampled case of a named-argument list.
///
/// Expansion target of [`proptest!`]; not part of the public API surface the
/// tests use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($config:expr; $( $arg:ident in $strategy:expr ),* ; $body:block) => {{
        let config: $crate::test_runner::ProptestConfig = $config;
        // Deterministic seed: property tests must not flake between runs.
        let mut __rng = $crate::test_runner::case_rng(::std::module_path!());
        for __case in 0..config.cases {
            $(
                let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut __rng);
            )*
            // Render inputs up front: the body may consume them by value.
            let __inputs = format!("{:?}", ($(&$arg,)*));
            let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body ::std::result::Result::Ok(()) })();
            if let ::std::result::Result::Err(err) = __result {
                panic!(
                    "proptest case {} failed: {}\ninputs: {}",
                    __case, err, __inputs
                );
            }
        }
    }};
}

/// The `proptest!` block macro: declares `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!($config; $( $arg in $strategy ),* ; $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!(
                    $crate::test_runner::ProptestConfig::default();
                    $( $arg in $strategy ),* ;
                    $body
                );
            }
        )*
    };
}

/// Union of equally-weighted strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::union(vec![
            $( ::std::boxed::Box::new($strategy) ),+
        ])
    };
}

/// Property-test assertion: fails the case (with its inputs) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}
