//! Test-runner plumbing: configuration, case errors and the per-test RNG.

use std::fmt;

pub use rand::rngs::StdRng as TestRngInner;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = TestRngInner;

/// Derive the deterministic RNG for one `proptest!` block.
///
/// Seeded from the module path so distinct test modules explore different
/// streams while every run of the same test is reproducible.
pub fn case_rng(module_path: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in module_path.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the simulation-heavy properties
        // fast while still exploring a meaningful slice of the space.
        ProptestConfig { cases: 64 }
    }
}

/// Failure of a single property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
