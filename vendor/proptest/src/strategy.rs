//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object-safe on purpose: [`crate::prop_oneof!`] stores heterogeneous
/// strategies as `Box<dyn Strategy<Value = T>>`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Tuples of strategies sample component-wise, left to right — the shape
/// `(a_strategy, b_strategy).prop_map(...)` upstream supports.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample uniformly from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

/// Strategy over a type's full domain.
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String patterns act as strategies, mirroring proptest's regex support.
///
/// Only the subset the workspace uses is implemented: a sequence of atoms,
/// where an atom is a literal character or a character class `[...]` (with
/// `a-z` ranges and literal members, `-` literal when first or last), each
/// optionally followed by a `{m}` / `{m,n}` repetition.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("unclosed character class in {self:?}"));
                let members = class_members(&chars[i + 1..close]);
                i = close + 1;
                members
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!alphabet.is_empty(), "empty character class in {self:?}");
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("unclosed repetition in {self:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }
}

fn class_members(body: &[char]) -> Vec<char> {
    let mut members = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "descending range in character class");
            members.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    members
}

/// Equal-weight union of strategies, as built by [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Build a [`Union`] from boxed alternatives.
pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union { options }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}
