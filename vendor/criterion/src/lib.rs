//! Offline stand-in for the `criterion` crate.
//!
//! Exposes the macro / type surface the workspace's bench targets use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`, `black_box`) backed by a simple
//! wall-clock timer: each benchmark runs a warm-up pass plus `sample_size`
//! timed iterations and prints min / mean / max.  No statistics engine, no
//! HTML reports — enough to keep `cargo bench` meaningful offline and let
//! the real crate slot back in without source changes.
//!
//! Three extras support the CI quality gate:
//!
//! * **Filters** — positional CLI arguments (anything not starting with `-`)
//!   select benchmarks by substring on the `group/id` name, mirroring the
//!   real criterion's behaviour: `cargo bench -- ablation_store_codec`.
//! * **Quick mode** — `QEM_BENCH_SAMPLES=<n>` overrides every sample count,
//!   so CI can smoke the benches in seconds.
//! * **JSON artifact** — `QEM_BENCH_JSON=<path>` appends one JSON object per
//!   benchmark (`{"bench":…,"min_ns":…,"mean_ns":…,"max_ns":…,"samples":…}`),
//!   which the `bench-smoke` CI job uploads as `BENCH_pr.json` to track the
//!   performance trajectory per PR.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmarks (as `group/id`) must contain one of these substrings to run;
/// an empty list runs everything.
fn cli_filters() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|arg| !arg.starts_with('-'))
        .collect()
}

/// Sample-count override for quick (CI smoke) runs.
fn sample_override() -> Option<usize> {
    std::env::var("QEM_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
}

/// Append one result line to the `QEM_BENCH_JSON` artifact, if requested.
fn record_json(id: &str, min: Duration, mean: Duration, max: Duration, samples: usize) {
    let Ok(path) = std::env::var("QEM_BENCH_JSON") else {
        return;
    };
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("criterion stub: cannot open QEM_BENCH_JSON={path}");
        return;
    };
    let _ = writeln!(
        file,
        "{{\"bench\":\"{id}\",\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{},\"samples\":{samples}}}",
        min.as_nanos(),
        mean.as_nanos(),
        max.as_nanos(),
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: sample_override().unwrap_or(10),
            filters: cli_filters(),
        }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: sample_override().unwrap_or(10),
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.selected(id) {
            run_bench(id, self.default_sample_size, f);
        }
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = sample_override().unwrap_or_else(|| n.max(1));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        if self._criterion.selected(&full) {
            run_bench(&full, self.sample_size, f);
        }
        self
    }

    /// Close the group (upstream flushes reports here; we have none).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        budget: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {id}: min {min:?} / mean {mean:?} / max {max:?} ({} samples)",
        bencher.samples.len()
    );
    record_json(id, min, mean, max, bencher.samples.len());
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `routine`, once as warm-up and then `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
