//! Offline stand-in for the `criterion` crate.
//!
//! Exposes the macro / type surface the workspace's bench targets use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`, `black_box`) backed by a simple
//! wall-clock timer: each benchmark runs a warm-up pass plus `sample_size`
//! timed iterations and prints min / mean / max.  No statistics engine, no
//! HTML reports — enough to keep `cargo bench` meaningful offline and let
//! the real crate slot back in without source changes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.default_sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Close the group (upstream flushes reports here; we have none).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        budget: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {id}: min {min:?} / mean {mean:?} / max {max:?} ({} samples)",
        bencher.samples.len()
    );
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `routine`, once as warm-up and then `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
