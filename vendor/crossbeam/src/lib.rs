//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Provides the two pieces the workspace uses — multi-producer/multi-consumer
//! [`channel`]s and [`scope`]d threads — implemented over `std` primitives
//! (`Mutex` + `Condvar`, `std::thread::scope`).  Semantics match upstream for
//! the supported surface: cloneable senders *and* receivers, FIFO delivery to
//! competing consumers, disconnection when the last sender (receiver) drops.

pub mod channel;

use std::any::Any;

/// Scoped-thread handle passed to [`scope`] closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread tied to the scope.  The closure receives the scope
    /// (upstream crossbeam's signature) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope in which borrowing threads can be spawned; joins them all
/// before returning.  Returns `Err` if any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_propagates_results() {
        let data = [1u64, 2, 3];
        let sum = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
