//! MPMC channels: the `crossbeam::channel` subset the workspace uses.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    /// Signalled whenever a slot frees up in a bounded channel.
    space: Condvar,
    /// Queue capacity; `usize::MAX` for unbounded channels.
    capacity: usize,
}

/// The sending half of an MPMC channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an MPMC channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
        space: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(usize::MAX)
}

/// Create a bounded MPMC channel: [`Sender::send`] blocks while the queue
/// holds `capacity` messages.  A capacity of zero is rounded up to one (the
/// rendezvous semantics of upstream's zero-capacity channel are not needed
/// by this workspace).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(capacity.max(1))
}

impl<T> Sender<T> {
    /// Enqueue a message, blocking while a bounded channel is full; fails
    /// only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                drop(state);
                self.shared.available.notify_one();
                return Ok(());
            }
            state = self.shared.space.wait(state).expect("channel poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake blocked receivers so they observe disconnection.
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue a message, blocking while the channel is empty but connected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.space.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.available.wait(state).expect("channel poisoned");
        }
    }

    /// Non-blocking pop: `None` when the queue is currently empty.
    pub fn try_recv(&self) -> Option<T> {
        let value = self
            .shared
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .pop_front();
        if value.is_some() {
            self.shared.space.notify_one();
        }
        value
    }

    /// Blocking iterator that drains the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake senders blocked on a full bounded queue so they observe
            // disconnection instead of waiting forever.
            self.shared.space.notify_all();
        }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn competing_consumers_partition_the_stream() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..1_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let (mut a, mut b): (Vec<i32>, Vec<i32>) = std::thread::scope(|s| {
            let ha = s.spawn(move || rx.iter().collect());
            let hb = s.spawn(move || rx2.iter().collect());
            (ha.join().unwrap(), hb.join().unwrap())
        });
        a.append(&mut b);
        a.sort_unstable();
        assert_eq!(a, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_blocks_until_a_slot_frees_up() {
        let (tx, rx) = bounded(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let sender = s.spawn(move || {
                // Blocks until the consumer below pops a message.
                tx.send(2).unwrap();
                drop(tx);
            });
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2]);
            sender.join().unwrap();
        });
    }

    #[test]
    fn bounded_send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let sender = s.spawn(move || tx.send(2));
            // The sender is (or will be) blocked on the full queue; dropping
            // the receiver must unblock it with an error.
            drop(rx);
            assert_eq!(sender.join().unwrap(), Err(SendError(2)));
        });
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn recv_fails_after_all_senders_drop_and_queue_drains() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
