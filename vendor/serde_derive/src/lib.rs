//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! The measurement pipeline only uses `#[derive(Serialize, Deserialize)]` as
//! a marker (nothing in the workspace serialises to a concrete format yet),
//! so the derives expand to nothing.  When the repo gains a real data-export
//! path, these can be replaced by the upstream crate without touching any
//! call site.

use proc_macro::TokenStream;

/// `#[derive(Serialize)]` — accepted and expanded to an empty item list.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// `#[derive(Deserialize)]` — accepted and expanded to an empty item list.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
