//! Facade crate for the reproduction of "ECN with QUIC: Challenges in the
//! Wild" (IMC '23).
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single package.  See `README.md` for a tour and
//! `DESIGN.md` for the mapping from paper sections to modules.

#![forbid(unsafe_code)]

pub use qem_core as core;
pub use qem_netsim as netsim;
pub use qem_obs as obs;
pub use qem_packet as packet;
pub use qem_quic as quic;
pub use qem_store as store;
pub use qem_tcp as tcp;
pub use qem_tracebox as tracebox;
pub use qem_web as web;
pub use qem_workload as workload;
