//! Kill-and-resume: a census that streams into a `qem-store` directory,
//! dies mid-scan, and is completed without re-measuring a single persisted
//! host — yielding byte-identical tables to an uninterrupted in-memory run.
//!
//! Run with: `cargo run --release --example resume`

use qem::core::reports::table1;
use qem::core::scanner::ScanOptions;
use qem::core::{Campaign, CampaignOptions, Scanner, VantagePoint};
use qem::store::{scan_into, CampaignStoreExt, CampaignWriter, SnapshotMeta};
use qem::web::{Universe, UniverseConfig};
use std::fs;

fn main() {
    let config = UniverseConfig::default();
    println!(
        "generating universe (scale 1:{}) ...",
        (1.0 / config.scale).round() as u64
    );
    let universe = Universe::generate(&config);
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions::paper_default();
    let vantage = VantagePoint::main();

    let dir = std::env::temp_dir().join(format!("qem-resume-example-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    // ---- Phase 1: the campaign that dies ---------------------------------
    // Stream the first ~60% of the scan population into the store, then
    // "crash": drop the writer without finish().  What stays behind is a
    // valid prefix — checksummed segments plus the snapshot metadata.
    let population = universe.scan_population(false);
    let cut = population.len() * 3 / 5;
    println!(
        "phase 1: scanning ... and killing the campaign after {cut} of {} hosts",
        population.len()
    );
    {
        let meta = SnapshotMeta::for_campaign(&options, &vantage, false);
        let mut writer = CampaignWriter::create(&dir, &meta)
            .expect("create store")
            .with_segment_capacity(512);
        let scanner = Scanner::new(
            &universe,
            vantage.clone(),
            ScanOptions {
                date: options.date,
                ipv6: false,
                probe: options.probe,
                trace_sample_probability: options.trace_sample_probability,
                workers: options.workers,
                seed: options.seed,
                cross_traffic: options.cross_traffic,
                retry: qem_core::RetryPolicy::none(),
            },
        );
        scan_into(&scanner, &population[..cut], |m| writer.append(m)).expect("stream scan");
        // The writer is dropped here without finish() — the "kill -9".
    }
    let segments = fs::read_dir(&dir)
        .expect("read store dir")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|ext| ext == "qseg"))
        })
        .count();
    println!("         store now holds {segments} sealed segment files, no COMPLETE marker");

    // ---- Phase 2: resume --------------------------------------------------
    // The store knows the campaign's options and which hosts are persisted;
    // resume scans only the remainder.  Per-host RNG derivation makes the
    // completed snapshot bit-identical to a never-interrupted run.
    println!("phase 2: resuming the campaign from the store ...");
    let outcome = campaign
        .resume_snapshot_to_store(&dir, 0)
        .expect("resume campaign");
    println!(
        "         reused {} persisted hosts, scanned {} remaining hosts",
        outcome.skipped_hosts, outcome.scanned_hosts
    );
    assert!(
        outcome.skipped_hosts > 0,
        "resume must skip persisted hosts"
    );
    assert_eq!(
        outcome.skipped_hosts + outcome.scanned_hosts,
        population.len()
    );

    // ---- Phase 3: store-backed reports ------------------------------------
    // Report builders consume the store directly (streaming, one segment in
    // memory at a time) and must match the in-memory run byte for byte.
    println!("phase 3: rendering Table 1 from the store and from memory ...\n");
    let in_memory = campaign.run_snapshot(&vantage, &options, false);
    let from_store = table1(&universe, &outcome.store).to_string();
    let from_memory = table1(&universe, &in_memory).to_string();
    assert_eq!(
        from_store, from_memory,
        "store-backed report must be identical"
    );
    println!("{from_store}");
    println!("store-backed and in-memory Table 1 are byte-identical ✓");

    let bytes: u64 = fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!(
        "store on disk: {} files, {:.1} KiB for {} hosts",
        fs::read_dir(&dir).expect("read store dir").count(),
        bytes as f64 / 1024.0,
        population.len()
    );

    let _ = fs::remove_dir_all(&dir);
}
