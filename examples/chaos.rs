//! Chaos matrix: the netbench workload under injected network faults.
//!
//! Runs the two fault scenarios — `lossy-bottleneck` (steady random loss +
//! jitter with a mid-run corruption window) and `flapping-link` (a link
//! that goes down 200 ms out of every second, plus reordering) — under the
//! ECN-on, ECN-off and CE-blackholed variants and prints the comparison
//! tables, including the fault-injection counter section.
//!
//! Run with: `cargo run --release --example chaos`
//!
//! Options:
//!
//! * `--workers <n>` — worker-thread budget for running the three variants
//!   of each scenario in parallel (`0` = one per core; the default).  The
//!   output is byte-identical for every value — CI diffs a `--workers 1`
//!   run against `--workers 0`, and the golden snapshot in
//!   `tests/data/golden_chaos_report.txt` pins the default seed.
//! * `--seed <n>` — scenario seed (default 7, the golden-snapshot seed).
//! * `--metrics` — also print each scenario's ecn-on metrics snapshot as
//!   JSON (fault counters included).

use qem_core::executor::ShardedExecutor;
use qem_workload::{EcnVariant, Scenario, WorkloadComparison};

fn parse_args() -> (usize, u64, bool) {
    let mut workers = 0usize;
    let mut seed = 7u64;
    let mut metrics = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--workers requires a number");
                    std::process::exit(2);
                });
                workers = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid worker count: {value}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--seed requires a number");
                    std::process::exit(2);
                });
                seed = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid seed: {value}");
                    std::process::exit(2);
                });
            }
            "--metrics" => metrics = true,
            other => {
                eprintln!(
                    "unknown argument: {other} (expected --workers <n>, --seed <n> or --metrics)"
                );
                std::process::exit(2);
            }
        }
    }
    (workers, seed, metrics)
}

fn main() {
    let (workers, seed, metrics) = parse_args();
    let executor = ShardedExecutor::new(workers);

    for scenario in [
        Scenario::lossy_bottleneck(seed),
        Scenario::flapping_link(seed),
    ] {
        // One variant per shard: each run is a pure function of
        // (scenario, variant) — fault plans draw from per-flow seeded RNGs,
        // never ambient state — so the executor's input-order reassembly
        // makes the comparison identical for every worker count.
        let reports = executor.run(&EcnVariant::ALL, |variant| scenario.run(*variant));
        let comparison = WorkloadComparison {
            scenario: scenario.name.clone(),
            seed: scenario.seed,
            reports,
        };
        print!("{comparison}");
        println!();

        if metrics {
            if let Some(report) = comparison
                .reports
                .iter()
                .find(|r| r.variant == EcnVariant::EcnOn)
            {
                print!("{}", report.metrics.to_json());
            }
        }
    }
}
