//! Netbench-style workload comparison: what ECN buys an application.
//!
//! Runs the default workload scenario (QUIC + TCP bulk transfers, a 30 fps
//! RTC stream and background load over one shared bottleneck) under the
//! ECN-on, ECN-off and CE-blackholed variants and prints the comparison
//! tables: bulk goodput CDF, flow completion times, RTC frame lateness and
//! the bottleneck queue counters.
//!
//! Run with: `cargo run --release --example netbench`
//!
//! Options:
//!
//! * `--workers <n>` — worker-thread budget for running the three variants
//!   in parallel (`0` = one per core; the default).  The output is
//!   byte-identical for every value — CI diffs a `--workers 1` run against
//!   `--workers 0`.
//! * `--seed <n>` — scenario seed (default 7, the golden-snapshot seed).
//! * `--metrics` — also print the ecn-on variant's metrics snapshot as JSON.

use qem_core::executor::ShardedExecutor;
use qem_workload::{EcnVariant, Scenario, WorkloadComparison};

fn parse_args() -> (usize, u64, bool) {
    let mut workers = 0usize;
    let mut seed = 7u64;
    let mut metrics = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--workers requires a number");
                    std::process::exit(2);
                });
                workers = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid worker count: {value}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--seed requires a number");
                    std::process::exit(2);
                });
                seed = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid seed: {value}");
                    std::process::exit(2);
                });
            }
            "--metrics" => metrics = true,
            other => {
                eprintln!(
                    "unknown argument: {other} (expected --workers <n>, --seed <n> or --metrics)"
                );
                std::process::exit(2);
            }
        }
    }
    (workers, seed, metrics)
}

fn main() {
    let (workers, seed, metrics) = parse_args();
    let scenario = Scenario::netbench_default(seed);

    // One variant per shard: each run is a pure function of
    // (scenario, variant), so the executor's input-order reassembly makes
    // the comparison identical for every worker count.
    let executor = ShardedExecutor::new(workers);
    let reports = executor.run(&EcnVariant::ALL, |variant| scenario.run(*variant));
    let comparison = WorkloadComparison {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        reports,
    };
    print!("{comparison}");

    if metrics {
        if let Some(report) = comparison
            .reports
            .iter()
            .find(|r| r.variant == EcnVariant::EcnOn)
        {
            print!("{}", report.metrics.to_json());
        }
    }
}
