//! The main-vantage-point census (paper §5 and §7): scans the synthetic
//! com/net/org and toplist populations via IPv4 and IPv6 and regenerates
//! Tables 1, 2, 3, 5 and 6 plus Figure 5 and the §5.1 parking check.
//!
//! Run with: `cargo run --release --example census`
//!
//! Options:
//!
//! * `--workers <n>` — worker-thread budget (`0` = one per core; the
//!   default).  The output is byte-identical for every value — CI's
//!   `determinism-gate` job diffs a `--workers 1` run against `--workers 0`.
//! * `--tiny` — use the tiny test universe instead of the full 1:250 scale
//!   (what CI runs to keep the gate fast).
//! * `--metrics` — print the run's telemetry (deterministic scan metrics as
//!   JSON on stdout; wall-clock throughput on stderr, where it cannot
//!   perturb the determinism gate's byte diff).

use qem_core::reports::{figure5, table1, table2, table3, table5, table6};
use qem_core::{Campaign, CampaignOptions};
use qem_obs::{RateMeter, WallClock};
use qem_web::{parking, Universe, UniverseConfig};

fn parse_args() -> (usize, bool, bool) {
    let mut workers = 0usize;
    let mut tiny = false;
    let mut metrics = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--workers requires a number");
                    std::process::exit(2);
                });
                workers = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid worker count: {value}");
                    std::process::exit(2);
                });
            }
            "--tiny" => tiny = true,
            "--metrics" => metrics = true,
            other => {
                eprintln!(
                    "unknown argument: {other} (expected --workers <n>, --tiny or --metrics)"
                );
                std::process::exit(2);
            }
        }
    }
    (workers, tiny, metrics)
}

fn main() {
    let (workers, tiny, metrics) = parse_args();
    let config = if tiny {
        UniverseConfig::tiny()
    } else {
        UniverseConfig::default()
    };
    println!(
        "generating universe (scale 1:{}) ...",
        (1.0 / config.scale).round() as u64
    );
    let universe = Universe::generate(&config);
    println!(
        "  {} domains, {} hosts, {} providers\n",
        universe.domains.len(),
        universe.hosts.len(),
        universe.providers.len()
    );

    let campaign = Campaign::new(&universe);
    println!("running main vantage point campaign (IPv4 + IPv6, week 15/13 2023) ...\n");
    let options = CampaignOptions {
        workers,
        ..CampaignOptions::paper_default()
    };
    let clock = WallClock::new();
    let meter = RateMeter::start(&clock);
    let (result, telemetry) = campaign.run_main_with_telemetry(&options, true);
    let elapsed = meter.elapsed_micros(&clock);

    println!("{}", table1(&universe, &result.v4));
    println!("{}", table2(&universe, &result.v4));
    println!("{}", table3(&universe, &result.v4));
    println!("{}", table5(&universe, &result.v4, result.v6.as_ref()));
    println!("{}", table6(&universe, &result.v4));
    if let Some(v6) = &result.v6 {
        println!("{}", figure5(&universe, &result.v4, v6));
    }

    let (parked, share) = parking::parked_quic_share(&universe);
    println!(
        "Parking check (§5.1): {parked} QUIC com/net/org domains parked ({:.2} % — paper: 0.6 %)",
        share * 100.0
    );

    if metrics {
        // Deterministic telemetry → stdout (part of the byte-diffed output);
        // wall-clock throughput → stderr (varies run to run, by design).
        print!("{}", telemetry.to_json());
        let hosts = telemetry
            .section("scan.v4")
            .and_then(|s| s.counter("scan.hosts"))
            .unwrap_or(0)
            + telemetry
                .section("scan.v6")
                .and_then(|s| s.counter("scan.hosts"))
                .unwrap_or(0);
        eprintln!(
            "scanned {hosts} hosts in {:.2}s ({:.0} hosts/sec wall clock)",
            elapsed as f64 / 1e6,
            meter.per_second(&clock, hosts)
        );
    }
}
