//! The §6.3 comparison: probe every com/net/org host in parallel via TCP and
//! QUIC while replacing ECT(0) with CE, and regenerate Figure 6 — once with
//! the paper's idle-path methodology and once with the opt-in
//! `cross_traffic` scenario, where CE marks emerge from shared-bottleneck
//! occupancy instead of the probe codepoint.
//!
//! Run with: `cargo run --release --example tcp_vs_quic`

use qem_core::reports::figure6;
use qem_core::{Campaign, CampaignOptions};
use qem_web::{Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(&UniverseConfig::default());
    let campaign = Campaign::new(&universe);
    println!("running CE-probing campaign (week 20/2023) ...\n");
    let result = campaign.run_main(&CampaignOptions::ce_probing(), false);
    let fig = figure6(&universe, &result.v4);
    println!("{fig}");

    let tcp_mirror: u64 = fig
        .tcp
        .iter()
        .filter(|(c, _)| {
            matches!(
                c,
                qem_core::reports::TcpCategory::CeMirrorNoUseNegotiated
                    | qem_core::reports::TcpCategory::CeMirrorUseNegotiated
            )
        })
        .map(|(_, v)| v)
        .sum();
    let tcp_total: u64 = fig.tcp.values().sum();
    let quic_mirror: u64 = fig
        .quic
        .iter()
        .filter(|(c, _)| {
            matches!(
                c,
                qem_core::reports::QuicCeCategory::CeMirrorNoUse
                    | qem_core::reports::QuicCeCategory::CeMirrorUse
            )
        })
        .map(|(_, v)| v)
        .sum();
    let quic_total: u64 = fig.quic.values().sum();
    println!(
        "TCP mirrors CE for {:.1} % of TCP-reachable domains; QUIC mirrors CE for {:.1} % of QUIC-reachable domains",
        100.0 * tcp_mirror as f64 / tcp_total.max(1) as f64,
        100.0 * quic_mirror as f64 / quic_total.max(1) as f64,
    );
    println!("(paper: ~70 % via TCP vs. <10 % via QUIC)");

    // The engine's what-if variant: standard ECT(0) probing, but with every
    // measured host behind a congested shared bottleneck.  CE now reaches the
    // servers because of *congestion*, so the same Figure 6 categories light
    // up without ever forging a CE codepoint at the sender.
    println!("\nre-running with ECT(0) probes through a congested shared bottleneck ...\n");
    let loaded = campaign.run_main(
        &CampaignOptions::paper_default().with_cross_traffic(qem_core::CrossTraffic::congested()),
        false,
    );
    let fig_loaded = figure6(&universe, &loaded.v4);
    println!("{fig_loaded}");
}
