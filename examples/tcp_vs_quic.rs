//! The §6.3 comparison: probe every com/net/org host in parallel via TCP and
//! QUIC while replacing ECT(0) with CE, and regenerate Figure 6.
//!
//! Run with: `cargo run --release --example tcp_vs_quic`

use qem_core::reports::figure6;
use qem_core::{Campaign, CampaignOptions};
use qem_web::{Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(&UniverseConfig::default());
    let campaign = Campaign::new(&universe);
    println!("running CE-probing campaign (week 20/2023) ...\n");
    let result = campaign.run_main(&CampaignOptions::ce_probing(), false);
    let fig = figure6(&universe, &result.v4);
    println!("{fig}");

    let tcp_mirror: u64 = fig
        .tcp
        .iter()
        .filter(|(c, _)| {
            matches!(
                c,
                qem_core::reports::TcpCategory::CeMirrorNoUseNegotiated
                    | qem_core::reports::TcpCategory::CeMirrorUseNegotiated
            )
        })
        .map(|(_, v)| v)
        .sum();
    let tcp_total: u64 = fig.tcp.values().sum();
    let quic_mirror: u64 = fig
        .quic
        .iter()
        .filter(|(c, _)| {
            matches!(
                c,
                qem_core::reports::QuicCeCategory::CeMirrorNoUse
                    | qem_core::reports::QuicCeCategory::CeMirrorUse
            )
        })
        .map(|(_, v)| v)
        .sum();
    let quic_total: u64 = fig.quic.values().sum();
    println!(
        "TCP mirrors CE for {:.1} % of TCP-reachable domains; QUIC mirrors CE for {:.1} % of QUIC-reachable domains",
        100.0 * tcp_mirror as f64 / tcp_total.max(1) as f64,
        100.0 * quic_mirror as f64 / quic_total.max(1) as f64,
    );
    println!("(paper: ~70 % via TCP vs. <10 % via QUIC)");
}
