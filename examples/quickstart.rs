//! Quickstart: one ECN-validating QUIC connection over a clean path and over
//! an Arelion-style re-marking path.
//!
//! Run with: `cargo run --example quickstart`

use qem_netsim::{build_transit_path, Asn, DuplexPath, TransitProfile};
use qem_quic::{ClientConfig, ConnectionRun, DriverConfig, ServerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::IpAddr;

fn probe(label: &str, profile: TransitProfile, behavior: ServerBehavior) {
    let client: IpAddr = "192.0.2.10".parse().unwrap();
    let server: IpAddr = "198.51.100.80".parse().unwrap();
    let path = DuplexPath::symmetric_clean_reverse(build_transit_path(
        Asn::DFN,
        Asn(16509),
        profile,
        false,
    ));
    let mut rng = StdRng::seed_from_u64(1);
    let outcome = ConnectionRun::new(
        ClientConfig::paper_default("www.example.org"),
        behavior,
        &path,
        DriverConfig::new(client, server),
    )
    .execute(&mut rng)
    .connection;
    let report = outcome.report;
    println!("--- {label} ---");
    println!("  connected:        {}", report.connected);
    println!(
        "  server header:    {}",
        report
            .response
            .as_ref()
            .and_then(|r| r.server.clone())
            .unwrap_or_else(|| "<none>".to_string())
    );
    println!("  sent codepoints:  {}", report.sent_counts);
    println!("  mirrored counts:  {}", report.mirrored_counts);
    println!("  ECN validation:   {:?}", report.ecn_state);
    println!(
        "  forward arrivals: {} (ground truth at the server)",
        outcome.forward_arrival_ecn
    );
    println!();
}

fn main() {
    println!("ECN with QUIC — quickstart\n");
    probe(
        "clean path, correctly mirroring server (validation succeeds)",
        TransitProfile::Clean,
        ServerBehavior::accurate().with_server_header("Caddy/2.7"),
    );
    probe(
        "clean path, server without ECN support (no mirroring)",
        TransitProfile::Clean,
        ServerBehavior::no_mirroring().with_server_header("cloudflare"),
    );
    probe(
        "AS1299-style ECT(0)->ECT(1) re-marking path (validation fails)",
        TransitProfile::Remarking { asn: Asn::ARELION },
        ServerBehavior::accurate().with_server_header("LiteSpeed"),
    );
    probe(
        "AS1299-style ToS bleaching path (marks never arrive)",
        TransitProfile::Clearing { asn: Asn::ARELION },
        ServerBehavior::accurate().with_server_header("LiteSpeed"),
    );
}
