//! The distributed cloud measurement (paper §4.3 / §8): probe the IP-dedup'd
//! QUIC hosts from 16 AWS and Vultr locations and regenerate Figure 7.
//!
//! Run with: `cargo run --release --example global_vantage`

use qem_core::reports::figure7;
use qem_core::{Campaign, CampaignOptions};
use qem_web::{Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(&UniverseConfig::default());
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions::paper_default();

    println!("running main vantage point campaign (IPv4 + IPv6) ...");
    let main = campaign.run_main(&options, true);
    println!(
        "  {} QUIC hosts found; forwarding deduplicated IPs to 16 cloud workers ...\n",
        main.v4.quic_host_count()
    );
    let cloud = campaign.run_cloud(&main.v4, main.v6.as_ref(), &options);
    println!("{}", figure7(&universe, &main.v4, &cloud));
    println!("(paper: 0.2 % – 0.4 % of domains pass ECN validation everywhere)");
}
