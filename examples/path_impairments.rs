//! Network-layer analysis (paper §6.1 and §7.3): tracebox the hosts that show
//! abnormal ECN behaviour and regenerate Table 4 (codepoint clearing per AS)
//! and Table 7 (validation failures vs. visible path impact), plus one fully
//! printed trace for illustration.
//!
//! Run with: `cargo run --release --example path_impairments`

use qem_core::reports::{table4, table7};
use qem_core::{Campaign, CampaignOptions};
use qem_netsim::Asn;
use qem_tracebox::{analyze_trace, trace_path, TraceConfig};
use qem_web::{Universe, UniverseConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::IpAddr;

fn main() {
    let universe = Universe::generate(&UniverseConfig::default());
    let campaign = Campaign::new(&universe);
    println!("running main vantage point campaign (IPv4) ...\n");
    let result = campaign.run_main(&CampaignOptions::paper_default(), false);

    println!("{}", table4(&universe, &result.v4));
    println!("{}", table7(&universe, &result.v4));

    // Illustrative single trace towards a host behind a re-marking path.
    if let Some(host) = universe
        .hosts
        .iter()
        .find(|h| matches!(h.transit_v4, qem_netsim::TransitProfile::Remarking { .. }))
    {
        let path = host.duplex_path_from(Asn::DFN, false);
        let source: IpAddr = "192.0.2.10".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let trace = trace_path(
            &path.forward,
            source,
            IpAddr::V4(host.ipv4),
            &TraceConfig::default(),
            &mut rng,
        );
        println!(
            "Sample trace towards {} ({}):",
            host.ipv4, universe.providers[host.provider].name
        );
        for hop in &trace.hops {
            match (hop.router, hop.observed_ecn) {
                (Some(router), Some(ecn)) => println!(
                    "  ttl {:>2}  {:<18} {:<24} quoted ECN: {}",
                    hop.ttl,
                    router,
                    universe.as_org.org_of_ip(router),
                    ecn
                ),
                _ => println!("  ttl {:>2}  *  (timeout)", hop.ttl),
            }
        }
        let analysis = analyze_trace(&trace, &|ip| universe.as_org.asn_of_ip(ip));
        println!("  verdict: {:?}", analysis.verdict);
        for change in &analysis.changes {
            println!(
                "  change {} -> {} first visible at ttl {} (attributed to {})",
                change.from,
                change.to,
                change.visible_at_ttl,
                change
                    .attributed_asn()
                    .map(|asn| universe.as_org.org_name_or_asn(asn))
                    .unwrap_or_else(|| "<unknown>".to_string())
            );
        }
    }
}
