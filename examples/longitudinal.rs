//! Longitudinal view (paper §5.3): monthly snapshots from June 2022 to April
//! 2023, regenerating Figure 3 (mirroring by web server over time) and
//! Figure 4/8 (per-domain transitions with QUIC versions).
//!
//! Run with: `cargo run --release --example longitudinal`

use qem_core::reports::{figure3, figure4};
use qem_core::{Campaign, CampaignOptions};
use qem_web::{SnapshotDate, Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(&UniverseConfig::default());
    let campaign = Campaign::new(&universe);

    println!("running monthly snapshots 2022-06 .. 2023-04 ...\n");
    let snapshots = campaign.run_longitudinal(
        &SnapshotDate::longitudinal_range(),
        &CampaignOptions::paper_default(),
    );
    println!("{}", figure3(&universe, &snapshots));

    let key_dates = [
        SnapshotDate::JUN_2022,
        SnapshotDate::FEB_2023,
        SnapshotDate::APR_2023,
    ];
    let key_snapshots: Vec<_> = snapshots
        .iter()
        .filter(|s| key_dates.contains(&s.date))
        .cloned()
        .collect();
    println!("{}", figure4(&universe, &key_snapshots));
}
