//! End-to-end shape test: run the full main-vantage-point campaign on the
//! default-scale universe and check that the recovered tables reproduce the
//! paper's qualitative findings (who wins, by roughly what factor).

use qem_core::reports::{figure5, table1, table2, table3, table5, table6};
use qem_core::{Campaign, CampaignOptions, EcnClass};
use qem_web::{parking, Universe, UniverseConfig};

/// One campaign shared by all assertions (generating it is the expensive part).
fn run() -> (Universe, qem_core::CampaignResult) {
    let universe = Universe::generate(&UniverseConfig::default());
    let campaign = Campaign::new(&universe);
    let result = campaign.run_main(&CampaignOptions::paper_default(), true);
    (universe, result)
}

#[test]
fn census_reproduces_the_papers_headline_numbers() {
    let (universe, result) = run();
    let t1 = table1(&universe, &result.v4);

    // --- Table 1 -----------------------------------------------------------
    let cno_domains = t1
        .rows
        .iter()
        .find(|r| r.scope == "com/net/org" && r.unit == "Domains")
        .unwrap();
    // Paper: 183.28 M domains, 159.40 M resolved, 17.30 M QUIC (scaled 1:1000).
    assert!((175_000..=195_000).contains(&cno_domains.total));
    assert!(cno_domains.resolved < cno_domains.total);
    assert!((15_000..=20_000).contains(&cno_domains.quic));
    // Paper: 5.6 % mirroring, 4.2 % use.
    assert!(
        cno_domains.mirroring > 0.03 && cno_domains.mirroring < 0.09,
        "mirroring share {}",
        cno_domains.mirroring
    );
    assert!(cno_domains.uses > 0.02 && cno_domains.uses < 0.07);
    assert!(cno_domains.uses < cno_domains.mirroring + 0.02);

    let cno_ips = t1
        .rows
        .iter()
        .find(|r| r.scope == "com/net/org" && r.unit == "IPs")
        .unwrap();
    // Paper: a considerably larger share of IPs than of domains mirrors
    // (19.5 % vs 5.6 %) because the biggest CDNs do not mirror.
    assert!(cno_ips.mirroring > cno_domains.mirroring * 2.0);

    let toplist_domains = t1
        .rows
        .iter()
        .find(|r| r.scope == "Toplists" && r.unit == "Domains")
        .unwrap();
    // Paper: toplist mirroring (3.3 %) is lower than com/net/org (5.6 %).
    assert!(toplist_domains.mirroring < cno_domains.mirroring);

    // --- Table 2 -----------------------------------------------------------
    let t2 = table2(&universe, &result.v4);
    let rank_of = |org: &str| t2.row(org).map(|r| r.rank).unwrap_or(usize::MAX);
    assert_eq!(rank_of("Cloudflare"), 1);
    assert_eq!(rank_of("Google"), 2);
    assert!(rank_of("Hostinger") <= 4);
    // The two biggest CDNs do not mirror at all.
    assert_eq!(t2.row("Cloudflare").unwrap().mirroring, 0);
    assert_eq!(t2.row("Cloudflare").unwrap().uses, 0);
    // Google mirrors on a small share of its domains but never uses ECN.
    let google = t2.row("Google").unwrap();
    assert!(google.mirroring > 0);
    assert!((google.mirroring as f64) < 0.1 * google.total as f64);
    assert_eq!(google.uses, 0);
    // Medium providers carry the adoption: SingleHop mirrors on most of its
    // domains (paper: 114 k of 128 k).
    let singlehop = t2.row("SingleHop").unwrap();
    assert!(singlehop.mirroring as f64 > 0.7 * singlehop.total as f64);

    // --- Table 3 -----------------------------------------------------------
    let t3 = table3(&universe, &result.v4);
    assert_eq!(t3.row("Cloudflare").unwrap().rank, 1);
    // Amazon is the top toplist ECN supporter (s2n-quic on CloudFront).
    let amazon = t3
        .row("Amazon")
        .expect("Amazon listed in the toplist table");
    assert!(amazon.mirroring as f64 > 0.6 * amazon.total as f64);
    assert!(amazon.uses > 0);

    // --- Table 5 -----------------------------------------------------------
    let t5 = table5(&universe, &result.v4, result.v6.as_ref());
    let mirroring_total = t5.v4_domains(EcnClass::Undercount)
        + t5.v4_domains(EcnClass::RemarkEct1)
        + t5.v4_domains(EcnClass::AllCe)
        + t5.v4_domains(EcnClass::Capable)
        + t5.v4_domains(EcnClass::Other);
    // Paper: validation fails for ~96 % of mirroring endpoints.
    let capable = t5.v4_domains(EcnClass::Capable);
    assert!(capable > 0);
    assert!(
        (capable as f64) < 0.1 * mirroring_total as f64,
        "capable {capable} of {mirroring_total} mirroring domains"
    );
    // Undercount is the biggest failure class, re-marking second.
    assert!(t5.v4_domains(EcnClass::Undercount) > t5.v4_domains(EcnClass::RemarkEct1));
    assert!(t5.v4_domains(EcnClass::RemarkEct1) > t5.v4_domains(EcnClass::AllCe));
    // No-mirroring dwarfs everything.
    assert!(t5.v4_domains(EcnClass::NoMirroring) > 10 * mirroring_total);
    // Headline: only ~0.22 % of QUIC domains can actually use ECN.
    let capable_share = capable as f64 / cno_domains.quic as f64;
    assert!(
        capable_share > 0.0005 && capable_share < 0.01,
        "capable share {capable_share}"
    );
    // IPv6: far fewer domains, almost no clearing, lower overall support.
    assert!(t5.v6_domains(EcnClass::NoMirroring) < t5.v4_domains(EcnClass::NoMirroring));
    assert!(t5.v6_domains(EcnClass::Capable) > 0);

    // --- Table 6 -----------------------------------------------------------
    let t6 = table6(&universe, &result.v4);
    assert_eq!(t6.top_org(EcnClass::Capable), Some("Amazon"));
    let undercount_top = t6.top_org(EcnClass::Undercount).unwrap().to_string();
    assert!(
        ["Google", "SingleHop", "Hostinger"].contains(&undercount_top.as_str()),
        "unexpected top undercount org {undercount_top}"
    );

    // --- Figure 5 ----------------------------------------------------------
    let fig5 = figure5(&universe, &result.v4, result.v6.as_ref().unwrap());
    let v4_total: u64 = fig5.v4.values().sum();
    let v6_total: u64 = fig5.v6.values().sum();
    // Paper: ~17 M QUIC domains via IPv4 vs ~6 M via IPv6.
    assert!(v6_total * 2 < v4_total);
    assert!(v6_total > 0);

    // --- §5.1 parking check -------------------------------------------------
    let (_, parked_share) = parking::parked_quic_share(&universe);
    assert!(parked_share < 0.02, "parking must not bias the data");
}
