//! Regression tests for the scanner's central determinism promise: a scan is
//! a pure function of `(universe, vantage, options minus workers)` — the
//! worker count only changes how the work is scheduled, never what is
//! measured.  The sharded executor relies on this to fan campaigns out
//! across every core without perturbing the paper's numbers.

use qem_core::{Campaign, CampaignOptions, HostMeasurement, ScanOptions, Scanner};
use qem_core::vantage::VantagePoint;
use qem_web::{SnapshotDate, Universe, UniverseConfig};

fn universe() -> Universe {
    Universe::generate(&UniverseConfig::tiny())
}

fn scan_with_workers(universe: &Universe, workers: usize) -> Vec<HostMeasurement> {
    let options = ScanOptions {
        workers,
        ..ScanOptions::paper_default(SnapshotDate::APR_2023)
    };
    Scanner::new(universe, VantagePoint::main(), options).scan_all()
}

#[test]
fn scan_results_are_identical_across_worker_counts() {
    let universe = universe();
    let baseline = scan_with_workers(&universe, 1);
    assert!(!baseline.is_empty());
    for workers in [4, 8] {
        let scan = scan_with_workers(&universe, workers);
        // `HostMeasurement` compares every field of every report, so this is
        // the full byte-for-byte equivalence of the measurement sets.
        assert_eq!(baseline, scan, "scan diverged at workers={workers}");
    }
}

#[test]
fn auto_worker_scan_matches_single_threaded_scan() {
    let universe = universe();
    // workers == 0 resolves to one worker per core — whatever this machine
    // has, the results must not move.
    assert_eq!(
        scan_with_workers(&universe, 1),
        scan_with_workers(&universe, 0)
    );
}

#[test]
fn campaigns_are_identical_across_worker_counts() {
    let universe = universe();
    let run = |workers: usize| {
        let options = CampaignOptions {
            workers,
            ..CampaignOptions::paper_default()
        };
        Campaign::new(&universe).run_main(&options, true)
    };
    let baseline = run(1);
    for workers in [4, 8] {
        let result = run(workers);
        assert_eq!(
            baseline.v4.hosts, result.v4.hosts,
            "IPv4 campaign diverged at workers={workers}"
        );
        assert_eq!(
            baseline.v6.as_ref().map(|s| &s.hosts),
            result.v6.as_ref().map(|s| &s.hosts),
            "IPv6 campaign diverged at workers={workers}"
        );
    }
}

#[test]
fn cloud_fleet_results_are_identical_across_worker_counts() {
    let universe = universe();
    let campaign = Campaign::new(&universe);
    let run = |workers: usize| {
        let options = CampaignOptions {
            workers,
            ..CampaignOptions::paper_default()
        };
        let main = campaign.run_main(&options, false);
        campaign.run_cloud(&main.v4, None, &options)
    };
    let baseline = run(1);
    let sharded = run(8);
    assert_eq!(baseline.len(), sharded.len());
    for ((v_a, snap_a, _), (v_b, snap_b, _)) in baseline.iter().zip(&sharded) {
        assert_eq!(v_a.name, v_b.name, "fleet order must be stable");
        assert_eq!(snap_a.hosts, snap_b.hosts, "vantage {} diverged", v_a.name);
    }
}
