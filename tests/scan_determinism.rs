//! Regression tests for the scanner's central determinism promise: a scan is
//! a pure function of `(universe, vantage, options minus workers)` — the
//! worker count only changes how the work is scheduled, never what is
//! measured.  The sharded executor relies on this to fan campaigns out
//! across every core without perturbing the paper's numbers.

use qem_core::reports::{
    figure3, figure4, figure5, figure6, figure7, table1, table2, table3, table4, table5, table6,
    table7,
};
use qem_core::vantage::VantagePoint;
use qem_core::{Campaign, CampaignOptions, HostMeasurement, ScanOptions, Scanner};
use qem_store::{scan_into, CampaignStoreExt, CampaignWriter, SnapshotMeta};
use qem_web::{SnapshotDate, Universe, UniverseConfig};
use std::path::PathBuf;

fn universe() -> Universe {
    Universe::generate(&UniverseConfig::tiny())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qem-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scan_with_workers(universe: &Universe, workers: usize) -> Vec<HostMeasurement> {
    let options = ScanOptions {
        workers,
        ..ScanOptions::paper_default(SnapshotDate::APR_2023)
    };
    Scanner::new(universe, VantagePoint::main(), options).scan_all()
}

#[test]
fn scan_results_are_identical_across_worker_counts() {
    let universe = universe();
    let baseline = scan_with_workers(&universe, 1);
    assert!(!baseline.is_empty());
    for workers in [4, 8] {
        let scan = scan_with_workers(&universe, workers);
        // `HostMeasurement` compares every field of every report, so this is
        // the full byte-for-byte equivalence of the measurement sets.
        assert_eq!(baseline, scan, "scan diverged at workers={workers}");
    }
}

#[test]
fn auto_worker_scan_matches_single_threaded_scan() {
    let universe = universe();
    // workers == 0 resolves to one worker per core — whatever this machine
    // has, the results must not move.
    assert_eq!(
        scan_with_workers(&universe, 1),
        scan_with_workers(&universe, 0)
    );
}

/// The observability layer inherits the purity promise: the deterministic
/// metrics snapshot (scan counters, ECN-class tallies, merged engine
/// telemetry) is byte-identical at `--workers 1` and `--workers 0`, while
/// the scheduling accumulator — which *does* depend on the worker count —
/// stays quarantined outside it.
#[test]
fn scan_metrics_are_identical_across_worker_counts() {
    let universe = universe();
    let run = |workers: usize| {
        let options = ScanOptions {
            workers,
            ..ScanOptions::paper_default(SnapshotDate::APR_2023)
        };
        let scanner = Scanner::new(&universe, VantagePoint::main(), options);
        let measurements = scanner.scan_all();
        (measurements, scanner.metrics_snapshot())
    };
    let (baseline, single) = run(1);
    let (_, auto) = run(0);

    assert_eq!(single, auto, "metrics snapshot diverged across schedules");
    // The JSON rendering is what the determinism gate byte-diffs; pin it too.
    assert_eq!(single.to_json(), auto.to_json());

    // The snapshot actually observed the scan — every host counted, engine
    // telemetry merged in.
    assert_eq!(single.counter("scan.hosts"), Some(baseline.len() as u64));
    assert!(single.counter("engine.events_processed").unwrap_or(0) > 0);
}

#[test]
fn campaigns_are_identical_across_worker_counts() {
    let universe = universe();
    let run = |workers: usize| {
        let options = CampaignOptions {
            workers,
            ..CampaignOptions::paper_default()
        };
        Campaign::new(&universe).run_main(&options, true)
    };
    let baseline = run(1);
    for workers in [4, 8] {
        let result = run(workers);
        assert_eq!(
            baseline.v4.hosts, result.v4.hosts,
            "IPv4 campaign diverged at workers={workers}"
        );
        assert_eq!(
            baseline.v6.as_ref().map(|s| &s.hosts),
            result.v6.as_ref().map(|s| &s.hosts),
            "IPv6 campaign diverged at workers={workers}"
        );
    }
}

/// The store acceptance bar: a census streamed to disk renders every table
/// and figure byte-identically to the in-memory path, at any worker count.
#[test]
fn store_backed_census_reports_are_byte_identical() {
    let universe = universe();
    let campaign = Campaign::new(&universe);
    let vantage = VantagePoint::main();
    let reference = campaign.run_main(
        &CampaignOptions {
            workers: 1,
            ..CampaignOptions::paper_default()
        },
        true,
    );
    let reference_v6 = reference.v6.as_ref().expect("IPv6 snapshot requested");

    for workers in [1, 4] {
        let options = CampaignOptions {
            workers,
            ..CampaignOptions::paper_default()
        };
        let dir_v4 = temp_dir(&format!("census-v4-w{workers}"));
        let dir_v6 = temp_dir(&format!("census-v6-w{workers}"));
        let stored_v4 = campaign
            .run_snapshot_to_store(&vantage, &options, false, &dir_v4)
            .expect("store v4 snapshot");
        let stored_v6 = campaign
            .run_snapshot_to_store(&vantage, &options, true, &dir_v6)
            .expect("store v6 snapshot");

        // Tables 1–7 and Figure 5, rendered once from the store and once
        // from memory: the Display output must match byte for byte.
        assert_eq!(
            table1(&universe, &stored_v4).to_string(),
            table1(&universe, &reference.v4).to_string(),
            "table1 diverged at workers={workers}"
        );
        assert_eq!(
            table2(&universe, &stored_v4).to_string(),
            table2(&universe, &reference.v4).to_string(),
            "table2 diverged at workers={workers}"
        );
        assert_eq!(
            table3(&universe, &stored_v4).to_string(),
            table3(&universe, &reference.v4).to_string(),
            "table3 diverged at workers={workers}"
        );
        assert_eq!(
            table4(&universe, &stored_v4).to_string(),
            table4(&universe, &reference.v4).to_string(),
            "table4 diverged at workers={workers}"
        );
        assert_eq!(
            table5(&universe, &stored_v4, Some(&stored_v6)).to_string(),
            table5(&universe, &reference.v4, reference.v6.as_ref()).to_string(),
            "table5 diverged at workers={workers}"
        );
        assert_eq!(
            table6(&universe, &stored_v4).to_string(),
            table6(&universe, &reference.v4).to_string(),
            "table6 diverged at workers={workers}"
        );
        assert_eq!(
            table7(&universe, &stored_v4).to_string(),
            table7(&universe, &reference.v4).to_string(),
            "table7 diverged at workers={workers}"
        );
        assert_eq!(
            figure5(&universe, &stored_v4, &stored_v6).to_string(),
            figure5(&universe, &reference.v4, reference_v6).to_string(),
            "figure5 diverged at workers={workers}"
        );

        let _ = std::fs::remove_dir_all(&dir_v4);
        let _ = std::fs::remove_dir_all(&dir_v6);
    }
}

/// Figures 3/4/8 from the delta-encoded longitudinal store equal the
/// in-memory longitudinal run, and the deltas really are deltas.
#[test]
fn store_backed_longitudinal_reports_are_byte_identical() {
    let universe = universe();
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions::paper_default();
    let dates = [
        SnapshotDate::JUN_2022,
        SnapshotDate::FEB_2023,
        SnapshotDate::APR_2023,
    ];
    let reference = campaign.run_longitudinal(&dates, &options);

    let dir = temp_dir("longitudinal");
    let store = campaign
        .run_longitudinal_to_store(&dates, &options, &dir)
        .expect("store longitudinal series");
    let replayed = store.snapshots().expect("replay series");

    assert_eq!(
        figure3(&universe, &replayed).to_string(),
        figure3(&universe, &reference).to_string(),
        "figure3 diverged"
    );
    assert_eq!(
        figure4(&universe, &replayed).to_string(),
        figure4(&universe, &reference).to_string(),
        "figure4/8 diverged"
    );

    // Delta encoding: every date after the first persists strictly fewer
    // records than the full population.
    let full = store.stored_record_count(0).expect("first date count");
    for idx in 1..dates.len() {
        let delta = store.stored_record_count(idx).expect("delta count");
        assert!(
            delta < full,
            "date {idx}: delta {delta} not smaller than {full}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Figure 6 (CE probing) and Figure 7 (cloud fleet, mixed store/memory
/// sources) from the store equal the in-memory path.
#[test]
fn store_backed_ce_and_cloud_reports_are_byte_identical() {
    let universe = universe();
    let campaign = Campaign::new(&universe);
    let vantage = VantagePoint::main();

    let ce_options = CampaignOptions::ce_probing();
    let ce_reference = campaign.run_main(&ce_options, false);
    let ce_dir = temp_dir("ce");
    let ce_stored = campaign
        .run_snapshot_to_store(&vantage, &ce_options, false, &ce_dir)
        .expect("store CE snapshot");
    assert_eq!(
        figure6(&universe, &ce_stored).to_string(),
        figure6(&universe, &ce_reference.v4).to_string(),
        "figure6 diverged"
    );
    let _ = std::fs::remove_dir_all(&ce_dir);

    let options = CampaignOptions::paper_default();
    let main = campaign.run_main(&options, false);
    let cloud = campaign.run_cloud(&main.v4, None, &options);
    let main_dir = temp_dir("cloud-main");
    let stored_main = campaign
        .run_snapshot_to_store(&vantage, &options, false, &main_dir)
        .expect("store main snapshot");
    assert_eq!(
        figure7(&universe, &stored_main, &cloud).to_string(),
        figure7(&universe, &main.v4, &cloud).to_string(),
        "figure7 diverged"
    );
    let _ = std::fs::remove_dir_all(&main_dir);
}

/// A campaign killed mid-scan and resumed at a different worker count still
/// renders byte-identical reports, without re-scanning persisted hosts.
#[test]
fn resumed_campaign_reports_are_byte_identical() {
    let universe = universe();
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions {
        workers: 1,
        ..CampaignOptions::paper_default()
    };
    let vantage = VantagePoint::main();
    let reference = campaign.run_snapshot(&vantage, &options, false);

    // Persist roughly half the population, then "die" (drop without finish).
    let population = universe.scan_population(false);
    let cut = population.len() / 2;
    let dir = temp_dir("resume");
    {
        let meta = SnapshotMeta::for_campaign(&options, &vantage, false);
        let mut writer = CampaignWriter::create(&dir, &meta)
            .expect("create store")
            .with_segment_capacity(32);
        let scanner = Scanner::new(
            &universe,
            vantage.clone(),
            ScanOptions {
                date: options.date,
                ipv6: false,
                probe: options.probe,
                trace_sample_probability: options.trace_sample_probability,
                workers: options.workers,
                seed: options.seed,
                cross_traffic: options.cross_traffic,
                retry: qem_core::RetryPolicy::none(),
            },
        );
        scan_into(&scanner, &population[..cut], |m| writer.append(m)).expect("stream scan");
    }

    // Resume with a different worker count: scheduling must not matter.
    let outcome = campaign
        .resume_snapshot_to_store(&dir, 4)
        .expect("resume campaign");
    assert!(
        outcome.skipped_hosts > 0,
        "resume must reuse persisted hosts"
    );
    assert_eq!(
        outcome.skipped_hosts + outcome.scanned_hosts,
        population.len()
    );
    assert_eq!(
        table1(&universe, &outcome.store).to_string(),
        table1(&universe, &reference).to_string(),
        "resumed table1 diverged"
    );
    assert_eq!(
        table5(&universe, &outcome.store, None).to_string(),
        table5(&universe, &reference, None).to_string(),
        "resumed table5 diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The engine-refactor acceptance bar: with `cross_traffic` off the scan is
/// byte-identical to the legacy single-flow drivers (also pinned against the
/// committed golden snapshot in `tests/golden_reports.rs`), while an enabled
/// scenario produces CE marks no single-flow run ever sees — and stays
/// deterministic across worker counts and repeated runs.
#[test]
fn cross_traffic_is_off_by_default_and_deterministic_when_on() {
    use qem_core::CrossTraffic;
    let universe = universe();

    // `paper_default` has the scenario disabled; spelling it out must not
    // change a single bit.
    let baseline = scan_with_workers(&universe, 1);
    let explicit_off = Scanner::new(
        &universe,
        VantagePoint::main(),
        ScanOptions {
            workers: 1,
            cross_traffic: CrossTraffic::none(),
            ..ScanOptions::paper_default(SnapshotDate::APR_2023)
        },
    )
    .scan_all();
    assert_eq!(baseline, explicit_off);

    // With a congested bottleneck the measured flows pick up CE marks that
    // the baseline (Ect0 probing, no shared queues) cannot produce outside
    // the pathological MarkAllCe paths.
    let loaded = |workers: usize| {
        Scanner::new(
            &universe,
            VantagePoint::main(),
            ScanOptions {
                workers,
                cross_traffic: CrossTraffic::congested(),
                ..ScanOptions::paper_default(SnapshotDate::APR_2023)
            },
        )
        .scan_all()
    };
    let under_load = loaded(1);
    let mut hosts_gaining_ce = 0usize;
    for (solo, shared) in baseline.iter().zip(&under_load) {
        assert_eq!(solo.host_id, shared.host_id);
        let solo_ce = solo.quic.as_ref().map_or(0, |q| q.mirrored_counts.ce);
        let shared_ce = shared.quic.as_ref().map_or(0, |q| q.mirrored_counts.ce);
        if solo_ce == 0 && shared_ce > 0 {
            hosts_gaining_ce += 1;
        }
    }
    assert!(
        hosts_gaining_ce > 0,
        "shared bottlenecks must create CE marks single-flow runs do not"
    );

    // The scenario is still a pure function of its inputs: same results at
    // any worker count and on repeated runs (the engine's FIFO event order).
    assert_eq!(under_load, loaded(1), "repeated runs diverged");
    assert_eq!(under_load, loaded(4), "worker count changed loaded results");
}

#[test]
fn cloud_fleet_results_are_identical_across_worker_counts() {
    let universe = universe();
    let campaign = Campaign::new(&universe);
    let run = |workers: usize| {
        let options = CampaignOptions {
            workers,
            ..CampaignOptions::paper_default()
        };
        let main = campaign.run_main(&options, false);
        campaign.run_cloud(&main.v4, None, &options)
    };
    let baseline = run(1);
    let sharded = run(8);
    assert_eq!(baseline.len(), sharded.len());
    for ((v_a, snap_a, _), (v_b, snap_b, _)) in baseline.iter().zip(&sharded) {
        assert_eq!(v_a.name, v_b.name, "fleet order must be stable");
        assert_eq!(snap_a.hosts, snap_b.hosts, "vantage {} diverged", v_a.name);
    }
}
