//! Cross-crate tests for the network-layer analysis: Table 4 / Table 7 style
//! attribution of clearing and re-marking to the responsible transit AS.

use qem_core::reports::{table4, table7};
use qem_core::{Campaign, CampaignOptions};
use qem_netsim::Asn;
use qem_tracebox::{analyze_trace, trace_path, PathVerdict, TraceConfig};
use qem_web::{Universe, UniverseConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::IpAddr;

#[test]
fn clearing_is_concentrated_on_the_expected_providers() {
    let universe = Universe::generate(&UniverseConfig::default());
    let campaign = Campaign::new(&universe);
    let result = campaign.run_main(&CampaignOptions::paper_default(), false);
    let t4 = table4(&universe, &result.v4);

    // Paper §6.1: Server Central and A2 Hosting are (almost) fully behind
    // cleared paths, Cloudflare and Google are not affected at all.
    let a2 = t4.row("A2 Hosting").expect("A2 Hosting row");
    assert!(a2.cleared > 0);
    let cloudflare = t4.row("Cloudflare").expect("Cloudflare row");
    assert_eq!(cloudflare.cleared, 0);
    assert!(cloudflare.not_cleared > 0);
    let google = t4.row("Google").expect("Google row");
    assert_eq!(google.cleared, 0);

    // Overall, cleared domains are a small fraction (~2 %) of the
    // non-mirroring population.
    let (cleared, not_tested, not_cleared) = t4.totals;
    let total = cleared + not_tested + not_cleared;
    assert!(cleared > 0);
    assert!((cleared as f64) < 0.05 * total as f64);
    // With per-domain sampling, heavy-hitter IPs are almost always tested, so
    // the untested share stays small (paper: 72 k of 16.3 M).
    assert!((not_tested as f64) < 0.2 * total as f64);
}

#[test]
fn validation_failures_split_into_path_and_stack_causes() {
    let universe = Universe::generate(&UniverseConfig::default());
    let campaign = Campaign::new(&universe);
    let result = campaign.run_main(&CampaignOptions::paper_default(), false);
    let t7 = table7(&universe, &result.v4);

    // Re-marking failures are dominated by paths that visibly re-mark
    // ECT(0) → ECT(1); undercount failures show no path change at all
    // (they are a stack bug) — the core claim of §7.3.
    let remark_traced = t7.remarking.remarked_to_ect1.domains
        + t7.remarking.cleared_to_not_ect.domains
        + t7.remarking.unchanged_ect0.domains;
    assert!(remark_traced > 0);
    assert!(
        t7.remarking.remarked_to_ect1.domains * 2 > remark_traced,
        "most traced re-marking domains must show the path rewrite"
    );
    let undercount_traced = t7.undercount.remarked_to_ect1.domains
        + t7.undercount.cleared_to_not_ect.domains
        + t7.undercount.unchanged_ect0.domains;
    assert!(undercount_traced > 0);
    assert!(
        t7.undercount.unchanged_ect0.domains * 2 > undercount_traced,
        "undercounting must not be attributable to the network"
    );
}

#[test]
fn every_observed_impairment_points_at_arelion() {
    let universe = Universe::generate(&UniverseConfig::default());
    let source: IpAddr = "192.0.2.10".parse().unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut attributed = 0;
    for host in universe
        .hosts
        .iter()
        .filter(|h| h.stack.is_some())
        .take(400)
    {
        let path = host.duplex_path_from(Asn::DFN, false);
        let trace = trace_path(
            &path.forward,
            source,
            IpAddr::V4(host.ipv4),
            &TraceConfig::default(),
            &mut rng,
        );
        let analysis = analyze_trace(&trace, &|ip| universe.as_org.asn_of_ip(ip));
        match analysis.verdict {
            PathVerdict::Cleared | PathVerdict::RemarkedToEct1 => {
                attributed += 1;
                assert!(
                    analysis.involved_asns().contains(&Asn::ARELION),
                    "impairment on {} not attributed to AS1299",
                    host.ipv4
                );
            }
            PathVerdict::NoChange | PathVerdict::Untested => {}
            PathVerdict::CeMarked | PathVerdict::RemarkedToEct0 => {}
        }
    }
    assert!(attributed > 0, "the sample must contain impaired paths");
}
