//! Cross-crate property tests: invariants that must hold for *any* path,
//! server behaviour and loss pattern.

use proptest::prelude::*;
use qem_netsim::{
    build_transit_path, Asn, DuplexPath, EcnPolicy, Hop, Path, Router, TransitProfile,
};
use qem_packet::ecn::EcnCodepoint;
use qem_quic::ecn::EcnValidationState;
use qem_quic::{ClientConfig, ConnectionRun, DriverConfig, EcnMirroringBehavior, ServerBehavior};
use qem_tracebox::{analyze_trace, trace_path, TraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::IpAddr;

fn arb_transit() -> impl Strategy<Value = TransitProfile> {
    prop_oneof![
        Just(TransitProfile::Clean),
        Just(TransitProfile::Clearing { asn: Asn::ARELION }),
        Just(TransitProfile::Remarking { asn: Asn::ARELION }),
        Just(TransitProfile::RemarkThenClear {
            first: Asn::ARELION,
            second: Asn::COGENT
        }),
        Just(TransitProfile::MarkAllCe { asn: Asn(64500) }),
    ]
}

fn arb_mirroring() -> impl Strategy<Value = EcnMirroringBehavior> {
    prop_oneof![
        Just(EcnMirroringBehavior::None),
        Just(EcnMirroringBehavior::Accurate),
        Just(EcnMirroringBehavior::MirrorOnlyHandshake),
        Just(EcnMirroringBehavior::MirrorAsEct1),
        Just(EcnMirroringBehavior::AlwaysCe),
    ]
}

fn endpoints() -> (IpAddr, IpAddr) {
    (
        "192.0.2.10".parse().unwrap(),
        "198.51.100.99".parse().unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ECN validation must never succeed when the forward path impairs the
    /// codepoints or the server misreports them — the central guarantee the
    /// study relies on when interpreting "Capable".
    #[test]
    fn validation_never_passes_on_an_impaired_connection(
        transit in arb_transit(),
        mirroring in arb_mirroring(),
        seed in 0u64..1_000,
    ) {
        let (client_addr, server_addr) = endpoints();
        let path = DuplexPath::symmetric_clean_reverse(
            build_transit_path(Asn::DFN, Asn(16509), transit, false),
        );
        let behavior = ServerBehavior::accurate().with_mirroring(mirroring);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = ConnectionRun::new(
            ClientConfig::paper_default("prop.example"),
            behavior,
            &path,
            DriverConfig::new(client_addr, server_addr),
        )
        .execute(&mut rng)
        .connection;
        let clean = matches!(transit, TransitProfile::Clean);
        let honest = matches!(mirroring, EcnMirroringBehavior::Accurate);
        if outcome.report.ecn_state == EcnValidationState::Capable {
            prop_assert!(clean && honest,
                "capable despite transit {transit:?} / mirroring {mirroring:?}");
        }
        // And the converse: a clean path with an honest server always validates.
        if clean && honest {
            prop_assert_eq!(outcome.report.ecn_state, EcnValidationState::Capable);
        }
    }

    /// The tracer never reports an impairment on a path whose routers all
    /// forward ECN untouched, regardless of ICMP behaviour and loss.
    #[test]
    fn tracebox_never_invents_impairments(
        hops in 1usize..12,
        silent_mask in any::<u16>(),
        seed in 0u64..1_000,
    ) {
        let (src, dst) = endpoints();
        let mut path_hops = Vec::new();
        for i in 0..hops {
            let mut router = Router::transparent(i as u32 + 1, Asn(100 + i as u32));
            if silent_mask & (1 << i) != 0 {
                router = router.with_icmp(qem_netsim::IcmpBehavior::silent());
            }
            path_hops.push(Hop::new(router));
        }
        let path = Path::new(path_hops);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = trace_path(&path, src, dst, &TraceConfig::default(), &mut rng);
        let analysis = analyze_trace(&trace, &|_| None);
        prop_assert!(!analysis.is_impaired());
    }

    /// Whatever the per-hop policies are, the codepoint observed at the end
    /// of a path equals the composition of the policies — and the QUIC
    /// driver's ground-truth counter agrees with it.
    #[test]
    fn path_composition_matches_driver_ground_truth(
        policies in proptest::collection::vec(
            prop_oneof![
                Just(EcnPolicy::Pass),
                Just(EcnPolicy::ClearEcn),
                Just(EcnPolicy::RemarkEct0ToEct1),
                Just(EcnPolicy::RemarkEctToNotEct),
            ],
            1..8,
        ),
        seed in 0u64..1_000,
    ) {
        let (client_addr, server_addr) = endpoints();
        let hops: Vec<Hop> = policies
            .iter()
            .enumerate()
            .map(|(i, policy)| {
                Hop::new(Router::transparent(i as u32 + 1, Asn(200 + i as u32)).with_ecn_policy(*policy))
            })
            .collect();
        let forward = Path::new(hops);
        let expected = forward.expected_arrival_ecn(EcnCodepoint::Ect0);
        let path = DuplexPath::new(forward, Path::empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = ConnectionRun::new(
            ClientConfig::paper_default("compose.example"),
            ServerBehavior::accurate(),
            &path,
            DriverConfig::new(client_addr, server_addr),
        )
        .execute(&mut rng)
        .connection;
        let ground_truth = outcome.forward_arrival_ecn;
        match expected {
            EcnCodepoint::Ect0 => prop_assert!(ground_truth.ect0 > 0 && ground_truth.ect1 == 0),
            EcnCodepoint::Ect1 => prop_assert!(ground_truth.ect1 > 0 && ground_truth.ect0 == 0),
            EcnCodepoint::NotEct => prop_assert_eq!(ground_truth.total(), 0),
            EcnCodepoint::Ce => prop_assert!(ground_truth.ce > 0),
        }
    }
}
