//! The resilience acceptance bar: a census over a store with a corrupt
//! segment must complete — quarantining the damage, counting it in the run
//! telemetry — instead of panicking half-way through a report.

use qem_core::reports::{table1, table2};
use qem_core::vantage::VantagePoint;
use qem_core::{Campaign, CampaignOptions};
use qem_obs::RunTelemetry;
use qem_store::{CampaignStoreExt, StoreError, StoredSnapshot};
use qem_web::{Universe, UniverseConfig};
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qem-quarantined-census-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_census_over_a_corrupt_store_completes_with_quarantine_telemetry() {
    let universe = Universe::generate(&UniverseConfig::tiny());
    let campaign = Campaign::new(&universe);
    let dir = temp_dir("v4");
    let options = CampaignOptions {
        workers: 1,
        ..CampaignOptions::paper_default()
    };
    campaign
        .run_snapshot_to_store(&VantagePoint::main(), &options, false, &dir)
        .expect("store v4 snapshot");

    // Rot one segment on disk.
    let victim = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "qseg"))
        .min()
        .expect("campaign wrote at least one segment");
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&victim, &bytes).unwrap();

    // The strict open refuses the store outright …
    assert!(matches!(
        StoredSnapshot::open(&dir),
        Err(StoreError::Corrupt(_))
    ));

    // … while the quarantining open degrades: the census runs to the end
    // over whatever survived, and the damage shows up as a counter.
    let (snapshot, report) = StoredSnapshot::open_quarantining(&dir).expect("degraded open");
    assert_eq!(report.quarantined_segments(), 1);

    let t1 = table1(&universe, &snapshot).to_string();
    let t2 = table2(&universe, &snapshot).to_string();
    assert!(!t1.is_empty() && !t2.is_empty());

    let mut telemetry = RunTelemetry::new();
    telemetry.insert_section("store", report.telemetry());
    let json = telemetry.to_json();
    assert!(
        json.contains("store.quarantine.segments"),
        "quarantine counter missing from run telemetry:\n{json}"
    );
    fs::remove_dir_all(&dir).unwrap();
}
