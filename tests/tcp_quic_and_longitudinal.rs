//! Shape tests for the TCP-vs-QUIC comparison (Figure 6), the longitudinal
//! view (Figures 3 and 4) and the global vantage points (Figure 7).

use qem_core::reports::{figure3, figure4, figure6, figure7, QuicCeCategory, TcpCategory};
use qem_core::{Campaign, CampaignOptions};
use qem_web::{SnapshotDate, Universe, UniverseConfig};

fn small_universe() -> Universe {
    // 1:2500 scale keeps these multi-campaign tests fast while preserving the
    // provider structure.
    Universe::generate(&UniverseConfig {
        scale: 0.0004,
        seed: 11,
        ensure_rare_segments: true,
    })
}

/// Figure 6 under the opt-in `cross_traffic` scenario: ECT(0) probing never
/// shows CE mirroring on idle paths (outside the pathological MarkAllCe
/// hosts), but behind a congested shared bottleneck the same probes arrive
/// CE-marked and the mirroring categories fill up — the load-dependent
/// regime the single-flow drivers could not express.
#[test]
fn figure6_under_cross_traffic_shows_congestion_driven_mirroring() {
    let universe = small_universe();
    let campaign = Campaign::new(&universe);

    let mirror_count = |fig: &qem_core::reports::Figure6| -> u64 {
        fig.tcp
            .get(&TcpCategory::CeMirrorNoUseNegotiated)
            .copied()
            .unwrap_or(0)
            + fig
                .tcp
                .get(&TcpCategory::CeMirrorUseNegotiated)
                .copied()
                .unwrap_or(0)
    };

    let idle = campaign.run_main(&CampaignOptions::paper_default(), false);
    let idle_fig = figure6(&universe, &idle.v4);

    let loaded = campaign.run_main(
        &CampaignOptions::paper_default().with_cross_traffic(qem_core::CrossTraffic::congested()),
        false,
    );
    let loaded_fig = figure6(&universe, &loaded.v4);

    assert!(
        mirror_count(&loaded_fig) > mirror_count(&idle_fig),
        "congestion must move domains into the CE-mirroring categories \
         (idle: {idle_fig}, loaded: {loaded_fig})"
    );

    // And the dedicated preset is the CE-probing run plus the scenario.
    let preset = CampaignOptions::ce_probing_under_load();
    assert!(preset.cross_traffic.is_enabled());
    assert_eq!(preset.probe, qem_core::scanner::ProbeMode::ForceCe);
}

#[test]
fn figure6_tcp_supports_ecn_where_quic_does_not() {
    let universe = small_universe();
    let campaign = Campaign::new(&universe);
    let result = campaign.run_main(&CampaignOptions::ce_probing(), false);
    let fig = figure6(&universe, &result.v4);

    let tcp_total: u64 = fig.tcp.values().sum();
    let tcp_mirror = fig
        .tcp
        .get(&TcpCategory::CeMirrorNoUseNegotiated)
        .copied()
        .unwrap_or(0)
        + fig
            .tcp
            .get(&TcpCategory::CeMirrorUseNegotiated)
            .copied()
            .unwrap_or(0);
    let tcp_no_negotiation = fig
        .tcp
        .get(&TcpCategory::NoNegotiation)
        .copied()
        .unwrap_or(0);
    let quic_total: u64 = fig.quic.values().sum();
    let quic_mirror = fig
        .quic
        .get(&QuicCeCategory::CeMirrorNoUse)
        .copied()
        .unwrap_or(0)
        + fig
            .quic
            .get(&QuicCeCategory::CeMirrorUse)
            .copied()
            .unwrap_or(0);

    // Paper: ~70 % of domains mirror CE via TCP, ~20 % do not negotiate, and
    // fewer than 10 % mirror CE via QUIC.
    assert!(tcp_total > 0 && quic_total > 0);
    let tcp_share = tcp_mirror as f64 / tcp_total as f64;
    let quic_share = quic_mirror as f64 / quic_total as f64;
    assert!(tcp_share > 0.5, "tcp CE mirroring share {tcp_share}");
    assert!(quic_share < 0.15, "quic CE mirroring share {quic_share}");
    assert!(tcp_share > 5.0 * quic_share);
    assert!((tcp_no_negotiation as f64) > 0.05 * tcp_total as f64);
}

#[test]
fn figures_3_and_4_show_the_litespeed_dip_and_recovery() {
    let universe = small_universe();
    let campaign = Campaign::new(&universe);
    let dates = [
        SnapshotDate::JUN_2022,
        SnapshotDate::FEB_2023,
        SnapshotDate::APR_2023,
    ];
    let snapshots = campaign.run_longitudinal(&dates, &CampaignOptions::paper_default());

    let fig3 = figure3(&universe, &snapshots);
    assert_eq!(fig3.points.len(), 3);
    let jun = &fig3.points[0];
    let feb = &fig3.points[1];
    let apr = &fig3.points[2];
    // Total QUIC grows steadily; mirroring dips and then jumps (Figure 3).
    assert!(jun.total_quic_domains < apr.total_quic_domains);
    assert!(feb.mirroring_total() < jun.mirroring_total());
    assert!(apr.mirroring_total() > 3 * feb.mirroring_total());
    // The mirroring population is dominated by LiteSpeed, with the Pepyaka
    // (Google-proxied wix.com) block appearing only in 2023.
    let litespeed_apr = apr
        .mirroring_by_family
        .get("LiteSpeed")
        .copied()
        .unwrap_or(0);
    let pepyaka_apr = apr.mirroring_by_family.get("Pepyaka").copied().unwrap_or(0);
    let pepyaka_jun = jun.mirroring_by_family.get("Pepyaka").copied().unwrap_or(0);
    assert!(litespeed_apr > apr.mirroring_total() / 2);
    assert!(pepyaka_apr > 0);
    assert_eq!(pepyaka_jun, 0);

    // Figure 4: in June 2022 the mirroring population is mostly on draft-27;
    // in April 2023 it is mostly on v1.
    let fig4 = figure4(&universe, &snapshots);
    use qem_core::reports::DomainState;
    let jun_d27 = fig4.count(0, &DomainState::Mirroring("d27".to_string()));
    let jun_v1 = fig4.count(0, &DomainState::Mirroring("v1".to_string()));
    let apr_d27 = fig4.count(2, &DomainState::Mirroring("d27".to_string()));
    let apr_v1 = fig4.count(2, &DomainState::Mirroring("v1".to_string()));
    assert!(jun_d27 > jun_v1);
    assert!(apr_v1 > apr_d27);
    assert!(fig4.mirroring_total(2) > fig4.mirroring_total(1));
}

#[test]
fn figure7_capable_share_is_small_everywhere() {
    let universe = small_universe();
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions::paper_default();
    let main = campaign.run_main(&options, false);
    let cloud = campaign.run_cloud(&main.v4, None, &options);
    let fig = figure7(&universe, &main.v4, &cloud);

    assert_eq!(fig.rows.len(), 17); // main + 16 cloud locations
    for row in &fig.rows {
        // Paper: 0.2 % – 0.4 % everywhere; allow slack for the small scale.
        assert!(
            row.capable_share_v4 < 0.03,
            "{} shows implausibly high ECN capability: {}",
            row.vantage,
            row.capable_share_v4
        );
    }
    // The main vantage point itself is in the paper's band.
    assert!(fig.rows[0].capable_share_v4 > 0.0005 && fig.rows[0].capable_share_v4 < 0.01);
}
