//! Byte-identity gate for the report pipeline.
//!
//! Every table and figure of the paper, rendered from a tiny-universe
//! campaign, must match the committed golden snapshot byte for byte.  This is
//! what lets refactors of the connection drivers (e.g. moving them onto the
//! discrete-event engine) prove that the default measurement path is
//! untouched: any behavioural drift — an extra RNG draw, a reordered transit,
//! a changed timer — shows up here as a diff.
//!
//! To regenerate after an *intentional* change to the universe or the report
//! formats, run:
//!
//! ```text
//! QEM_UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! and commit the updated `tests/data/golden_reports_tiny.txt` together with
//! the change that motivated it.

use qem_core::reports::{
    figure3, figure4, figure5, figure6, figure7, table1, table2, table3, table4, table5, table6,
    table7,
};
use qem_core::{Campaign, CampaignOptions};
use qem_netsim::{build_transit_path, Asn, DuplexPath, TransitProfile};
use qem_quic::{ClientConfig, ConnectionRun, DriverConfig, ServerBehavior};
use qem_web::{SnapshotDate, Universe, UniverseConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::net::{IpAddr, Ipv4Addr};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_reports_tiny.txt")
}

fn golden_engine_metrics_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_engine_metrics.txt")
}

fn golden_workload_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_workload_report.txt")
}

fn golden_chaos_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_chaos_report.txt")
}

/// Render every table and figure the acceptance criteria name (Tables 1–7,
/// Figures 3–8; Figure 8 shares its builder with Figure 4) into one string.
fn render_all_reports() -> String {
    let universe = Universe::generate(&UniverseConfig::tiny());
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions {
        workers: 1,
        ..CampaignOptions::paper_default()
    };

    let main = campaign.run_main(&options, true);
    let v6 = main.v6.as_ref().expect("IPv6 snapshot requested");

    let longitudinal = campaign.run_longitudinal(
        &[
            SnapshotDate::JUN_2022,
            SnapshotDate::FEB_2023,
            SnapshotDate::APR_2023,
        ],
        &options,
    );

    let ce_options = CampaignOptions {
        workers: 1,
        ..CampaignOptions::ce_probing()
    };
    let ce = campaign.run_main(&ce_options, false);

    let cloud = campaign.run_cloud(&main.v4, None, &options);

    let mut out = String::new();
    writeln!(out, "{}", table1(&universe, &main.v4)).unwrap();
    writeln!(out, "{}", table2(&universe, &main.v4)).unwrap();
    writeln!(out, "{}", table3(&universe, &main.v4)).unwrap();
    writeln!(out, "{}", table4(&universe, &main.v4)).unwrap();
    writeln!(out, "{}", table5(&universe, &main.v4, main.v6.as_ref())).unwrap();
    writeln!(out, "{}", table6(&universe, &main.v4)).unwrap();
    writeln!(out, "{}", table7(&universe, &main.v4)).unwrap();
    writeln!(out, "{}", figure3(&universe, &longitudinal)).unwrap();
    writeln!(out, "{}", figure4(&universe, &longitudinal)).unwrap();
    writeln!(out, "{}", figure5(&universe, &main.v4, v6)).unwrap();
    writeln!(out, "{}", figure6(&universe, &ce.v4)).unwrap();
    writeln!(out, "{}", figure7(&universe, &main.v4, &cloud)).unwrap();
    out
}

/// One clean-path single-flow engine run (the driver's canonical "capable"
/// scenario), rendered as its metrics JSON plus the virtual-time wake trace.
fn render_engine_metrics() -> String {
    let path = DuplexPath::symmetric_clean_reverse(build_transit_path(
        Asn::DFN,
        Asn(16509),
        TransitProfile::Clean,
        false,
    ));
    let client_addr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10));
    let server_addr = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 80));
    let mut rng = StdRng::seed_from_u64(1);
    let run = ConnectionRun::new(
        ClientConfig::paper_default("www.example.org"),
        ServerBehavior::accurate(),
        &path,
        DriverConfig::new(client_addr, server_addr),
    )
    .telemetry(true)
    .execute(&mut rng);
    let telemetry = run.telemetry.expect("telemetry was requested");
    assert!(
        run.connection.report.connected,
        "the golden scenario must connect"
    );

    let mut out = String::new();
    writeln!(out, "{}", telemetry.metrics.to_json()).unwrap();
    for wake in &telemetry.trace {
        writeln!(out, "wake flow={} at_us={}", wake.flow, wake.at.as_micros()).unwrap();
    }
    out
}

fn check_golden(path: PathBuf, rendered: &str) {
    if std::env::var_os("QEM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("data dir")).expect("create data dir");
        std::fs::write(&path, rendered).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden snapshot missing — run with QEM_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        golden, rendered,
        "output drifted from the golden snapshot; if the change is \
         intentional, regenerate with QEM_UPDATE_GOLDEN=1"
    );
}

/// The cross-variant workload comparison of the default netbench scenario
/// at the example's default seed — exactly what `examples/netbench.rs`
/// prints, so the snapshot also pins the example's output.
fn render_workload_comparison() -> String {
    qem_workload::Scenario::netbench_default(7)
        .run_all()
        .to_string()
}

#[test]
fn reports_match_golden_snapshot() {
    check_golden(golden_path(), &render_all_reports());
}

#[test]
fn workload_comparison_matches_golden_snapshot() {
    check_golden(golden_workload_path(), &render_workload_comparison());
}

/// The two fault scenarios at the chaos example's default seed — exactly
/// what `examples/chaos.rs` prints, so the snapshot pins the example's
/// output (fault-injection counter section included) across refactors of
/// the fault plans, the engine, and the schedulers.
fn render_chaos_report() -> String {
    let mut out = String::new();
    for scenario in [
        qem_workload::Scenario::lossy_bottleneck(7),
        qem_workload::Scenario::flapping_link(7),
    ] {
        writeln!(out, "{}", scenario.run_all()).unwrap();
    }
    out
}

#[test]
fn chaos_report_matches_golden_snapshot() {
    check_golden(golden_chaos_path(), &render_chaos_report());
}

#[test]
fn engine_metrics_match_golden_snapshot() {
    check_golden(golden_engine_metrics_path(), &render_engine_metrics());
}
