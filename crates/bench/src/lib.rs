//! Shared setup for the benchmark harness.
//!
//! Every bench target regenerates one (or more) of the paper's tables or
//! figures: the expensive inputs (universe generation, campaign runs) are
//! produced once per process, the regenerated rows are printed so that
//! `cargo bench` output doubles as the reproduction artefact, and Criterion
//! then measures the pipeline stage the bench is named after.

#![forbid(unsafe_code)]

use qem_core::{Campaign, CampaignOptions, CampaignResult};
use qem_web::{Universe, UniverseConfig};

/// Universe scale used by the benches (1:4000 of the paper's population keeps
/// a single bench invocation in the seconds range while preserving the
/// provider structure).
pub const BENCH_SCALE: f64 = 0.00025;

/// Generate the benchmark universe.
pub fn bench_universe() -> Universe {
    Universe::generate(&UniverseConfig {
        scale: BENCH_SCALE,
        seed: 0xbe9c,
        ensure_rare_segments: true,
    })
}

/// Run the main-vantage-point campaign (IPv4 + IPv6) on a universe.
pub fn bench_campaign(universe: &Universe) -> CampaignResult {
    Campaign::new(universe).run_main(&CampaignOptions::paper_default(), true)
}

/// Run the CE-probing campaign (Figure 6) on a universe.
pub fn bench_ce_campaign(universe: &Universe) -> CampaignResult {
    Campaign::new(universe).run_main(&CampaignOptions::ce_probing(), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_universe_is_small_but_structured() {
        let universe = bench_universe();
        assert!(universe.domains.len() > 10_000);
        assert!(universe.hosts.iter().any(|h| h.stack.is_some()));
        assert!(universe.providers.iter().any(|p| p.name == "Cloudflare"));
    }
}
