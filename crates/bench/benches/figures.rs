//! Regenerates Figures 3–8 of the paper and benchmarks the stages that
//! produce them.
//!
//! Run with: `cargo bench -p qem-bench --bench figures`

use criterion::{criterion_group, criterion_main, Criterion};
use qem_bench::{bench_campaign, bench_ce_campaign, bench_universe};
use qem_core::reports::{figure3, figure4, figure5, figure6, figure7};
use qem_core::{Campaign, CampaignOptions};
use qem_web::SnapshotDate;
use std::hint::black_box;

fn figures(c: &mut Criterion) {
    let universe = bench_universe();
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions::paper_default();

    // Longitudinal snapshots for Figures 3 and 4/8.
    let key_dates = [
        SnapshotDate::JUN_2022,
        SnapshotDate::FEB_2023,
        SnapshotDate::APR_2023,
    ];
    let longitudinal = campaign.run_longitudinal(&key_dates, &options);
    println!("{}", figure3(&universe, &longitudinal));
    println!("{}", figure4(&universe, &longitudinal));

    // Main campaign for Figures 5 and 7.
    let main = bench_campaign(&universe);
    let v6 = main.v6.as_ref().expect("ipv6 snapshot");
    println!("{}", figure5(&universe, &main.v4, v6));

    // CE-probing campaign for Figure 6.
    let ce = bench_ce_campaign(&universe);
    println!("{}", figure6(&universe, &ce.v4));

    // Distributed cloud campaign for Figure 7.
    let cloud = campaign.run_cloud(&main.v4, main.v6.as_ref(), &options);
    println!("{}", figure7(&universe, &main.v4, &cloud));

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("figure3_mirroring_over_time", |b| {
        b.iter(|| black_box(figure3(&universe, &longitudinal)))
    });
    group.bench_function("figure4_transitions", |b| {
        b.iter(|| black_box(figure4(&universe, &longitudinal)))
    });
    group.bench_function("figure5_ipv4_ipv6", |b| {
        b.iter(|| black_box(figure5(&universe, &main.v4, v6)))
    });
    group.bench_function("figure6_tcp_vs_quic", |b| {
        b.iter(|| black_box(figure6(&universe, &ce.v4)))
    });
    group.bench_function("figure7_global", |b| {
        b.iter(|| black_box(figure7(&universe, &main.v4, &cloud)))
    });
    // The expensive stage behind Figure 3: one full monthly snapshot.
    group.bench_function("monthly_snapshot_scan", |b| {
        b.iter(|| black_box(campaign.run_longitudinal(&[SnapshotDate::FEB_2023], &options)))
    });
    group.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
