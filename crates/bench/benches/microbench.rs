//! Micro-benchmarks of the protocol machinery: wire-format codecs, the ECN
//! validation state machine, path transit and a full simulated connection.
//!
//! Run with: `cargo bench -p qem-bench --bench microbench`

use criterion::{criterion_group, criterion_main, Criterion};
use qem_netsim::{build_transit_path, Asn, DuplexPath, TransitProfile};
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header};
use qem_packet::quic::{
    encode_varint, AckFrame, ConnectionId, Frame, LongPacketType, PacketHeader, QuicPacket,
    QuicVersion,
};
use qem_quic::ecn::{EcnConfig, EcnValidator};
use qem_quic::{ClientConfig, ConnectionRun, DriverConfig, ServerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::net::{IpAddr, Ipv4Addr};

fn packet_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_codecs");
    let header = Ipv4Header::new(
        Ipv4Addr::new(192, 0, 2, 1),
        Ipv4Addr::new(198, 51, 100, 2),
        IpProtocol::Udp,
        64,
    )
    .with_ecn(EcnCodepoint::Ect0);
    group.bench_function("ipv4_encode", |b| b.iter(|| black_box(header.encode(1200))));
    let bytes = header.encode(1200);
    group.bench_function("ipv4_decode", |b| {
        b.iter(|| black_box(Ipv4Header::decode(&bytes).unwrap()))
    });

    let packet = QuicPacket::new(
        PacketHeader::Long {
            ty: LongPacketType::Initial,
            version: QuicVersion::V1,
            dcid: ConnectionId::from_u64(1),
            scid: ConnectionId::from_u64(2),
            token: Vec::new(),
            packet_number: 3,
        },
        Frame::encode_all(&[
            Frame::Ack(AckFrame::contiguous(
                0,
                9,
                Some(EcnCounts {
                    ect0: 10,
                    ect1: 0,
                    ce: 1,
                }),
            )),
            Frame::Padding { size: 1100 },
        ]),
    );
    let encoded = packet.encode();
    group.bench_function("quic_initial_encode", |b| {
        b.iter(|| black_box(packet.encode()))
    });
    group.bench_function("quic_initial_decode", |b| {
        b.iter(|| black_box(QuicPacket::decode(&encoded, 8).unwrap()))
    });
    group.bench_function("varint_encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(8);
            encode_varint(&mut buf, black_box(1_234_567));
            black_box(buf)
        })
    });
    group.finish();
}

fn validation_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation_machine");
    group.bench_function("full_validation_pass", |b| {
        b.iter(|| {
            let mut validator = EcnValidator::new(EcnConfig::paper_default());
            for _ in 0..5 {
                let cp = validator.codepoint_for_next_packet();
                validator.on_packet_sent(cp);
            }
            validator.on_ack_received(
                5,
                5,
                Some(EcnCounts {
                    ect0: 5,
                    ect1: 0,
                    ce: 0,
                }),
            );
            black_box(validator.state())
        })
    });
    group.finish();
}

fn path_transit(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_transit");
    let path = build_transit_path(
        Asn::DFN,
        Asn(16509),
        TransitProfile::Remarking { asn: Asn::ARELION },
        false,
    );
    let datagram = IpDatagram::new(
        IpHeader::V4(
            Ipv4Header::new(
                Ipv4Addr::new(192, 0, 2, 1),
                Ipv4Addr::new(198, 51, 100, 2),
                IpProtocol::Udp,
                64,
            )
            .with_ecn(EcnCodepoint::Ect0),
        ),
        vec![0u8; 1200],
    );
    let mut rng = StdRng::seed_from_u64(5);
    group.bench_function("eight_hop_transit", |b| {
        b.iter(|| black_box(path.transit(&datagram, &mut rng)))
    });
    group.finish();
}

fn full_connection(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_connection");
    group.sample_size(20);
    let path = DuplexPath::symmetric_clean_reverse(build_transit_path(
        Asn::DFN,
        Asn(16509),
        TransitProfile::Clean,
        false,
    ));
    let client: IpAddr = "192.0.2.10".parse().unwrap();
    let server: IpAddr = "198.51.100.80".parse().unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    group.bench_function("quic_handshake_request_validation", |b| {
        b.iter(|| {
            black_box(
                ConnectionRun::new(
                    ClientConfig::paper_default("bench.example"),
                    ServerBehavior::accurate(),
                    &path,
                    DriverConfig::new(client, server),
                )
                .execute(&mut rng),
            )
        })
    });
    group.finish();
}

/// The domain join is the entry point of every report builder; rendering
/// the full report set used to re-run it per table.  This measures the win
/// of computing the join once via `JoinedSnapshot` (satellite of the
/// qem-store PR: memoize `domain_records` and show the difference).
fn domain_join(c: &mut Criterion) {
    use qem_bench::bench_universe;
    use qem_core::reports::{table1, table2, table3, table4, table5, table6, table7};
    use qem_core::{Campaign, CampaignOptions, JoinedSnapshot, SnapshotSource};

    let universe = bench_universe();
    let campaign = Campaign::new(&universe);
    let snapshot = campaign
        .run_main(&CampaignOptions::paper_default(), false)
        .v4;

    let mut group = c.benchmark_group("domain_join");
    group.sample_size(10);
    group.bench_function("domain_records_single_join", |b| {
        b.iter(|| black_box(snapshot.domain_records(&universe)))
    });
    group.bench_function("domain_records_memoized_reuse", |b| {
        let joined = JoinedSnapshot::new(&universe, &snapshot);
        b.iter(|| black_box(joined.domain_records(&universe)))
    });
    // The end-to-end effect: all seven tables from a plain snapshot (seven
    // joins) vs from a JoinedSnapshot (one join, seven cheap copies).
    group.bench_function("tables_1_to_7_plain", |b| {
        b.iter(|| {
            black_box(table1(&universe, &snapshot));
            black_box(table2(&universe, &snapshot));
            black_box(table3(&universe, &snapshot));
            black_box(table4(&universe, &snapshot));
            black_box(table5(&universe, &snapshot, None));
            black_box(table6(&universe, &snapshot));
            black_box(table7(&universe, &snapshot));
        })
    });
    group.bench_function("tables_1_to_7_joined", |b| {
        b.iter(|| {
            let joined = JoinedSnapshot::new(&universe, &snapshot);
            black_box(table1(&universe, &joined));
            black_box(table2(&universe, &joined));
            black_box(table3(&universe, &joined));
            black_box(table4(&universe, &joined));
            black_box(table5(&universe, &joined, None));
            black_box(table6(&universe, &joined));
            black_box(table7(&universe, &joined));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    packet_codecs,
    validation_machine,
    path_transit,
    full_connection,
    domain_join
);
criterion_main!(benches);
