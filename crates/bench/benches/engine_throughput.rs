//! Throughput of the discrete-event engine vs. the historical per-connection
//! driver loop, and of the timer-wheel scheduler vs. the binary-heap oracle.
//!
//! Two families of measurements:
//!
//! * **Driver loop** — the engine refactor moved connection runs onto a
//!   one-flow [`qem_netsim::Engine`]; the acceptance bar is that single-flow
//!   hosts/sec must be no worse than the legacy loop.  To keep the
//!   comparison honest the legacy loop lives on here, verbatim, built from
//!   the same public sans-IO endpoint API.
//! * **Scheduler** — the same workload driven through
//!   [`qem_netsim::EventQueue`] (binary heap, the reference oracle) and
//!   [`qem_netsim::TimerWheel`] (the production scheduler) at 1/10/100/500
//!   concurrent flows: raw scheduler churn, cancel-heavy RTO churn (the
//!   QUIC ACK-clock pattern — every wake cancels and re-arms a timer), and
//!   full engine runs of ticking flows.  The wheel's O(1) schedule/cancel
//!   is expected to pull ahead as concurrency grows.
//!
//! Run with: `cargo bench -p qem-bench --bench engine_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use qem_netsim::engine::{
    EngineCore, EventId, EventQueue, Flow, FlowStatus, Scheduler, SharedQueues,
};
use qem_netsim::{build_transit_path, Asn, CrossTraffic, DuplexPath, TimerWheel, TransitProfile};
use qem_netsim::{SimDuration, SimInstant};
use qem_packet::ecn::EcnCodepoint;
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header};
use qem_packet::quic::QUIC_PORT;
use qem_packet::udp::UdpHeader;
use qem_quic::client::{ClientConfig, ClientConnection};
use qem_quic::server::ServerConnection;
use qem_quic::ServerBehavior;
use qem_quic::{ConnectionOutcome, ConnectionRun, DriverConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

fn addrs() -> (IpAddr, IpAddr) {
    (
        IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 80)),
    )
}

fn clean_path() -> DuplexPath {
    DuplexPath::symmetric_clean_reverse(build_transit_path(
        Asn::DFN,
        Asn(16509),
        TransitProfile::Clean,
        false,
    ))
}

fn encapsulate(
    src: IpAddr,
    dst: IpAddr,
    sp: u16,
    dp: u16,
    ecn: EcnCodepoint,
    p: &[u8],
) -> IpDatagram {
    let udp = UdpHeader::new(sp, dp).encode(src, dst, p);
    let header = match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            IpHeader::V4(Ipv4Header::new(s, d, IpProtocol::Udp, 64).with_ecn(ecn))
        }
        _ => unreachable!("bench uses IPv4 only"),
    };
    IpDatagram::new(header, udp)
}

fn decapsulate(datagram: &IpDatagram) -> Option<Vec<u8>> {
    if datagram.header.protocol() != IpProtocol::Udp {
        return None;
    }
    let (_, payload) = UdpHeader::decode(&datagram.payload).ok()?;
    Some(payload.to_vec())
}

/// The pre-engine driver loop, kept verbatim as the performance baseline.
fn legacy_run_connection(
    client_config: ClientConfig,
    behavior: ServerBehavior,
    path: &DuplexPath,
    config: &DriverConfig,
    rng: &mut StdRng,
) -> bool {
    let mut client = ClientConnection::new(client_config, SimInstant::EPOCH, rng.gen());
    let mut server = ServerConnection::new(behavior, rng.gen());
    let mut now = SimInstant::EPOCH;
    let deadline = SimInstant::EPOCH + config.max_duration;

    for _ in 0..config.max_iterations {
        let mut activity = false;
        while let Some(transmit) = client.poll_transmit(now) {
            activity = true;
            let datagram = encapsulate(
                config.client_addr,
                config.server_addr,
                config.client_port,
                QUIC_PORT,
                transmit.ecn,
                &transmit.payload,
            );
            if let qem_netsim::TransitOutcome::Delivered { datagram, .. } =
                path.forward.transit(&datagram, rng)
            {
                if let Some(payload) = decapsulate(&datagram) {
                    server.handle_datagram(now, datagram.header.ecn(), &payload);
                }
            }
        }
        while let Some(transmit) = server.poll_transmit(now) {
            activity = true;
            let datagram = encapsulate(
                config.server_addr,
                config.client_addr,
                QUIC_PORT,
                config.client_port,
                transmit.ecn,
                &transmit.payload,
            );
            if let qem_netsim::TransitOutcome::Delivered { datagram, .. } =
                path.reverse.transit(&datagram, rng)
            {
                if let Some(payload) = decapsulate(&datagram) {
                    client.handle_datagram(now, datagram.header.ecn(), &payload);
                }
            }
        }
        if client.is_closed() {
            break;
        }
        if activity {
            continue;
        }
        let next = match (client.poll_timeout(), server.poll_timeout()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        match next {
            Some(t) if t <= deadline => {
                now = if t > now {
                    t
                } else {
                    now + SimDuration::from_millis(1)
                };
                client.handle_timeout(now);
                server.handle_timeout(now);
            }
            _ => break,
        }
    }
    client.report().connected
}

fn engine_hosts(n: u64, path: &DuplexPath, config: &DriverConfig) -> u64 {
    let mut connected = 0u64;
    for seed in 0..n {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome: ConnectionOutcome = ConnectionRun::new(
            ClientConfig::paper_default("bench.example"),
            ServerBehavior::accurate(),
            path,
            config.clone(),
        )
        .execute(&mut rng)
        .connection;
        connected += u64::from(outcome.report.connected);
    }
    connected
}

fn engine_hosts_with_metrics(n: u64, path: &DuplexPath, config: &DriverConfig) -> u64 {
    let mut connected = 0u64;
    for seed in 0..n {
        let mut rng = StdRng::seed_from_u64(seed);
        let run = ConnectionRun::new(
            ClientConfig::paper_default("bench.example"),
            ServerBehavior::accurate(),
            path,
            config.clone(),
        )
        .telemetry(true)
        .execute(&mut rng);
        connected += u64::from(run.connection.report.connected);
        // Consume the snapshot so the metrics pipeline cannot be elided.
        if let Some(telemetry) = run.telemetry {
            black_box(telemetry.metrics.counter("engine.events_processed"));
        }
    }
    connected
}

fn legacy_hosts(n: u64, path: &DuplexPath, config: &DriverConfig) -> u64 {
    let mut connected = 0u64;
    for seed in 0..n {
        let mut rng = StdRng::seed_from_u64(seed);
        connected += u64::from(legacy_run_connection(
            ClientConfig::paper_default("bench.example"),
            ServerBehavior::accurate(),
            path,
            config,
            &mut rng,
        ));
    }
    connected
}

fn engine_throughput(c: &mut Criterion) {
    let (client_addr, server_addr) = addrs();
    let path = clean_path();
    let config = DriverConfig::new(client_addr, server_addr);
    const HOSTS: u64 = 50;

    // Headline numbers once per run: hosts/sec, engine vs legacy (both
    // warmed up first so neither pays one-time setup costs).
    let a = legacy_hosts(HOSTS, &path, &config);
    let b = engine_hosts(HOSTS, &path, &config);
    assert_eq!(a, b, "engine and legacy loop must agree on outcomes");
    let t = Instant::now();
    let _ = black_box(legacy_hosts(HOSTS, &path, &config));
    let legacy_rate = HOSTS as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = black_box(engine_hosts(HOSTS, &path, &config));
    let engine_rate = HOSTS as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = black_box(engine_hosts_with_metrics(HOSTS, &path, &config));
    let metrics_rate = HOSTS as f64 / t.elapsed().as_secs_f64();
    println!("--- engine_throughput: single-flow hosts/sec ---");
    println!("  legacy driver loop: {legacy_rate:>10.0} hosts/s");
    println!(
        "  one-flow engine:    {engine_rate:>10.0} hosts/s ({:+.1} %)",
        100.0 * (engine_rate - legacy_rate) / legacy_rate
    );
    println!(
        "  engine + telemetry: {metrics_rate:>10.0} hosts/s ({:+.1} % vs engine; budget -5 %)",
        100.0 * (metrics_rate - engine_rate) / engine_rate
    );

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.bench_function("single_flow_legacy_loop", |bch| {
        bch.iter(|| black_box(legacy_hosts(10, &path, &config)))
    });
    group.bench_function("single_flow_engine", |bch| {
        bch.iter(|| black_box(engine_hosts(10, &path, &config)))
    });
    // The observability acceptance bar: metrics + trace recording on the
    // same scenario must stay within a few percent of the bare engine.
    group.bench_function("single_flow_engine_with_metrics", |bch| {
        bch.iter(|| black_box(engine_hosts_with_metrics(10, &path, &config)))
    });
    group.bench_function("shared_bottleneck_32_load_flows", |bch| {
        let cross = CrossTraffic::congested();
        bch.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(
                ConnectionRun::new(
                    ClientConfig::paper_default("bench.example"),
                    ServerBehavior::accurate(),
                    &path,
                    config.clone(),
                )
                .cross_traffic(cross)
                .execute(&mut rng),
            )
        })
    });
    group.finish();
}

/// A flow that does nothing but re-arm its timer: the whole engine run is
/// scheduler cost, which is exactly what the heap-vs-wheel comparison wants
/// to isolate.
struct TickerFlow {
    interval: SimDuration,
    remaining: u32,
}

impl Flow for TickerFlow {
    fn on_wake(&mut self, now: SimInstant, _net: &mut SharedQueues) -> FlowStatus {
        if self.remaining == 0 {
            FlowStatus::Done
        } else {
            self.remaining -= 1;
            FlowStatus::Sleep(now + self.interval)
        }
    }
}

/// Staggered, co-prime-ish periods so the timers interleave across slots
/// instead of piling onto one instant.
fn ticker_interval(i: usize) -> SimDuration {
    SimDuration::from_micros(97 + (i as u64 % 64) * 13)
}

/// Raw scheduler churn: `flows` concurrent timers, each popped and re-armed
/// until ~`flows * rounds` events have fired.  No engine, no dispatch — pure
/// schedule/pop cost of the [`Scheduler`] impl.
fn scheduler_churn<S: Scheduler<usize> + Default>(flows: usize, rounds: usize) -> u64 {
    let mut sched = S::default();
    for i in 0..flows {
        sched.schedule_at(SimInstant::EPOCH + SimDuration::from_micros(i as u64), i);
    }
    let target = (flows * rounds) as u64;
    let mut fired = 0u64;
    let mut batch = Vec::new();
    while fired < target {
        if sched.pop_batch(&mut batch) == 0 {
            break;
        }
        for event in &batch {
            fired += 1;
            sched.schedule_at(event.at + ticker_interval(event.payload), event.payload);
        }
    }
    fired
}

/// The QUIC ACK-clock pattern: every wake cancels the flow's outstanding
/// retransmission timer and re-arms both it and the next pacing tick, so
/// cancellations happen as often as fires.  This is the workload the wheel
/// was built for — the heap must scan its storage per cancel before
/// tombstoning, the wheel frees an arena slot in O(1).
fn rto_churn<S: Scheduler<usize> + Default>(flows: usize, rounds: usize) -> u64 {
    let mut sched = S::default();
    let mut rtos: Vec<EventId> = Vec::with_capacity(flows);
    for i in 0..flows {
        sched.schedule_at(SimInstant::EPOCH + SimDuration::from_micros(i as u64), i);
        rtos.push(sched.schedule_at(
            SimInstant::EPOCH + SimDuration::from_millis(300) + SimDuration::from_micros(i as u64),
            i,
        ));
    }
    let target = (flows * rounds) as u64;
    let mut fired = 0u64;
    let mut batch = Vec::new();
    while fired < target {
        if sched.pop_batch(&mut batch) == 0 {
            break;
        }
        for event in &batch {
            fired += 1;
            let flow = event.payload;
            // The "ACK" arrived: the outstanding RTO is dead; a fresh one
            // and the next pacing tick take its place.
            sched.cancel(rtos[flow]);
            sched.schedule_at(event.at + ticker_interval(flow), flow);
            rtos[flow] = sched.schedule_at(event.at + SimDuration::from_millis(300), flow);
        }
    }
    fired
}

/// Full engine run over `flows` ticking flows: scheduler cost plus the
/// engine's dispatch/trace overhead, identical on both schedulers.
fn ticker_engine_events<S: Scheduler<usize> + Default>(flows: usize, wakes: u32) -> u64 {
    let mut tickers: Vec<TickerFlow> = (0..flows)
        .map(|i| TickerFlow {
            interval: ticker_interval(i),
            remaining: wakes,
        })
        .collect();
    let mut engine: EngineCore<'_, S> = EngineCore::new(SharedQueues::new());
    for (i, ticker) in tickers.iter_mut().enumerate() {
        engine.add_flow_at(
            SimInstant::EPOCH + SimDuration::from_micros(i as u64),
            ticker,
        );
    }
    engine.run();
    engine.events_processed()
}

fn scheduler_scaling(c: &mut Criterion) {
    const ROUNDS: usize = 200;
    const WAKES: u32 = 200;

    // Headline once per run: raw churn ops/sec at each concurrency level,
    // with and without per-wake cancellation.
    println!("--- scheduler_scaling: heap vs wheel, raw churn ---");
    for &flows in &[1usize, 10, 100, 500] {
        let heap_fired = scheduler_churn::<EventQueue<usize>>(flows, ROUNDS);
        let wheel_fired = scheduler_churn::<TimerWheel<usize>>(flows, ROUNDS);
        assert_eq!(heap_fired, wheel_fired, "both schedulers fire equally");
        let t = Instant::now();
        let _ = black_box(scheduler_churn::<EventQueue<usize>>(flows, ROUNDS));
        let heap = t.elapsed();
        let t = Instant::now();
        let _ = black_box(scheduler_churn::<TimerWheel<usize>>(flows, ROUNDS));
        let wheel = t.elapsed();
        println!(
            "  {flows:>3} flows: heap {heap:>9.1?}  wheel {wheel:>9.1?}  ({:.2}x)",
            heap.as_secs_f64() / wheel.as_secs_f64()
        );
    }
    println!("--- scheduler_scaling: heap vs wheel, RTO cancel churn ---");
    for &flows in &[1usize, 10, 100, 500] {
        let heap_fired = rto_churn::<EventQueue<usize>>(flows, ROUNDS);
        let wheel_fired = rto_churn::<TimerWheel<usize>>(flows, ROUNDS);
        assert_eq!(heap_fired, wheel_fired, "both schedulers fire equally");
        let t = Instant::now();
        let _ = black_box(rto_churn::<EventQueue<usize>>(flows, ROUNDS));
        let heap = t.elapsed();
        let t = Instant::now();
        let _ = black_box(rto_churn::<TimerWheel<usize>>(flows, ROUNDS));
        let wheel = t.elapsed();
        println!(
            "  {flows:>3} flows: heap {heap:>9.1?}  wheel {wheel:>9.1?}  ({:.2}x)",
            heap.as_secs_f64() / wheel.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("scheduler_scaling");
    group.sample_size(10);
    for &flows in &[1usize, 10, 100, 500] {
        group.bench_function(&format!("churn_heap_{flows}_flows"), |bch| {
            bch.iter(|| black_box(scheduler_churn::<EventQueue<usize>>(flows, ROUNDS)))
        });
        group.bench_function(&format!("churn_wheel_{flows}_flows"), |bch| {
            bch.iter(|| black_box(scheduler_churn::<TimerWheel<usize>>(flows, ROUNDS)))
        });
    }
    // The cancel-heavy variant at the concurrency levels the acceptance bar
    // names: O(1) vs O(n) cancellation is the wheel's structural win.
    for &flows in &[100usize, 500] {
        group.bench_function(&format!("rto_churn_heap_{flows}_flows"), |bch| {
            bch.iter(|| black_box(rto_churn::<EventQueue<usize>>(flows, ROUNDS)))
        });
        group.bench_function(&format!("rto_churn_wheel_{flows}_flows"), |bch| {
            bch.iter(|| black_box(rto_churn::<TimerWheel<usize>>(flows, ROUNDS)))
        });
    }
    // Engine-level confirmation at the concurrency levels where the wheel
    // matters: same flows, same wakes, full dispatch path.
    for &flows in &[100usize, 500] {
        group.bench_function(&format!("ticker_engine_heap_{flows}_flows"), |bch| {
            bch.iter(|| black_box(ticker_engine_events::<EventQueue<usize>>(flows, WAKES)))
        });
        group.bench_function(&format!("ticker_engine_wheel_{flows}_flows"), |bch| {
            bch.iter(|| black_box(ticker_engine_events::<TimerWheel<usize>>(flows, WAKES)))
        });
    }
    group.finish();
}

criterion_group!(benches, engine_throughput, scheduler_scaling);
criterion_main!(benches);
