//! Throughput of the discrete-event engine vs. the historical per-connection
//! driver loop.
//!
//! The engine refactor moved `run_connection` onto a one-flow
//! [`qem_netsim::Engine`]; the acceptance bar is that single-flow hosts/sec
//! must be no worse than the legacy loop.  To keep the comparison honest the
//! legacy loop lives on here, verbatim, built from the same public sans-IO
//! endpoint API — if the engine wrapper ever regresses, this bench shows it.
//!
//! Run with: `cargo bench -p qem-bench --bench engine_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use qem_netsim::{build_transit_path, Asn, CrossTraffic, DuplexPath, TransitProfile};
use qem_netsim::{SimDuration, SimInstant};
use qem_packet::ecn::EcnCodepoint;
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header};
use qem_packet::quic::QUIC_PORT;
use qem_packet::udp::UdpHeader;
use qem_quic::client::{ClientConfig, ClientConnection};
use qem_quic::server::ServerConnection;
use qem_quic::ServerBehavior;
use qem_quic::{
    run_connection, run_connection_under_load, run_connection_with_telemetry, ConnectionOutcome,
    DriverConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

fn addrs() -> (IpAddr, IpAddr) {
    (
        IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 80)),
    )
}

fn clean_path() -> DuplexPath {
    DuplexPath::symmetric_clean_reverse(build_transit_path(
        Asn::DFN,
        Asn(16509),
        TransitProfile::Clean,
        false,
    ))
}

fn encapsulate(
    src: IpAddr,
    dst: IpAddr,
    sp: u16,
    dp: u16,
    ecn: EcnCodepoint,
    p: &[u8],
) -> IpDatagram {
    let udp = UdpHeader::new(sp, dp).encode(src, dst, p);
    let header = match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            IpHeader::V4(Ipv4Header::new(s, d, IpProtocol::Udp, 64).with_ecn(ecn))
        }
        _ => unreachable!("bench uses IPv4 only"),
    };
    IpDatagram::new(header, udp)
}

fn decapsulate(datagram: &IpDatagram) -> Option<Vec<u8>> {
    if datagram.header.protocol() != IpProtocol::Udp {
        return None;
    }
    let (_, payload) = UdpHeader::decode(&datagram.payload).ok()?;
    Some(payload.to_vec())
}

/// The pre-engine driver loop, kept verbatim as the performance baseline.
fn legacy_run_connection(
    client_config: ClientConfig,
    behavior: ServerBehavior,
    path: &DuplexPath,
    config: &DriverConfig,
    rng: &mut StdRng,
) -> bool {
    let mut client = ClientConnection::new(client_config, SimInstant::EPOCH, rng.gen());
    let mut server = ServerConnection::new(behavior, rng.gen());
    let mut now = SimInstant::EPOCH;
    let deadline = SimInstant::EPOCH + config.max_duration;

    for _ in 0..config.max_iterations {
        let mut activity = false;
        while let Some(transmit) = client.poll_transmit(now) {
            activity = true;
            let datagram = encapsulate(
                config.client_addr,
                config.server_addr,
                config.client_port,
                QUIC_PORT,
                transmit.ecn,
                &transmit.payload,
            );
            if let qem_netsim::TransitOutcome::Delivered { datagram, .. } =
                path.forward.transit(&datagram, rng)
            {
                if let Some(payload) = decapsulate(&datagram) {
                    server.handle_datagram(now, datagram.header.ecn(), &payload);
                }
            }
        }
        while let Some(transmit) = server.poll_transmit(now) {
            activity = true;
            let datagram = encapsulate(
                config.server_addr,
                config.client_addr,
                QUIC_PORT,
                config.client_port,
                transmit.ecn,
                &transmit.payload,
            );
            if let qem_netsim::TransitOutcome::Delivered { datagram, .. } =
                path.reverse.transit(&datagram, rng)
            {
                if let Some(payload) = decapsulate(&datagram) {
                    client.handle_datagram(now, datagram.header.ecn(), &payload);
                }
            }
        }
        if client.is_closed() {
            break;
        }
        if activity {
            continue;
        }
        let next = match (client.poll_timeout(), server.poll_timeout()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        match next {
            Some(t) if t <= deadline => {
                now = if t > now {
                    t
                } else {
                    now + SimDuration::from_millis(1)
                };
                client.handle_timeout(now);
                server.handle_timeout(now);
            }
            _ => break,
        }
    }
    client.report().connected
}

fn engine_hosts(n: u64, path: &DuplexPath, config: &DriverConfig) -> u64 {
    let mut connected = 0u64;
    for seed in 0..n {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome: ConnectionOutcome = run_connection(
            ClientConfig::paper_default("bench.example"),
            ServerBehavior::accurate(),
            path,
            config,
            &mut rng,
        );
        connected += u64::from(outcome.report.connected);
    }
    connected
}

fn engine_hosts_with_metrics(n: u64, path: &DuplexPath, config: &DriverConfig) -> u64 {
    let mut connected = 0u64;
    for seed in 0..n {
        let mut rng = StdRng::seed_from_u64(seed);
        let (outcome, telemetry) = run_connection_with_telemetry(
            ClientConfig::paper_default("bench.example"),
            ServerBehavior::accurate(),
            path,
            config,
            &mut rng,
        );
        connected += u64::from(outcome.report.connected);
        // Consume the snapshot so the metrics pipeline cannot be elided.
        black_box(telemetry.metrics.counter("engine.events_processed"));
    }
    connected
}

fn legacy_hosts(n: u64, path: &DuplexPath, config: &DriverConfig) -> u64 {
    let mut connected = 0u64;
    for seed in 0..n {
        let mut rng = StdRng::seed_from_u64(seed);
        connected += u64::from(legacy_run_connection(
            ClientConfig::paper_default("bench.example"),
            ServerBehavior::accurate(),
            path,
            config,
            &mut rng,
        ));
    }
    connected
}

fn engine_throughput(c: &mut Criterion) {
    let (client_addr, server_addr) = addrs();
    let path = clean_path();
    let config = DriverConfig::new(client_addr, server_addr);
    const HOSTS: u64 = 50;

    // Headline numbers once per run: hosts/sec, engine vs legacy (both
    // warmed up first so neither pays one-time setup costs).
    let a = legacy_hosts(HOSTS, &path, &config);
    let b = engine_hosts(HOSTS, &path, &config);
    assert_eq!(a, b, "engine and legacy loop must agree on outcomes");
    let t = Instant::now();
    let _ = black_box(legacy_hosts(HOSTS, &path, &config));
    let legacy_rate = HOSTS as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = black_box(engine_hosts(HOSTS, &path, &config));
    let engine_rate = HOSTS as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = black_box(engine_hosts_with_metrics(HOSTS, &path, &config));
    let metrics_rate = HOSTS as f64 / t.elapsed().as_secs_f64();
    println!("--- engine_throughput: single-flow hosts/sec ---");
    println!("  legacy driver loop: {legacy_rate:>10.0} hosts/s");
    println!(
        "  one-flow engine:    {engine_rate:>10.0} hosts/s ({:+.1} %)",
        100.0 * (engine_rate - legacy_rate) / legacy_rate
    );
    println!(
        "  engine + telemetry: {metrics_rate:>10.0} hosts/s ({:+.1} % vs engine; budget -5 %)",
        100.0 * (metrics_rate - engine_rate) / engine_rate
    );

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.bench_function("single_flow_legacy_loop", |bch| {
        bch.iter(|| black_box(legacy_hosts(10, &path, &config)))
    });
    group.bench_function("single_flow_engine", |bch| {
        bch.iter(|| black_box(engine_hosts(10, &path, &config)))
    });
    // The observability acceptance bar: metrics + trace recording on the
    // same scenario must stay within a few percent of the bare engine.
    group.bench_function("single_flow_engine_with_metrics", |bch| {
        bch.iter(|| black_box(engine_hosts_with_metrics(10, &path, &config)))
    });
    group.bench_function("shared_bottleneck_32_load_flows", |bch| {
        let cross = CrossTraffic::congested();
        bch.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(run_connection_under_load(
                ClientConfig::paper_default("bench.example"),
                ServerBehavior::accurate(),
                &path,
                &config,
                &cross,
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
