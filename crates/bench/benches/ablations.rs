//! Ablations of the design choices called out in DESIGN.md §5:
//!
//! * the ECN validation budget (paper's 5 packets / 2 timeouts vs. the RFC's
//!   10 / 3),
//! * the per-IP deduplication used by the cloud workers,
//! * the tracebox sampling probability,
//! * the L4S interaction with ECT(0)→ECT(1) re-marking (paper §9.3),
//! * the store codec (encode/decode throughput, in-memory vs store-backed
//!   census wall time).
//!
//! Run with: `cargo bench -p qem-bench --bench ablations`

use criterion::{criterion_group, criterion_main, Criterion};
use qem_bench::bench_universe;
use qem_core::reports::table4;
use qem_core::{Campaign, CampaignOptions, EcnClass, ScanOptions, Scanner, VantagePoint};
use qem_netsim::aqm::remark_then_aqm_probability;
use qem_netsim::{AqmConfig, EcnPolicy};
use qem_packet::ecn::EcnCodepoint;
use qem_quic::ecn::{EcnConfig, EcnValidationState, EcnValidator};
use qem_web::SnapshotDate;
use std::hint::black_box;

/// Feed a validator a lossy-testing-phase scenario and report whether it ends
/// up Capable.
fn run_validator(config: EcnConfig, delivered: u64) -> EcnValidationState {
    let mut validator = EcnValidator::new(config);
    for _ in 0..config.testing_packets {
        let cp = validator.codepoint_for_next_packet();
        validator.on_packet_sent(cp);
    }
    if delivered == 0 {
        for _ in 0..config.max_timeouts {
            validator.on_timeout();
        }
    } else {
        validator.on_ack_received(
            delivered.min(config.testing_packets),
            delivered.min(config.testing_packets),
            Some(qem_packet::ecn::EcnCounts {
                ect0: delivered.min(config.testing_packets),
                ect1: 0,
                ce: 0,
            }),
        );
    }
    validator.state()
}

fn ablation_validation_budget(c: &mut Criterion) {
    println!("--- Ablation: ECN validation budget (paper 5/2 vs RFC 10/3) ---");
    for (label, config) in [
        ("paper 5 packets / 2 timeouts", EcnConfig::paper_default()),
        ("rfc 10 packets / 3 timeouts", EcnConfig::rfc_default()),
    ] {
        let capable_full = run_validator(config, config.testing_packets);
        let capable_partial = run_validator(config, 3);
        let lost = run_validator(config, 0);
        println!(
            "  {label:<32} full-delivery={capable_full:?} partial(3 acked)={capable_partial:?} all-lost={lost:?}"
        );
    }
    let mut group = c.benchmark_group("ablation_validation_budget");
    group.bench_function("paper_budget", |b| {
        b.iter(|| black_box(run_validator(EcnConfig::paper_default(), 5)))
    });
    group.bench_function("rfc_budget", |b| {
        b.iter(|| black_box(run_validator(EcnConfig::rfc_default(), 10)))
    });
    group.finish();
}

fn ablation_ip_dedup(c: &mut Criterion) {
    let universe = bench_universe();
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions::paper_default();
    let main = campaign.run_main(&options, false);

    // With dedup the cloud worker probes each IP once and re-weights by the
    // domain-to-IP mapping; without dedup it would probe every domain.  The
    // simulated world makes both equivalent by construction (same IP ⇒ same
    // host behaviour), so the interesting quantity is the probe volume saved.
    let quic_hosts = main.v4.quic_host_count() as u64;
    let quic_domains = main
        .v4
        .domain_records(&universe)
        .iter()
        .filter(|r| r.quic)
        .count() as u64;
    println!("--- Ablation: per-IP deduplication for cloud workers ---");
    println!(
        "  probes with dedup: {quic_hosts}, without dedup: {quic_domains} (saving factor {:.1}x; paper reports ~40x)",
        quic_domains as f64 / quic_hosts.max(1) as f64
    );
    let mut group = c.benchmark_group("ablation_ip_dedup");
    group.sample_size(10);
    let deduped: Vec<usize> = main
        .v4
        .hosts
        .values()
        .filter(|m| m.quic_reachable)
        .map(|m| m.host_id)
        .collect();
    let scanner = Scanner::new(
        &universe,
        VantagePoint::cloud_fleet().remove(0),
        ScanOptions::paper_default(SnapshotDate::APR_2023),
    );
    group.bench_function("cloud_worker_with_dedup", |b| {
        b.iter(|| black_box(scanner.scan_hosts(&deduped)))
    });
    group.finish();
}

fn ablation_trace_sampling(c: &mut Criterion) {
    let universe = bench_universe();
    println!("--- Ablation: tracebox sampling probability (Table 4 coverage) ---");
    let mut results = Vec::new();
    for probability in [0.05, 0.2, 1.0] {
        let options = CampaignOptions {
            trace_sample_probability: probability,
            ..CampaignOptions::paper_default()
        };
        let campaign = Campaign::new(&universe);
        let main = campaign.run_main(&options, false);
        let t4 = table4(&universe, &main.v4);
        let (cleared, not_tested, not_cleared) = t4.totals;
        println!(
            "  p = {probability:>4}: cleared={cleared} not_tested={not_tested} not_cleared={not_cleared}"
        );
        results.push((probability, cleared));
    }
    // Attribution must be stable: full tracing finds at most marginally more
    // cleared domains than 20 % per-domain sampling.
    let mut group = c.benchmark_group("ablation_trace_sampling");
    group.sample_size(10);
    let campaign = Campaign::new(&universe);
    group.bench_function("campaign_with_20pct_sampling", |b| {
        b.iter(|| {
            black_box(campaign.run_main(&CampaignOptions::paper_default(), false));
        })
    });
    group.finish();
}

fn l4s_ablation(c: &mut Criterion) {
    println!("--- Ablation: L4S marking probability under ECT(0)->ECT(1) re-marking (§9.3) ---");
    let aqm = AqmConfig::l4s_default();
    for (label, policy) in [
        ("clean path", EcnPolicy::Pass),
        ("AS1299-style re-marking", EcnPolicy::RemarkEct0ToEct1),
    ] {
        let p = remark_then_aqm_probability(policy, &aqm, EcnCodepoint::Ect0);
        println!("  classic ECT(0) flow via {label:<26} -> L4S-queue marking probability {p:.3}");
    }
    let mut group = c.benchmark_group("l4s_ablation");
    group.bench_function("remark_then_aqm_probability", |b| {
        b.iter(|| {
            black_box(remark_then_aqm_probability(
                EcnPolicy::RemarkEct0ToEct1,
                &aqm,
                EcnCodepoint::Ect0,
            ))
        })
    });
    group.finish();

    // Cross-check the headline claim once per run.
    let clean = remark_then_aqm_probability(EcnPolicy::Pass, &aqm, EcnCodepoint::Ect0);
    let remarked =
        remark_then_aqm_probability(EcnPolicy::RemarkEct0ToEct1, &aqm, EcnCodepoint::Ect0);
    assert!(remarked > 10.0 * clean);
    // And confirm the pipeline classifies those paths as re-marking failures.
    let _ = EcnClass::RemarkEct1;
}

fn ablation_store_codec(c: &mut Criterion) {
    use qem_core::SnapshotSource;
    use qem_store::codec::{decode_block, encode_block};
    use qem_store::CampaignStoreExt;
    use std::time::Instant;

    let universe = bench_universe();
    let campaign = Campaign::new(&universe);
    let options = CampaignOptions::paper_default();
    let main = campaign.run_main(&options, false);

    // Pull the measurements out in host-id order, as the writer sees them.
    let mut hosts = Vec::with_capacity(main.v4.hosts.len());
    main.v4.for_each_host(&mut |m| hosts.push(m.clone()));

    // One timed pass outside Criterion for the headline hosts/sec numbers.
    let start = Instant::now();
    let block = encode_block(&hosts);
    let encode_elapsed = start.elapsed();
    let start = Instant::now();
    let decoded = decode_block(&block).expect("decode bench block");
    let decode_elapsed = start.elapsed();
    assert_eq!(decoded.len(), hosts.len());
    println!("--- Ablation: store codec (encode/decode throughput) ---");
    println!(
        "  {} hosts -> {:.1} KiB ({:.1} bytes/host)",
        hosts.len(),
        block.len() as f64 / 1024.0,
        block.len() as f64 / hosts.len().max(1) as f64
    );
    println!(
        "  encode: {:.0} hosts/sec, decode: {:.0} hosts/sec",
        hosts.len() as f64 / encode_elapsed.as_secs_f64().max(1e-9),
        hosts.len() as f64 / decode_elapsed.as_secs_f64().max(1e-9),
    );

    let mut group = c.benchmark_group("ablation_store_codec");
    group.sample_size(10);
    group.bench_function("encode_block", |b| {
        b.iter(|| black_box(encode_block(&hosts)))
    });
    group.bench_function("decode_block", |b| {
        b.iter(|| black_box(decode_block(&block).expect("decode")))
    });

    // In-memory vs store-backed census wall time: the price of persistence.
    let vantage = VantagePoint::main();
    group.bench_function("census_in_memory", |b| {
        b.iter(|| black_box(campaign.run_snapshot(&vantage, &options, false)))
    });
    // Each iteration writes a fresh directory; deleting them is filesystem
    // housekeeping, not persistence cost, so it happens after timing.
    let mut run = 0u32;
    let mut dirs = Vec::new();
    group.bench_function("census_store_backed", |b| {
        b.iter(|| {
            let dir =
                std::env::temp_dir().join(format!("qem-bench-store-{}-{run}", std::process::id()));
            run += 1;
            dirs.push(dir.clone());
            let stored = campaign
                .run_snapshot_to_store(&vantage, &options, false, &dir)
                .expect("store census");
            black_box(stored.recorded_host_count());
        })
    });
    for dir in dirs {
        std::fs::remove_dir_all(&dir).expect("cleanup bench store");
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_validation_budget,
    ablation_ip_dedup,
    ablation_trace_sampling,
    l4s_ablation,
    ablation_store_codec
);
criterion_main!(benches);
