//! Throughput of the workload layer: how fast the engine pushes application
//! traffic (bulk objects, RTC frames) through a congested shared bottleneck.
//!
//! Each measurement runs a complete scenario — flows, queues, AQM, collectors
//! — so the numbers are end-to-end: virtual *application* work per wall-clock
//! second, not raw scheduler churn (that's `engine_throughput`).  Alongside
//! the Criterion timings, each group prints the derived domain rates (RTC
//! frames/sec, bulk MB/sec simulated per wall-second) to stderr where they
//! cannot disturb JSON bench output.
//!
//! Run with: `cargo bench -p qem-bench --bench workload_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use qem_workload::{AppSpec, EcnVariant, Scenario, Transport};
use std::hint::black_box;
use std::time::Instant;

/// A bulk-only scenario: six transfers over the shared bottleneck.
fn bulk_scenario() -> Scenario {
    let mut scenario = Scenario::netbench_default(7);
    scenario.name = "bench-bulk".into();
    scenario.apps = vec![
        AppSpec::BulkTransfer {
            transport: Transport::Quic,
            object_size: 256 * 1024,
            connections: 4,
        },
        AppSpec::BulkTransfer {
            transport: Transport::Tcp,
            object_size: 256 * 1024,
            connections: 2,
        },
    ];
    scenario
}

/// An RTC-only scenario: two seconds of 30 fps streaming plus load.
fn rtc_scenario() -> Scenario {
    let mut scenario = Scenario::netbench_default(7);
    scenario.name = "bench-rtc".into();
    scenario.apps = vec![
        AppSpec::RtcStream {
            frame_interval_us: 33_000,
            bitrate_kbps: 3_000,
            duration_us: 2_000_000,
        },
        AppSpec::Load {
            flows: 8,
            packets_per_flow: 80,
            interval_us: 4_000,
        },
    ];
    scenario
}

fn bench_bulk(c: &mut Criterion) {
    let scenario = bulk_scenario();
    let object_bytes: u64 = scenario
        .apps
        .iter()
        .map(|app| match *app {
            AppSpec::BulkTransfer {
                object_size,
                connections,
                ..
            } => object_size * u64::from(connections),
            _ => 0,
        })
        .sum();

    let mut group = c.benchmark_group("workload_bulk");
    for variant in EcnVariant::ALL {
        group.bench_function(&format!("run/{}", variant.label()), |b| {
            b.iter(|| black_box(scenario.run(black_box(variant))))
        });
    }
    group.finish();

    // Domain rate: simulated bulk megabytes delivered per wall-clock second.
    let started = Instant::now();
    let mut runs = 0u64;
    while runs < 5 {
        black_box(scenario.run(EcnVariant::EcnOn));
        runs += 1;
    }
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "workload_bulk: {:.1} MB/sec simulated bulk transfer ({} runs in {:.2}s)",
        (object_bytes * runs) as f64 / 1e6 / elapsed,
        runs,
        elapsed
    );
}

fn bench_rtc(c: &mut Criterion) {
    let scenario = rtc_scenario();
    let frames_per_run: u64 = scenario
        .apps
        .iter()
        .map(|app| match *app {
            AppSpec::RtcStream {
                frame_interval_us,
                duration_us,
                ..
            } => duration_us / frame_interval_us.max(1),
            _ => 0,
        })
        .sum();

    let mut group = c.benchmark_group("workload_rtc");
    for variant in EcnVariant::ALL {
        group.bench_function(&format!("run/{}", variant.label()), |b| {
            b.iter(|| black_box(scenario.run(black_box(variant))))
        });
    }
    group.finish();

    // Domain rate: simulated RTC frames processed per wall-clock second.
    let started = Instant::now();
    let mut runs = 0u64;
    while runs < 5 {
        black_box(scenario.run(EcnVariant::EcnOn));
        runs += 1;
    }
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "workload_rtc: {:.0} frames/sec simulated ({} runs in {:.2}s)",
        (frames_per_run * runs) as f64 / elapsed,
        runs,
        elapsed
    );
}

fn bench_mixed(c: &mut Criterion) {
    let scenario = Scenario::netbench_default(7);
    let mut group = c.benchmark_group("workload_mixed");
    group.bench_function("netbench_default/all_variants", |b| {
        b.iter(|| black_box(scenario.run_all()))
    });
    group.finish();
}

criterion_group!(benches, bench_bulk, bench_rtc, bench_mixed);
criterion_main!(benches);
