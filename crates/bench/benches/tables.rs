//! Regenerates Tables 1–7 of the paper and benchmarks the pipeline stages
//! that produce them.
//!
//! Run with: `cargo bench -p qem-bench --bench tables`

use criterion::{criterion_group, criterion_main, Criterion};
use qem_bench::{bench_campaign, bench_universe};
use qem_core::reports::{table1, table2, table3, table4, table5, table6, table7};
use qem_core::{ScanOptions, Scanner, VantagePoint};
use qem_web::SnapshotDate;
use std::hint::black_box;

fn tables(c: &mut Criterion) {
    let universe = bench_universe();
    let result = bench_campaign(&universe);
    let v4 = &result.v4;
    let v6 = result.v6.as_ref();

    // Print the regenerated tables once: this output *is* the reproduction.
    println!("{}", table1(&universe, v4));
    println!("{}", table2(&universe, v4));
    println!("{}", table3(&universe, v4));
    println!("{}", table4(&universe, v4));
    println!("{}", table5(&universe, v4, v6));
    println!("{}", table6(&universe, v4));
    println!("{}", table7(&universe, v4));

    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_visible_support", |b| {
        b.iter(|| black_box(table1(&universe, v4)))
    });
    group.bench_function("table2_cno_providers", |b| {
        b.iter(|| black_box(table2(&universe, v4)))
    });
    group.bench_function("table3_toplist_providers", |b| {
        b.iter(|| black_box(table3(&universe, v4)))
    });
    group.bench_function("table4_clearing", |b| {
        b.iter(|| black_box(table4(&universe, v4)))
    });
    group.bench_function("table5_validation", |b| {
        b.iter(|| black_box(table5(&universe, v4, v6)))
    });
    group.bench_function("table6_validation_providers", |b| {
        b.iter(|| black_box(table6(&universe, v4)))
    });
    group.bench_function("table7_failure_attribution", |b| {
        b.iter(|| black_box(table7(&universe, v4)))
    });

    // The underlying measurement stage: scanning a batch of QUIC hosts.
    let quic_hosts: Vec<usize> = universe
        .hosts
        .iter()
        .filter(|h| h.stack.is_some())
        .map(|h| h.id)
        .take(64)
        .collect();
    let scanner = Scanner::new(
        &universe,
        VantagePoint::main(),
        ScanOptions::paper_default(SnapshotDate::APR_2023),
    );
    group.bench_function("scan_64_quic_hosts", |b| {
        b.iter(|| black_box(scanner.scan_hosts(&quic_hosts)))
    });
    group.finish();
}

criterion_group!(benches, tables);
criterion_main!(benches);
