//! Read-path resilience: corruption surfaces as typed [`StoreError`]s at
//! open time, quarantining degrades a snapshot to partial results instead
//! of dying, and a campaign killed mid-write (torn `.tmp` and all) resumes
//! to a store byte-identical to an uninterrupted run.

use qem_core::observation::HostMeasurement;
use qem_core::source::SnapshotSource;
use qem_store::{CampaignWriter, SnapshotMeta, StoreError, StoredSnapshot};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qem-store-resilience-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn meta() -> SnapshotMeta {
    SnapshotMeta::for_campaign(
        &qem_core::campaign::CampaignOptions::paper_default(),
        &qem_core::vantage::VantagePoint::main(),
        false,
    )
}

fn measurement(host_id: usize) -> HostMeasurement {
    HostMeasurement {
        host_id,
        quic_reachable: host_id % 3 == 0,
        quic: None,
        tcp: None,
        trace: None,
    }
}

/// A complete store of `hosts` measurements split into segments of
/// `capacity`.
fn write_store(dir: &Path, hosts: usize, capacity: usize) -> StoredSnapshot {
    let mut writer = CampaignWriter::create(dir, &meta())
        .unwrap()
        .with_segment_capacity(capacity);
    for id in 0..hosts {
        writer.append(measurement(id)).unwrap();
    }
    writer.finish().unwrap()
}

// ---------------------------------------------------------------------------
// Eager seal verification (satellite: typed corruption at open)
// ---------------------------------------------------------------------------

#[test]
fn a_flipped_bit_fails_open_with_a_typed_error_naming_the_segment() {
    let dir = temp_dir("bitflip");
    write_store(&dir, 20, 8);
    let victim = dir.join("segment-00001.qseg");
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01; // a single flipped bit
    fs::write(&victim, &bytes).unwrap();

    match StoredSnapshot::open(&dir) {
        Err(StoreError::Corrupt(msg)) => assert!(
            msg.contains("segment-00001.qseg"),
            "error must name the corrupt segment: {msg}"
        ),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_truncated_segment_fails_open_with_a_typed_error_naming_the_segment() {
    let dir = temp_dir("truncate");
    write_store(&dir, 20, 8);
    let victim = dir.join("segment-00002.qseg");
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    match StoredSnapshot::open(&dir) {
        Err(StoreError::Corrupt(msg)) => assert!(
            msg.contains("segment-00002.qseg"),
            "error must name the truncated segment: {msg}"
        ),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Even truncation below the 8-byte seal is a typed error, not a panic.
    fs::write(&victim, b"QSE").unwrap();
    assert!(matches!(
        StoredSnapshot::open(&dir),
        Err(StoreError::Corrupt(_))
    ));
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Quarantine: skip + count + report
// ---------------------------------------------------------------------------

#[test]
fn quarantining_skips_corrupt_segments_and_counts_them() {
    let dir = temp_dir("quarantine");
    write_store(&dir, 24, 8); // segments 0, 1, 2 with 8 hosts each
    let victim = dir.join("segment-00001.qseg");
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x80;
    fs::write(&victim, &bytes).unwrap();

    let (snapshot, report) = StoredSnapshot::open_quarantining(&dir).unwrap();
    assert_eq!(report.quarantined_segments(), 1);
    assert!(!report.is_clean());
    assert_eq!(report.segments[0].0, victim);
    assert_eq!(
        report.telemetry().counter("store.quarantine.segments"),
        Some(1)
    );

    // The census-facing read path completes with the surviving 16 hosts.
    assert_eq!(snapshot.host_count(), 16);
    let mut seen = Vec::new();
    snapshot.for_each_host(&mut |m| seen.push(m.host_id));
    let expected: Vec<usize> = (0..8).chain(16..24).collect();
    assert_eq!(seen, expected);
    assert_eq!(snapshot.quarantined_segments(), 1);
    assert_eq!(
        snapshot
            .quarantine_telemetry()
            .counter("store.quarantine.segments"),
        Some(1)
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_clean_store_quarantines_nothing_and_keeps_its_complete_count() {
    let dir = temp_dir("clean");
    write_store(&dir, 24, 8);
    let (snapshot, report) = StoredSnapshot::open_quarantining(&dir).unwrap();
    assert!(report.is_clean());
    assert_eq!(
        report.telemetry().counter("store.quarantine.segments"),
        None
    );
    assert!(snapshot.is_complete());
    assert_eq!(snapshot.host_count(), 24);
    assert_eq!(snapshot.quarantined_segments(), 0);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_rot_after_open_degrades_for_each_host_instead_of_panicking() {
    let dir = temp_dir("rot");
    write_store(&dir, 24, 8);
    let snapshot = StoredSnapshot::open(&dir).unwrap(); // verifies: all clean
                                                        // The file rots *after* the eager check — the TOCTOU window the
                                                        // tolerant read path exists for.
    let victim = dir.join("segment-00000.qseg");
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    fs::write(&victim, &bytes).unwrap();

    let mut seen = 0usize;
    snapshot.for_each_host(&mut |_| seen += 1);
    assert_eq!(seen, 16, "the two healthy segments still stream");
    assert_eq!(snapshot.quarantined_segments(), 1);

    // A second pass (a census renders several tables) must not double
    // count: the quarantine counter is a high-water mark.
    snapshot.for_each_host(&mut |_| {});
    assert_eq!(snapshot.quarantined_segments(), 1);
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Kill-and-resume byte identity (satellite: injected mid-write kill)
// ---------------------------------------------------------------------------

/// Byte-compare every store artifact (segments, metadata, COMPLETE) in two
/// directories.  `telemetry.json` is informational and excluded.
fn assert_stores_byte_identical(a: &Path, b: &Path) {
    let listing = |dir: &Path| -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "telemetry.json")
            .collect();
        names.sort();
        names
    };
    let names = listing(a);
    assert_eq!(names, listing(b), "file sets differ");
    for name in names {
        assert_eq!(
            fs::read(a.join(&name)).unwrap(),
            fs::read(b.join(&name)).unwrap(),
            "{name} differs between the uninterrupted and resumed stores"
        );
    }
}

#[test]
fn a_mid_write_kill_with_a_torn_tmp_resumes_to_an_identical_store() {
    // 8 ≪ DEFAULT_SEGMENT_CAPACITY: the test must control segment
    // boundaries itself, on both the reference and the resumed writer.
    let capacity = 8;

    // Reference: the uninterrupted run.
    let reference = temp_dir("uninterrupted");
    write_store(&reference, 30, capacity);

    // The killed run: one full segment persisted, the second mid-write —
    // its torn `.tmp` is exactly what `kill -9` during `write_atomically`
    // leaves behind — and the buffered tail lost.
    let resumed = temp_dir("killed");
    {
        let mut writer = CampaignWriter::create(&resumed, &meta())
            .unwrap()
            .with_segment_capacity(capacity);
        for id in 0..13 {
            writer.append(measurement(id)).unwrap();
        }
        fs::write(resumed.join("segment-00001.tmp"), b"torn mid-write").unwrap();
        // Writer dropped without finish(): the injected kill.
    }

    let (writer, read_meta, persisted) = CampaignWriter::resume(&resumed).unwrap();
    // Byte identity needs the same spill threshold as the reference run —
    // segment boundaries are part of the on-disk layout.
    let mut writer = writer.with_segment_capacity(capacity);
    assert_eq!(read_meta, meta());
    assert_eq!(persisted, (0..8).collect::<Vec<_>>());
    assert!(
        !resumed.join("segment-00001.tmp").exists(),
        "resume removes torn tmp orphans"
    );
    for id in 8..30 {
        writer.append(measurement(id)).unwrap();
    }
    writer.finish().unwrap();

    assert_stores_byte_identical(&reference, &resumed);
    fs::remove_dir_all(&reference).unwrap();
    fs::remove_dir_all(&resumed).unwrap();
}
