//! Property test: encode→decode identity of the measurement codec over
//! arbitrary `HostMeasurement`s, including the edge cases the campaign
//! produces rarely but the store must never mangle — empty traces,
//! IPv6-only hosts, ForceCe observations, absent sections and exotic
//! strings.
//!
//! The vendored proptest stand-in samples primitives; the measurement
//! itself is grown from a seeded RNG so one failing case prints one
//! reproducible seed.

use proptest::prelude::*;
use qem_core::observation::HostMeasurement;
use qem_netsim::Asn;
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::quic::QuicVersion;
use qem_quic::http::HttpResponse;
use qem_quic::{ClientReport, EcnValidationFailure, EcnValidationState, TransportParameters};
use qem_store::codec::{decode_block, encode_block};
use qem_store::segment;
use qem_tcp::TcpReport;
use qem_tracebox::{EcnChange, PathVerdict, TraceAnalysis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::IpAddr;

fn arb_counts(rng: &mut StdRng) -> EcnCounts {
    // Mix small realistic counters with u64 extremes.
    let extreme = rng.gen_bool(0.1);
    let sample = |rng: &mut StdRng| {
        if extreme {
            rng.gen::<u64>()
        } else {
            rng.gen_range(0u64..32)
        }
    };
    EcnCounts {
        ect0: sample(rng),
        ect1: sample(rng),
        ce: sample(rng),
    }
}

fn arb_string(rng: &mut StdRng) -> String {
    match rng.gen_range(0u32..6) {
        0 => String::new(),
        1 => "LiteSpeed".to_string(),
        2 => "nginx/1.25.3 (Ubuntu)".to_string(),
        3 => "h3=\":443\"; ma=86400, h3-29=\":443\"".to_string(),
        4 => "päcket löss — ünïcode".to_string(),
        _ => {
            let len = rng.gen_range(1usize..40);
            (0..len)
                .map(|_| char::from(rng.gen_range(0x20u8..0x7f)))
                .collect()
        }
    }
}

fn arb_opt_string(rng: &mut StdRng) -> Option<String> {
    rng.gen_bool(0.6).then(|| arb_string(rng))
}

fn arb_codepoint(rng: &mut StdRng) -> EcnCodepoint {
    match rng.gen_range(0u32..4) {
        0 => EcnCodepoint::NotEct,
        1 => EcnCodepoint::Ect1,
        2 => EcnCodepoint::Ect0,
        _ => EcnCodepoint::Ce,
    }
}

fn arb_ip(rng: &mut StdRng, force_v6: bool) -> IpAddr {
    if force_v6 || rng.gen_bool(0.5) {
        let mut octets = [0u8; 16];
        for octet in &mut octets {
            *octet = rng.gen_range(0u8..=255);
        }
        IpAddr::from(octets)
    } else {
        let mut octets = [0u8; 4];
        for octet in &mut octets {
            *octet = rng.gen_range(0u8..=255);
        }
        IpAddr::from(octets)
    }
}

fn arb_validation_state(rng: &mut StdRng) -> EcnValidationState {
    match rng.gen_range(0u32..9) {
        0 => EcnValidationState::Testing,
        1 => EcnValidationState::Unknown,
        2 => EcnValidationState::Capable,
        3 => EcnValidationState::Failed(EcnValidationFailure::NoMirroring),
        4 => EcnValidationState::Failed(EcnValidationFailure::NonMonotonic),
        5 => EcnValidationState::Failed(EcnValidationFailure::Undercount),
        6 => EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint),
        7 => EcnValidationState::Failed(EcnValidationFailure::AllCe),
        _ => EcnValidationState::Failed(EcnValidationFailure::AllLost),
    }
}

fn arb_quic_report(rng: &mut StdRng, force_ce: bool) -> ClientReport {
    let sent_counts = if force_ce {
        // The §6.3 run: every probe is CE, never ECT(0).
        EcnCounts {
            ect0: 0,
            ect1: 0,
            ce: rng.gen_range(1u64..20),
        }
    } else {
        arb_counts(rng)
    };
    ClientReport {
        connected: rng.gen_bool(0.8),
        response: rng.gen_bool(0.7).then(|| HttpResponse {
            status: rng.gen_range(100u64..600) as u16,
            server: arb_opt_string(rng),
            via: arb_opt_string(rng),
            alt_svc: arb_opt_string(rng),
            body_len: rng.gen_range(0usize..1 << 20),
        }),
        version: match rng.gen_range(0u32..4) {
            0 => QuicVersion::V1,
            1 => QuicVersion::Draft(rng.gen_range(27u64..35) as u8),
            2 => QuicVersion::Other(rng.gen::<u64>() as u32),
            _ => QuicVersion::DRAFT_27,
        },
        server_transport_params: rng.gen_bool(0.6).then(|| TransportParameters {
            max_idle_timeout_ms: rng.gen::<u64>(),
            max_udp_payload_size: rng.gen_range(1200u64..65535),
            initial_max_data: rng.gen::<u64>(),
            initial_max_stream_data: rng.gen::<u64>(),
            initial_max_streams_bidi: rng.gen_range(0u64..1000),
            ack_delay_exponent: rng.gen_range(0u64..21),
            max_ack_delay_ms: rng.gen_range(0u64..1 << 14),
            active_connection_id_limit: rng.gen_range(2u64..16),
        }),
        transport_fingerprint: rng.gen_bool(0.6).then(|| rng.gen::<u64>()),
        ecn_state: arb_validation_state(rng),
        peer_mirrored: rng.gen_bool(0.5),
        mirrored_counts: arb_counts(rng),
        sent_counts,
        received_ecn: arb_counts(rng),
        server_used_ecn: rng.gen_bool(0.3),
        error: arb_opt_string(rng),
    }
}

fn arb_tcp_report(rng: &mut StdRng, force_ce: bool) -> TcpReport {
    TcpReport {
        connected: rng.gen_bool(0.9),
        negotiated: rng.gen_bool(0.7),
        ce_mirrored: force_ce || rng.gen_bool(0.3),
        cwr_acknowledged: rng.gen_bool(0.3),
        received_ecn: arb_counts(rng),
        server_observed_ecn: if force_ce {
            EcnCounts {
                ect0: 0,
                ect1: 0,
                ce: rng.gen_range(1u64..20),
            }
        } else {
            arb_counts(rng)
        },
        server_used_ecn: rng.gen_bool(0.4),
        response_received: rng.gen_bool(0.8),
        forward_losses: rng.gen_range(0u64..1 << 20) as u32,
    }
}

fn arb_trace(rng: &mut StdRng, ipv6_only: bool) -> TraceAnalysis {
    // Empty traces (no responding hop) are a named edge case.
    let change_count = rng.gen_range(0usize..5);
    let changes = (0..change_count)
        .map(|_| EcnChange {
            from: arb_codepoint(rng),
            to: arb_codepoint(rng),
            visible_at_ttl: rng.gen_range(0u64..64) as u8,
            last_unchanged_router: rng.gen_bool(0.8).then(|| arb_ip(rng, ipv6_only)),
            asn_before: rng.gen_bool(0.7).then(|| Asn(rng.gen::<u64>() as u32)),
            first_changed_router: rng.gen_bool(0.8).then(|| arb_ip(rng, ipv6_only)),
            asn_at_change: rng.gen_bool(0.7).then(|| Asn(rng.gen::<u64>() as u32)),
        })
        .collect();
    TraceAnalysis {
        changes,
        verdict: match rng.gen_range(0u32..6) {
            0 => PathVerdict::NoChange,
            1 => PathVerdict::Cleared,
            2 => PathVerdict::RemarkedToEct1,
            3 => PathVerdict::RemarkedToEct0,
            4 => PathVerdict::CeMarked,
            _ => PathVerdict::Untested,
        },
        final_observed: rng.gen_bool(0.8).then(|| arb_codepoint(rng)),
        dscp_rewritten_only: rng.gen_bool(0.2),
    }
}

fn arb_measurement(rng: &mut StdRng, host_id: usize) -> HostMeasurement {
    let ipv6_only = rng.gen_bool(0.2);
    let force_ce = rng.gen_bool(0.2);
    HostMeasurement {
        host_id,
        quic_reachable: rng.gen_bool(0.5),
        quic: rng.gen_bool(0.7).then(|| arb_quic_report(rng, force_ce)),
        tcp: rng.gen_bool(0.9).then(|| arb_tcp_report(rng, force_ce)),
        trace: rng.gen_bool(0.4).then(|| arb_trace(rng, ipv6_only)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any batch of arbitrary measurements survives encode→decode exactly.
    #[test]
    fn encode_decode_is_identity(
        seed in 0u64..1_000_000,
        count in 0usize..40,
        first_id in 0usize..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hosts: Vec<HostMeasurement> = (0..count)
            .map(|offset| arb_measurement(&mut rng, first_id + offset * 3))
            .collect();
        let decoded = decode_block(&encode_block(&hosts));
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        prop_assert_eq!(decoded.unwrap(), hosts);
    }

    /// The identity also holds through the segment file framing on disk.
    #[test]
    fn segment_files_round_trip(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hosts: Vec<HostMeasurement> = (0..rng.gen_range(1usize..20))
            .map(|id| arb_measurement(&mut rng, id))
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "qem-codec-prop-{}-{seed}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = segment::write_segment(&dir, 0, &hosts).unwrap();
        let read_back = segment::read_segment(&path);
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert!(read_back.is_ok(), "read failed: {:?}", read_back.err());
        prop_assert_eq!(read_back.unwrap(), hosts);
    }
}

/// The named edge cases, pinned explicitly so they never depend on sampling
/// luck: empty trace, IPv6-only routers, a ForceCe observation, and the
/// all-absent measurement.
#[test]
fn pinned_edge_cases_round_trip() {
    let cases = vec![
        // Host that answered nothing at all.
        HostMeasurement {
            host_id: usize::MAX >> 1,
            quic_reachable: false,
            quic: None,
            tcp: None,
            trace: None,
        },
        // Empty trace: sampled for tracing but no hop produced a quote.
        HostMeasurement {
            host_id: 0,
            quic_reachable: false,
            quic: None,
            tcp: None,
            trace: Some(TraceAnalysis {
                changes: vec![],
                verdict: PathVerdict::Untested,
                final_observed: None,
                dscp_rewritten_only: false,
            }),
        },
        // IPv6-only trace routers.
        HostMeasurement {
            host_id: 1,
            quic_reachable: true,
            quic: None,
            tcp: None,
            trace: Some(TraceAnalysis {
                changes: vec![EcnChange {
                    from: EcnCodepoint::Ect0,
                    to: EcnCodepoint::NotEct,
                    visible_at_ttl: 255,
                    last_unchanged_router: Some("2001:db8::1".parse().unwrap()),
                    asn_before: None,
                    first_changed_router: Some("2001:db8:ffff::2".parse().unwrap()),
                    asn_at_change: Some(Asn(1299)),
                }],
                verdict: PathVerdict::Cleared,
                final_observed: Some(EcnCodepoint::NotEct),
                dscp_rewritten_only: true,
            }),
        },
        // ForceCe: CE-only sent counters on QUIC and TCP.
        HostMeasurement {
            host_id: 2,
            quic_reachable: true,
            quic: Some(ClientReport {
                connected: true,
                response: Some(HttpResponse::ok()),
                version: QuicVersion::V1,
                server_transport_params: None,
                transport_fingerprint: None,
                ecn_state: EcnValidationState::Failed(EcnValidationFailure::AllCe),
                peer_mirrored: true,
                mirrored_counts: EcnCounts {
                    ect0: 0,
                    ect1: 0,
                    ce: 9,
                },
                sent_counts: EcnCounts {
                    ect0: 0,
                    ect1: 0,
                    ce: 9,
                },
                received_ecn: EcnCounts::ZERO,
                server_used_ecn: false,
                error: Some(String::new()),
            }),
            tcp: Some(TcpReport {
                connected: true,
                negotiated: true,
                ce_mirrored: true,
                cwr_acknowledged: true,
                received_ecn: EcnCounts::ZERO,
                server_observed_ecn: EcnCounts {
                    ect0: 0,
                    ect1: 0,
                    ce: 7,
                },
                server_used_ecn: false,
                response_received: true,
                forward_losses: u32::MAX,
            }),
            trace: None,
        },
    ];
    let decoded = decode_block(&encode_block(&cases)).expect("edge cases must decode");
    assert_eq!(decoded, cases);
}
