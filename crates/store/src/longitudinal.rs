//! Delta-encoded longitudinal series.
//!
//! A longitudinal run scans the same host population once per month.  Most
//! hosts behave identically from one month to the next — the interesting
//! signal is exactly the hosts that *changed* (a stack upgrade, an outage, a
//! path impairment appearing).  The store exploits that: the first date is
//! persisted in full, every later date stores only the measurements that
//! differ from the previous date.  Storage drops from
//! `O(dates × hosts)` to `O(hosts + changed)`, and the writer never holds
//! more than one date's state in memory.
//!
//! Layout:
//!
//! ```text
//! <dir>/
//!   longitudinal.meta  vantage, probe options, the date sequence
//!   date-000/          full snapshot store (delta = false)
//!   date-001/          changed hosts only   (delta = true)
//!   …
//!   COMPLETE
//! ```
//!
//! The date sequence is persisted as `months_since_start` offsets
//! ([`SnapshotDate::months_since_start`]); reconstruction relies on the
//! round-trip with [`SnapshotDate::from_months_since_start`].
//!
//! The scanned host set must be identical across dates (it is: membership
//! depends only on address-family coverage, never on the date).  The writer
//! enforces this, because replay correctness depends on it.

use crate::codec::FORMAT_VERSION;
use crate::segment::write_atomically;
use crate::store::{CampaignWriter, SnapshotMeta, StoredSnapshot};
use crate::wire::{fnv1a, split_seal, write_str, write_u64_le, write_varint, ByteReader};
use crate::StoreError;
use qem_core::campaign::{CampaignOptions, SnapshotMeasurement};
use qem_core::observation::HostMeasurement;
use qem_core::vantage::VantagePoint;
use qem_web::SnapshotDate;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

const LONGITUDINAL_MAGIC: &[u8; 4] = b"QLON";

/// File holding the series identity.
pub const LONGITUDINAL_META_FILE: &str = "longitudinal.meta";
/// End marker; present once every date has been written.
pub const LONGITUDINAL_COMPLETE_FILE: &str = "COMPLETE";

/// Subdirectory of date `idx`.
pub fn date_dir_name(idx: usize) -> String {
    format!("date-{idx:03}")
}

fn encode_series_meta(
    vantage: &VantagePoint,
    options: &CampaignOptions,
    dates: &[SnapshotDate],
) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(64 + dates.len());
    bytes.extend_from_slice(LONGITUDINAL_MAGIC);
    bytes.push(FORMAT_VERSION);
    write_str(&mut bytes, &vantage.name);
    write_u64_le(&mut bytes, options.seed);
    write_u64_le(&mut bytes, options.trace_sample_probability.to_bits());
    write_varint(&mut bytes, dates.len() as u64);
    for date in dates {
        write_varint(&mut bytes, u64::from(date.months_since_start()));
    }
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

fn decode_series_dates(bytes: &[u8]) -> Result<Vec<SnapshotDate>, StoreError> {
    let (body, stored) = split_seal(bytes)
        .map_err(|_| StoreError::Corrupt("longitudinal metadata truncated".to_string()))?;
    if stored != fnv1a(body) {
        return Err(StoreError::Corrupt(
            "longitudinal metadata checksum mismatch".to_string(),
        ));
    }
    let mut r = ByteReader::new(body);
    if r.bytes(LONGITUDINAL_MAGIC.len())? != LONGITUDINAL_MAGIC {
        return Err(StoreError::Corrupt("bad longitudinal magic".to_string()));
    }
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported longitudinal version {version}"
        )));
    }
    let _vantage_name = r.string()?;
    let _seed = r.u64_le()?;
    let _trace_p = r.u64_le()?;
    let count = r.varint()? as usize;
    let mut dates = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let months = r.varint()?;
        dates.push(SnapshotDate::from_months_since_start(
            u32::try_from(months)
                .map_err(|_| StoreError::Corrupt(format!("date offset {months} overflows u32")))?,
        ));
    }
    Ok(dates)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming writer for a longitudinal series.
///
/// Dates must be written in sequence; within a date, measurements stream in
/// ascending host-id order (what the scanner delivers).  The writer keeps
/// exactly one full date of state in memory — the previous date's
/// measurements, needed to compute the next delta.
pub struct LongitudinalWriter {
    dir: PathBuf,
    dates: Vec<SnapshotDate>,
    vantage: VantagePoint,
    options: CampaignOptions,
    /// The previous date's full state, keyed by host id.
    previous: BTreeMap<usize, HostMeasurement>,
    /// Hosts seen in the current date, to enforce the constant-population
    /// invariant replay depends on.
    current_count: usize,
    /// Highest host id appended in the current date.  The per-date segment
    /// writer only sees *changed* hosts, so ordering (and thereby
    /// duplicate-freeness) of the full stream is enforced here.
    current_last_id: Option<usize>,
    current_writer: Option<CampaignWriter>,
    next_date: usize,
    /// Records actually persisted per finished date (the delta sizes).
    stored_per_date: Vec<u64>,
}

impl LongitudinalWriter {
    /// Create a new series at `dir` for the given dates (IPv4, as in the
    /// paper's longitudinal figures).
    pub fn create(
        dir: &Path,
        vantage: &VantagePoint,
        options: &CampaignOptions,
        dates: &[SnapshotDate],
    ) -> Result<LongitudinalWriter, StoreError> {
        if dates.is_empty() {
            return Err(StoreError::State(
                "a series needs at least one date".to_string(),
            ));
        }
        // The manifest stores dates as months-since-June-2022 offsets;
        // months_since_start saturates below the epoch, so a pre-epoch date
        // would write a manifest that can never be opened.  Reject it before
        // any scanning happens.
        if let Some(bad) = dates
            .iter()
            .find(|d| SnapshotDate::from_months_since_start(d.months_since_start()) != **d)
        {
            return Err(StoreError::State(format!(
                "date {bad} predates the June 2022 epoch of the offset encoding"
            )));
        }
        fs::create_dir_all(dir)?;
        if dir.join(LONGITUDINAL_COMPLETE_FILE).exists()
            || dir.join(LONGITUDINAL_META_FILE).exists()
        {
            return Err(StoreError::State(format!(
                "{} already holds a longitudinal series",
                dir.display()
            )));
        }
        write_atomically(
            &dir.join(LONGITUDINAL_META_FILE),
            &encode_series_meta(vantage, options, dates),
        )?;
        Ok(LongitudinalWriter {
            dir: dir.to_path_buf(),
            dates: dates.to_vec(),
            vantage: vantage.clone(),
            options: *options,
            previous: BTreeMap::new(),
            current_count: 0,
            current_last_id: None,
            current_writer: None,
            next_date: 0,
            stored_per_date: Vec::new(),
        })
    }

    /// Open the store for the next date in the sequence.
    pub fn begin_date(&mut self) -> Result<SnapshotDate, StoreError> {
        if self.current_writer.is_some() {
            return Err(StoreError::State("previous date not finished".to_string()));
        }
        let Some(&date) = self.dates.get(self.next_date) else {
            return Err(StoreError::State("every date already written".to_string()));
        };
        let meta = SnapshotMeta {
            delta: self.next_date > 0,
            ..SnapshotMeta::for_campaign(
                &CampaignOptions {
                    date,
                    ..self.options
                },
                &self.vantage,
                false,
            )
        };
        let date_dir = self.dir.join(date_dir_name(self.next_date));
        self.current_writer = Some(CampaignWriter::create(&date_dir, &meta)?);
        self.current_count = 0;
        self.current_last_id = None;
        Ok(date)
    }

    /// Append one measurement of the current date.  Only measurements that
    /// differ from the previous date are persisted.
    pub fn append(&mut self, m: HostMeasurement) -> Result<(), StoreError> {
        let writer = self
            .current_writer
            .as_mut()
            .ok_or_else(|| StoreError::State("no date in progress".to_string()))?;
        // Enforce ascending host ids on the *full* stream, not just the
        // changed subset the segment writer sees: without this, a duplicated
        // unchanged host could mask an omitted changed one in the population
        // count, and replay would resurrect the omitted host's old state.
        if let Some(last) = self.current_last_id {
            if m.host_id <= last {
                return Err(StoreError::State(format!(
                    "measurements must arrive in ascending host-id order (got {} after {last})",
                    m.host_id
                )));
            }
        }
        self.current_last_id = Some(m.host_id);
        self.current_count += 1;
        let changed = self.previous.get(&m.host_id) != Some(&m);
        if changed {
            writer.append(m.clone())?;
        }
        self.previous.insert(m.host_id, m);
        Ok(())
    }

    /// Seal the current date.
    pub fn end_date(&mut self) -> Result<(), StoreError> {
        let writer = self
            .current_writer
            .take()
            .ok_or_else(|| StoreError::State("no date in progress".to_string()))?;
        // Replay applies deltas over the running state, so a host silently
        // missing from a later scan would resurrect its old measurement.
        // The population is constant by construction; verify it.  (append
        // enforces strictly ascending ids, so the count is duplicate-free
        // and comparing it against the running state suffices.)
        if self.next_date > 0 && self.current_count != self.previous.len() {
            return Err(StoreError::State(format!(
                "date {} scanned {} hosts but the series population is {}",
                self.next_date,
                self.current_count,
                self.previous.len()
            )));
        }
        let stored = writer.appended();
        writer.finish()?;
        self.stored_per_date.push(stored);
        self.next_date += 1;
        Ok(())
    }

    /// Records persisted per finished date — the measured delta sizes.
    pub fn stored_per_date(&self) -> &[u64] {
        &self.stored_per_date
    }

    /// Seal the series.
    pub fn finish(self) -> Result<LongitudinalStore, StoreError> {
        if self.current_writer.is_some() {
            return Err(StoreError::State("a date is still in progress".to_string()));
        }
        if self.next_date != self.dates.len() {
            return Err(StoreError::State(format!(
                "only {} of {} dates written",
                self.next_date,
                self.dates.len()
            )));
        }
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(b"QLDN");
        bytes.push(FORMAT_VERSION);
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        write_atomically(&self.dir.join(LONGITUDINAL_COMPLETE_FILE), &bytes)?;
        LongitudinalStore::open(&self.dir)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A complete longitudinal series opened for reading.
pub struct LongitudinalStore {
    dates: Vec<SnapshotDate>,
    snapshots: Vec<StoredSnapshot>,
}

impl LongitudinalStore {
    /// Open a sealed series.
    pub fn open(dir: &Path) -> Result<LongitudinalStore, StoreError> {
        if !dir.join(LONGITUDINAL_COMPLETE_FILE).exists() {
            return Err(StoreError::State(format!(
                "{} holds an unfinished longitudinal series",
                dir.display()
            )));
        }
        let meta_bytes = fs::read(dir.join(LONGITUDINAL_META_FILE))?;
        let dates = decode_series_dates(&meta_bytes)?;
        let mut snapshots = Vec::with_capacity(dates.len());
        for (idx, &date) in dates.iter().enumerate() {
            let snapshot = StoredSnapshot::open(&dir.join(date_dir_name(idx)))?;
            if snapshot.meta().date != date {
                return Err(StoreError::Corrupt(format!(
                    "date {idx} directory holds {} but the manifest says {date}",
                    snapshot.meta().date
                )));
            }
            if snapshot.meta().delta != (idx > 0) {
                return Err(StoreError::Corrupt(format!(
                    "date {idx} has the wrong delta flag"
                )));
            }
            snapshots.push(snapshot);
        }
        Ok(LongitudinalStore { dates, snapshots })
    }

    /// The date sequence.
    pub fn dates(&self) -> &[SnapshotDate] {
        &self.dates
    }

    /// Records persisted for date `idx` (the on-disk delta size).
    pub fn stored_record_count(&self, idx: usize) -> Option<u64> {
        self.snapshots
            .get(idx)
            .and_then(|s| s.recorded_host_count())
    }

    /// Replay the series once, handing each date's **full** reconstructed
    /// snapshot to `f` in order.  Memory stays at O(hosts) — the single
    /// running state *is* the snapshot handed out (moved in and taken back,
    /// never cloned) — independent of the number of dates.
    pub fn for_each_snapshot(
        &self,
        f: &mut dyn FnMut(&SnapshotMeasurement),
    ) -> Result<(), StoreError> {
        let mut state: BTreeMap<usize, HostMeasurement> = BTreeMap::new();
        for (idx, snapshot) in self.snapshots.iter().enumerate() {
            for result in snapshot.iter() {
                let m = result?;
                state.insert(m.host_id, m);
            }
            let full = SnapshotMeasurement {
                date: self.dates[idx],
                ipv6: false,
                vantage: snapshot.meta().vantage.clone(),
                hosts: state,
            };
            f(&full);
            state = full.hosts;
        }
        Ok(())
    }

    /// Reconstruct one date in full: apply the delta chain up to `idx` and
    /// hand over the accumulated state — no per-date clones, no reading
    /// past the requested date.
    pub fn snapshot(&self, idx: usize) -> Result<SnapshotMeasurement, StoreError> {
        let Some(target) = self.snapshots.get(idx) else {
            return Err(StoreError::State(format!("no date {idx} in this series")));
        };
        let mut state: BTreeMap<usize, HostMeasurement> = BTreeMap::new();
        for snapshot in &self.snapshots[..=idx] {
            for result in snapshot.iter() {
                let m = result?;
                state.insert(m.host_id, m);
            }
        }
        Ok(SnapshotMeasurement {
            date: self.dates[idx],
            ipv6: false,
            vantage: target.meta().vantage.clone(),
            hosts: state,
        })
    }

    /// Reconstruct every date.
    ///
    /// Convenience for report generation over small universes and for tests;
    /// this is the O(dates × hosts) materialisation the store otherwise
    /// avoids — prefer [`LongitudinalStore::for_each_snapshot`] when a
    /// single pass suffices.
    pub fn snapshots(&self) -> Result<Vec<SnapshotMeasurement>, StoreError> {
        let mut out = Vec::with_capacity(self.dates.len());
        self.for_each_snapshot(&mut |snapshot| out.push(snapshot.clone()))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;

    fn measurement(host_id: usize, reachable: bool) -> HostMeasurement {
        HostMeasurement {
            host_id,
            quic_reachable: reachable,
            quic: None,
            tcp: None,
            trace: None,
        }
    }

    #[test]
    fn deltas_store_only_changed_hosts_and_replay_in_full() {
        let dir = temp_dir("delta");
        let dates = [
            SnapshotDate::JUN_2022,
            SnapshotDate::new(2022, 7),
            SnapshotDate::new(2022, 8),
        ];
        let mut writer = LongitudinalWriter::create(
            &dir,
            &VantagePoint::main(),
            &CampaignOptions::paper_default(),
            &dates,
        )
        .unwrap();

        // Date 0: hosts 0..50, none reachable.  Date 1: host 7 flips.
        // Date 2: hosts 7 and 13 flip.
        let flips: [&[usize]; 3] = [&[], &[7], &[7, 13]];
        let mut reachable = [false; 50];
        for date_flips in flips {
            for &host in date_flips {
                reachable[host] = !reachable[host];
            }
            writer.begin_date().unwrap();
            for (id, &up) in reachable.iter().enumerate() {
                writer.append(measurement(id, up)).unwrap();
            }
            writer.end_date().unwrap();
        }
        assert_eq!(writer.stored_per_date(), &[50, 1, 2]);
        let store = writer.finish().unwrap();
        assert_eq!(store.dates(), &dates);
        assert_eq!(store.stored_record_count(0), Some(50));
        assert_eq!(store.stored_record_count(1), Some(1));
        assert_eq!(store.stored_record_count(2), Some(2));

        // Replay: every date reconstructs the full 50-host population.
        let snapshots = store.snapshots().unwrap();
        assert_eq!(snapshots.len(), 3);
        for snapshot in &snapshots {
            assert_eq!(snapshot.hosts.len(), 50);
        }
        assert!(!snapshots[0].hosts[&7].quic_reachable);
        assert!(snapshots[1].hosts[&7].quic_reachable);
        assert!(!snapshots[2].hosts[&7].quic_reachable);
        assert!(snapshots[2].hosts[&13].quic_reachable);
        assert_eq!(store.snapshot(1).unwrap().hosts, snapshots[1].hosts);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_shrinking_population_is_rejected() {
        let dir = temp_dir("population");
        let dates = [SnapshotDate::JUN_2022, SnapshotDate::new(2022, 7)];
        let mut writer = LongitudinalWriter::create(
            &dir,
            &VantagePoint::main(),
            &CampaignOptions::paper_default(),
            &dates,
        )
        .unwrap();
        writer.begin_date().unwrap();
        for id in 0..10 {
            writer.append(measurement(id, false)).unwrap();
        }
        writer.end_date().unwrap();
        writer.begin_date().unwrap();
        for id in 0..9 {
            writer.append(measurement(id, false)).unwrap();
        }
        assert!(matches!(writer.end_date(), Err(StoreError::State(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_epoch_dates_are_rejected_before_any_scanning() {
        let dir = temp_dir("pre-epoch");
        let result = LongitudinalWriter::create(
            &dir,
            &VantagePoint::main(),
            &CampaignOptions::paper_default(),
            &[SnapshotDate::new(2022, 3), SnapshotDate::JUN_2022],
        );
        assert!(matches!(result, Err(StoreError::State(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_appends_within_a_date_are_rejected() {
        let dir = temp_dir("order");
        let dates = [SnapshotDate::JUN_2022];
        let mut writer = LongitudinalWriter::create(
            &dir,
            &VantagePoint::main(),
            &CampaignOptions::paper_default(),
            &dates,
        )
        .unwrap();
        writer.begin_date().unwrap();
        writer.append(measurement(4, false)).unwrap();
        // A duplicate — even an *unchanged* one the segment writer never
        // sees — must not slip past the population accounting.
        assert!(matches!(
            writer.append(measurement(4, false)),
            Err(StoreError::State(_))
        ));
        assert!(matches!(
            writer.append(measurement(2, false)),
            Err(StoreError::State(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_unfinished_series_cannot_be_opened() {
        let dir = temp_dir("unfinished");
        let dates = [SnapshotDate::JUN_2022, SnapshotDate::new(2022, 7)];
        let mut writer = LongitudinalWriter::create(
            &dir,
            &VantagePoint::main(),
            &CampaignOptions::paper_default(),
            &dates,
        )
        .unwrap();
        writer.begin_date().unwrap();
        writer.append(measurement(0, false)).unwrap();
        writer.end_date().unwrap();
        assert!(matches!(writer.finish(), Err(StoreError::State(_))));
        assert!(matches!(
            LongitudinalStore::open(&dir),
            Err(StoreError::State(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
