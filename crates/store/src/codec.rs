//! The measurement codec: a compact, dependency-free binary encoding of
//! [`HostMeasurement`] and everything it nests.
//!
//! Layout principles:
//!
//! * **Varints everywhere** — host ids, counters and lengths are small in
//!   practice, and the ECN counters of a typical probe fit in one byte each.
//! * **Flag bytes** — every `bool` and `Option` presence bit of a record is
//!   packed into one leading byte per section instead of one byte each.
//! * **Dictionaries** — server-header strings (`"LiteSpeed"`, `"cloudflare"`,
//!   …) and AS numbers repeat across almost every record of a segment, so
//!   records store small dictionary indices and the segment stores each
//!   distinct string/ASN once.  The dictionaries are per-segment, which keeps
//!   segments self-contained (any segment can be decoded alone — the property
//!   resume depends on).
//!
//! The codec is intentionally explicit — one function per type, field order
//! fixed by this file — because the format on disk is a compatibility
//! surface: `FORMAT_VERSION` must be bumped whenever any of it changes.

use crate::wire::{write_str, write_varint, ByteReader};
use crate::StoreError;
use qem_core::observation::HostMeasurement;
use qem_netsim::Asn;
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::quic::QuicVersion;
use qem_quic::http::HttpResponse;
use qem_quic::{ClientReport, EcnValidationFailure, EcnValidationState, TransportParameters};
use qem_tcp::TcpReport;
use qem_tracebox::{EcnChange, PathVerdict, TraceAnalysis};
// lint: allow(no-unordered-collections) intern indexes below are lookup-only
use std::collections::HashMap;
use std::net::IpAddr;

/// Version byte embedded in every store file.
pub const FORMAT_VERSION: u8 = 1;

// ---------------------------------------------------------------------------
// Dictionaries
// ---------------------------------------------------------------------------

/// Per-segment dictionaries, built while encoding records.
/// The `Vec`s carry the dictionary in insertion order — all serialisation
/// iterates those — while the `HashMap`s are pure O(1) membership indexes on
/// the hot encode path: their iteration order is never observed, so hashing
/// cannot leak into the output bytes.
#[derive(Default)]
pub struct DictBuilder {
    strings: Vec<String>,
    // lint: allow(no-unordered-collections) lookup-only index, order carried by `strings`
    string_index: HashMap<String, u32>,
    asns: Vec<u32>,
    // lint: allow(no-unordered-collections) lookup-only index, order carried by `asns`
    asn_index: HashMap<u32, u32>,
}

impl DictBuilder {
    /// Intern a string, returning its dictionary index.
    fn intern_str(&mut self, s: &str) -> u32 {
        if let Some(&idx) = self.string_index.get(s) {
            return idx;
        }
        let idx = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_index.insert(s.to_string(), idx);
        idx
    }

    /// Intern an AS number, returning its dictionary index.
    fn intern_asn(&mut self, asn: Asn) -> u32 {
        if let Some(&idx) = self.asn_index.get(&asn.0) {
            return idx;
        }
        let idx = self.asns.len() as u32;
        self.asns.push(asn.0);
        self.asn_index.insert(asn.0, idx);
        idx
    }

    /// Serialise both dictionaries (strings, then ASNs).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.strings.len() as u64);
        for s in &self.strings {
            write_str(buf, s);
        }
        write_varint(buf, self.asns.len() as u64);
        for &asn in &self.asns {
            write_varint(buf, u64::from(asn));
        }
    }
}

/// Decoded per-segment dictionaries.
pub struct Dicts {
    strings: Vec<String>,
    asns: Vec<u32>,
}

impl Dicts {
    /// Deserialise the dictionaries written by [`DictBuilder::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Dicts, StoreError> {
        let string_count = r.varint()? as usize;
        let mut strings = Vec::with_capacity(string_count.min(4096));
        for _ in 0..string_count {
            strings.push(r.string()?);
        }
        let asn_count = r.varint()? as usize;
        let mut asns = Vec::with_capacity(asn_count.min(4096));
        for _ in 0..asn_count {
            let asn = r.varint()?;
            asns.push(
                u32::try_from(asn)
                    .map_err(|_| StoreError::Corrupt(format!("ASN {asn} overflows u32")))?,
            );
        }
        Ok(Dicts { strings, asns })
    }

    fn string(&self, idx: u64) -> Result<&str, StoreError> {
        self.strings
            .get(idx as usize)
            .map(String::as_str)
            .ok_or_else(|| {
                StoreError::Corrupt(format!("string dictionary index {idx} out of range"))
            })
    }

    fn asn(&self, idx: u64) -> Result<Asn, StoreError> {
        self.asns
            .get(idx as usize)
            .map(|&asn| Asn(asn))
            .ok_or_else(|| StoreError::Corrupt(format!("ASN dictionary index {idx} out of range")))
    }
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

/// `Option<&str>` as a dictionary reference: 0 = `None`, else index + 1.
fn write_opt_str(buf: &mut Vec<u8>, dict: &mut DictBuilder, value: Option<&str>) {
    match value {
        None => write_varint(buf, 0),
        Some(s) => write_varint(buf, u64::from(dict.intern_str(s)) + 1),
    }
}

fn read_opt_str(r: &mut ByteReader<'_>, dicts: &Dicts) -> Result<Option<String>, StoreError> {
    let tag = r.varint()?;
    if tag == 0 {
        Ok(None)
    } else {
        Ok(Some(dicts.string(tag - 1)?.to_string()))
    }
}

/// `Option<Asn>` as a dictionary reference: 0 = `None`, else index + 1.
fn write_opt_asn(buf: &mut Vec<u8>, dict: &mut DictBuilder, value: Option<Asn>) {
    match value {
        None => write_varint(buf, 0),
        Some(asn) => write_varint(buf, u64::from(dict.intern_asn(asn)) + 1),
    }
}

fn read_opt_asn(r: &mut ByteReader<'_>, dicts: &Dicts) -> Result<Option<Asn>, StoreError> {
    let tag = r.varint()?;
    if tag == 0 {
        Ok(None)
    } else {
        Ok(Some(dicts.asn(tag - 1)?))
    }
}

/// `Option<IpAddr>` tagged by family: 0 = `None`, 4 = IPv4, 6 = IPv6.
fn write_opt_ip(buf: &mut Vec<u8>, value: Option<IpAddr>) {
    match value {
        None => buf.push(0),
        Some(IpAddr::V4(addr)) => {
            buf.push(4);
            buf.extend_from_slice(&addr.octets());
        }
        Some(IpAddr::V6(addr)) => {
            buf.push(6);
            buf.extend_from_slice(&addr.octets());
        }
    }
}

fn read_opt_ip(r: &mut ByteReader<'_>) -> Result<Option<IpAddr>, StoreError> {
    match r.u8()? {
        0 => Ok(None),
        4 => {
            let mut octets = [0u8; 4];
            octets.copy_from_slice(r.bytes(4)?);
            Ok(Some(IpAddr::from(octets)))
        }
        6 => {
            let mut octets = [0u8; 16];
            octets.copy_from_slice(r.bytes(16)?);
            Ok(Some(IpAddr::from(octets)))
        }
        tag => Err(StoreError::Corrupt(format!("invalid IP address tag {tag}"))),
    }
}

fn write_counts(buf: &mut Vec<u8>, counts: EcnCounts) {
    write_varint(buf, counts.ect0);
    write_varint(buf, counts.ect1);
    write_varint(buf, counts.ce);
}

fn read_counts(r: &mut ByteReader<'_>) -> Result<EcnCounts, StoreError> {
    Ok(EcnCounts {
        ect0: r.varint()?,
        ect1: r.varint()?,
        ce: r.varint()?,
    })
}

fn codepoint_bits(cp: EcnCodepoint) -> u8 {
    cp as u8
}

fn codepoint_from_bits(bits: u8) -> Result<EcnCodepoint, StoreError> {
    match bits {
        0b00 => Ok(EcnCodepoint::NotEct),
        0b01 => Ok(EcnCodepoint::Ect1),
        0b10 => Ok(EcnCodepoint::Ect0),
        0b11 => Ok(EcnCodepoint::Ce),
        _ => Err(StoreError::Corrupt(format!(
            "invalid ECN codepoint bits {bits:#04b}"
        ))),
    }
}

fn validation_state_tag(state: EcnValidationState) -> u8 {
    match state {
        EcnValidationState::Testing => 0,
        EcnValidationState::Unknown => 1,
        EcnValidationState::Capable => 2,
        EcnValidationState::Failed(failure) => {
            3 + match failure {
                EcnValidationFailure::NoMirroring => 0,
                EcnValidationFailure::NonMonotonic => 1,
                EcnValidationFailure::Undercount => 2,
                EcnValidationFailure::WrongCodepoint => 3,
                EcnValidationFailure::AllCe => 4,
                EcnValidationFailure::AllLost => 5,
            }
        }
    }
}

fn validation_state_from_tag(tag: u8) -> Result<EcnValidationState, StoreError> {
    Ok(match tag {
        0 => EcnValidationState::Testing,
        1 => EcnValidationState::Unknown,
        2 => EcnValidationState::Capable,
        3 => EcnValidationState::Failed(EcnValidationFailure::NoMirroring),
        4 => EcnValidationState::Failed(EcnValidationFailure::NonMonotonic),
        5 => EcnValidationState::Failed(EcnValidationFailure::Undercount),
        6 => EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint),
        7 => EcnValidationState::Failed(EcnValidationFailure::AllCe),
        8 => EcnValidationState::Failed(EcnValidationFailure::AllLost),
        other => {
            return Err(StoreError::Corrupt(format!(
                "invalid ECN validation tag {other}"
            )))
        }
    })
}

fn verdict_tag(verdict: PathVerdict) -> u8 {
    match verdict {
        PathVerdict::NoChange => 0,
        PathVerdict::Cleared => 1,
        PathVerdict::RemarkedToEct1 => 2,
        PathVerdict::RemarkedToEct0 => 3,
        PathVerdict::CeMarked => 4,
        PathVerdict::Untested => 5,
    }
}

fn verdict_from_tag(tag: u8) -> Result<PathVerdict, StoreError> {
    Ok(match tag {
        0 => PathVerdict::NoChange,
        1 => PathVerdict::Cleared,
        2 => PathVerdict::RemarkedToEct1,
        3 => PathVerdict::RemarkedToEct0,
        4 => PathVerdict::CeMarked,
        5 => PathVerdict::Untested,
        other => {
            return Err(StoreError::Corrupt(format!(
                "invalid path verdict tag {other}"
            )))
        }
    })
}

// ---------------------------------------------------------------------------
// Section codecs
// ---------------------------------------------------------------------------

fn encode_response(buf: &mut Vec<u8>, dict: &mut DictBuilder, response: &HttpResponse) {
    write_varint(buf, u64::from(response.status));
    write_opt_str(buf, dict, response.server.as_deref());
    write_opt_str(buf, dict, response.via.as_deref());
    write_opt_str(buf, dict, response.alt_svc.as_deref());
    write_varint(buf, response.body_len as u64);
}

fn decode_response(r: &mut ByteReader<'_>, dicts: &Dicts) -> Result<HttpResponse, StoreError> {
    let status = r.varint()?;
    Ok(HttpResponse {
        status: u16::try_from(status)
            .map_err(|_| StoreError::Corrupt(format!("HTTP status {status} overflows u16")))?,
        server: read_opt_str(r, dicts)?,
        via: read_opt_str(r, dicts)?,
        alt_svc: read_opt_str(r, dicts)?,
        body_len: r.varint()? as usize,
    })
}

fn encode_version(buf: &mut Vec<u8>, version: QuicVersion) {
    match version {
        QuicVersion::V1 => buf.push(0),
        QuicVersion::Draft(n) => {
            buf.push(1);
            buf.push(n);
        }
        QuicVersion::Other(value) => {
            buf.push(2);
            write_varint(buf, u64::from(value));
        }
    }
}

fn decode_version(r: &mut ByteReader<'_>) -> Result<QuicVersion, StoreError> {
    match r.u8()? {
        0 => Ok(QuicVersion::V1),
        1 => Ok(QuicVersion::Draft(r.u8()?)),
        2 => {
            let value = r.varint()?;
            Ok(QuicVersion::Other(u32::try_from(value).map_err(|_| {
                StoreError::Corrupt(format!("QUIC version {value} overflows u32"))
            })?))
        }
        tag => Err(StoreError::Corrupt(format!(
            "invalid QUIC version tag {tag}"
        ))),
    }
}

fn encode_transport_params(buf: &mut Vec<u8>, params: &TransportParameters) {
    write_varint(buf, params.max_idle_timeout_ms);
    write_varint(buf, params.max_udp_payload_size);
    write_varint(buf, params.initial_max_data);
    write_varint(buf, params.initial_max_stream_data);
    write_varint(buf, params.initial_max_streams_bidi);
    write_varint(buf, params.ack_delay_exponent);
    write_varint(buf, params.max_ack_delay_ms);
    write_varint(buf, params.active_connection_id_limit);
}

fn decode_transport_params(r: &mut ByteReader<'_>) -> Result<TransportParameters, StoreError> {
    Ok(TransportParameters {
        max_idle_timeout_ms: r.varint()?,
        max_udp_payload_size: r.varint()?,
        initial_max_data: r.varint()?,
        initial_max_stream_data: r.varint()?,
        initial_max_streams_bidi: r.varint()?,
        ack_delay_exponent: r.varint()?,
        max_ack_delay_ms: r.varint()?,
        active_connection_id_limit: r.varint()?,
    })
}

fn encode_quic_report(buf: &mut Vec<u8>, dict: &mut DictBuilder, report: &ClientReport) {
    let mut flags = 0u8;
    flags |= u8::from(report.connected);
    flags |= u8::from(report.response.is_some()) << 1;
    flags |= u8::from(report.server_transport_params.is_some()) << 2;
    flags |= u8::from(report.transport_fingerprint.is_some()) << 3;
    flags |= u8::from(report.peer_mirrored) << 4;
    flags |= u8::from(report.server_used_ecn) << 5;
    flags |= u8::from(report.error.is_some()) << 6;
    buf.push(flags);
    if let Some(response) = &report.response {
        encode_response(buf, dict, response);
    }
    encode_version(buf, report.version);
    if let Some(params) = &report.server_transport_params {
        encode_transport_params(buf, params);
    }
    if let Some(fp) = report.transport_fingerprint {
        write_varint(buf, fp);
    }
    buf.push(validation_state_tag(report.ecn_state));
    write_counts(buf, report.mirrored_counts);
    write_counts(buf, report.sent_counts);
    write_counts(buf, report.received_ecn);
    if let Some(error) = &report.error {
        // Presence is already in flag bit 6: write the bare dictionary
        // index, not an Option tag — one representation per value.
        write_varint(buf, u64::from(dict.intern_str(error)));
    }
}

fn decode_quic_report(r: &mut ByteReader<'_>, dicts: &Dicts) -> Result<ClientReport, StoreError> {
    let flags = r.u8()?;
    if flags & 0x80 != 0 {
        return Err(StoreError::Corrupt(format!(
            "unknown QUIC report flags {flags:#04x}"
        )));
    }
    let response = if flags & (1 << 1) != 0 {
        Some(decode_response(r, dicts)?)
    } else {
        None
    };
    let version = decode_version(r)?;
    let server_transport_params = if flags & (1 << 2) != 0 {
        Some(decode_transport_params(r)?)
    } else {
        None
    };
    let transport_fingerprint = if flags & (1 << 3) != 0 {
        Some(r.varint()?)
    } else {
        None
    };
    let ecn_state = validation_state_from_tag(r.u8()?)?;
    let mirrored_counts = read_counts(r)?;
    let sent_counts = read_counts(r)?;
    let received_ecn = read_counts(r)?;
    let error = if flags & (1 << 6) != 0 {
        Some(dicts.string(r.varint()?)?.to_string())
    } else {
        None
    };
    Ok(ClientReport {
        connected: flags & 1 != 0,
        response,
        version,
        server_transport_params,
        transport_fingerprint,
        ecn_state,
        peer_mirrored: flags & (1 << 4) != 0,
        mirrored_counts,
        sent_counts,
        received_ecn,
        server_used_ecn: flags & (1 << 5) != 0,
        error,
    })
}

fn encode_tcp_report(buf: &mut Vec<u8>, report: &TcpReport) {
    let mut flags = 0u8;
    flags |= u8::from(report.connected);
    flags |= u8::from(report.negotiated) << 1;
    flags |= u8::from(report.ce_mirrored) << 2;
    flags |= u8::from(report.cwr_acknowledged) << 3;
    flags |= u8::from(report.server_used_ecn) << 4;
    flags |= u8::from(report.response_received) << 5;
    buf.push(flags);
    write_counts(buf, report.received_ecn);
    write_counts(buf, report.server_observed_ecn);
    write_varint(buf, u64::from(report.forward_losses));
}

fn decode_tcp_report(r: &mut ByteReader<'_>) -> Result<TcpReport, StoreError> {
    let flags = r.u8()?;
    if flags & 0xc0 != 0 {
        return Err(StoreError::Corrupt(format!(
            "unknown TCP report flags {flags:#04x}"
        )));
    }
    let received_ecn = read_counts(r)?;
    let server_observed_ecn = read_counts(r)?;
    let forward_losses = r.varint()?;
    Ok(TcpReport {
        connected: flags & 1 != 0,
        negotiated: flags & (1 << 1) != 0,
        ce_mirrored: flags & (1 << 2) != 0,
        cwr_acknowledged: flags & (1 << 3) != 0,
        received_ecn,
        server_observed_ecn,
        server_used_ecn: flags & (1 << 4) != 0,
        response_received: flags & (1 << 5) != 0,
        forward_losses: u32::try_from(forward_losses).map_err(|_| {
            StoreError::Corrupt(format!("forward loss count {forward_losses} overflows u32"))
        })?,
    })
}

fn encode_trace(buf: &mut Vec<u8>, dict: &mut DictBuilder, trace: &TraceAnalysis) {
    write_varint(buf, trace.changes.len() as u64);
    for change in &trace.changes {
        buf.push(codepoint_bits(change.from) << 2 | codepoint_bits(change.to));
        buf.push(change.visible_at_ttl);
        write_opt_ip(buf, change.last_unchanged_router);
        write_opt_asn(buf, dict, change.asn_before);
        write_opt_ip(buf, change.first_changed_router);
        write_opt_asn(buf, dict, change.asn_at_change);
    }
    buf.push(verdict_tag(trace.verdict));
    match trace.final_observed {
        None => buf.push(0xff),
        Some(cp) => buf.push(codepoint_bits(cp)),
    }
    buf.push(u8::from(trace.dscp_rewritten_only));
}

fn decode_trace(r: &mut ByteReader<'_>, dicts: &Dicts) -> Result<TraceAnalysis, StoreError> {
    let change_count = r.varint()? as usize;
    let mut changes = Vec::with_capacity(change_count.min(256));
    for _ in 0..change_count {
        let codepoints = r.u8()?;
        changes.push(EcnChange {
            from: codepoint_from_bits(codepoints >> 2)?,
            to: codepoint_from_bits(codepoints & 0b11)?,
            visible_at_ttl: r.u8()?,
            last_unchanged_router: read_opt_ip(r)?,
            asn_before: read_opt_asn(r, dicts)?,
            first_changed_router: read_opt_ip(r)?,
            asn_at_change: read_opt_asn(r, dicts)?,
        });
    }
    let verdict = verdict_from_tag(r.u8()?)?;
    let final_observed = match r.u8()? {
        0xff => None,
        bits => Some(codepoint_from_bits(bits)?),
    };
    let dscp_rewritten_only = r.u8()? != 0;
    Ok(TraceAnalysis {
        changes,
        verdict,
        final_observed,
        dscp_rewritten_only,
    })
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

/// Encode one measurement record, interning strings/ASNs into `dict`.
pub fn encode_measurement(buf: &mut Vec<u8>, dict: &mut DictBuilder, m: &HostMeasurement) {
    write_varint(buf, m.host_id as u64);
    let mut flags = 0u8;
    flags |= u8::from(m.quic_reachable);
    flags |= u8::from(m.quic.is_some()) << 1;
    flags |= u8::from(m.tcp.is_some()) << 2;
    flags |= u8::from(m.trace.is_some()) << 3;
    buf.push(flags);
    if let Some(quic) = &m.quic {
        encode_quic_report(buf, dict, quic);
    }
    if let Some(tcp) = &m.tcp {
        encode_tcp_report(buf, tcp);
    }
    if let Some(trace) = &m.trace {
        encode_trace(buf, dict, trace);
    }
}

/// Decode one measurement record against the segment's dictionaries.
pub fn decode_measurement(
    r: &mut ByteReader<'_>,
    dicts: &Dicts,
) -> Result<HostMeasurement, StoreError> {
    let host_id = r.varint()? as usize;
    let flags = r.u8()?;
    if flags & 0xf0 != 0 {
        return Err(StoreError::Corrupt(format!(
            "unknown measurement flags {flags:#04x} for host {host_id}"
        )));
    }
    let quic = if flags & (1 << 1) != 0 {
        Some(decode_quic_report(r, dicts)?)
    } else {
        None
    };
    let tcp = if flags & (1 << 2) != 0 {
        Some(decode_tcp_report(r)?)
    } else {
        None
    };
    let trace = if flags & (1 << 3) != 0 {
        Some(decode_trace(r, dicts)?)
    } else {
        None
    };
    Ok(HostMeasurement {
        host_id,
        quic_reachable: flags & 1 != 0,
        quic,
        tcp,
        trace,
    })
}

/// Encode a batch of measurements as a self-contained block: dictionaries
/// first, then the record count, then the records.  This is the payload of a
/// segment file ([`crate::segment`] adds framing and the checksum).
pub fn encode_block(measurements: &[HostMeasurement]) -> Vec<u8> {
    let mut dict = DictBuilder::default();
    let mut records = Vec::new();
    for m in measurements {
        encode_measurement(&mut records, &mut dict, m);
    }
    let mut block = Vec::with_capacity(records.len() + 64);
    dict.encode(&mut block);
    write_varint(&mut block, measurements.len() as u64);
    block.extend_from_slice(&records);
    block
}

/// Decode a block produced by [`encode_block`].
pub fn decode_block(data: &[u8]) -> Result<Vec<HostMeasurement>, StoreError> {
    let mut r = ByteReader::new(data);
    let dicts = Dicts::decode(&mut r)?;
    let count = r.varint()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        out.push(decode_measurement(&mut r, &dicts)?);
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the last record",
            data.len() - r.position()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ClientReport {
        ClientReport {
            connected: true,
            response: Some(HttpResponse {
                status: 200,
                server: Some("LiteSpeed/6.0".to_string()),
                via: None,
                alt_svc: Some("h3=\":443\"".to_string()),
                body_len: 2048,
            }),
            version: QuicVersion::Draft(29),
            server_transport_params: Some(TransportParameters::client_default()),
            transport_fingerprint: Some(0xdead_beef_cafe),
            ecn_state: EcnValidationState::Failed(EcnValidationFailure::Undercount),
            peer_mirrored: true,
            mirrored_counts: EcnCounts {
                ect0: 10,
                ect1: 0,
                ce: 1,
            },
            sent_counts: EcnCounts {
                ect0: 12,
                ect1: 0,
                ce: 0,
            },
            received_ecn: EcnCounts {
                ect0: 0,
                ect1: 0,
                ce: 0,
            },
            server_used_ecn: false,
            error: None,
        }
    }

    fn sample_measurement(host_id: usize) -> HostMeasurement {
        HostMeasurement {
            host_id,
            quic_reachable: true,
            quic: Some(sample_report()),
            tcp: Some(TcpReport {
                connected: true,
                negotiated: true,
                ce_mirrored: false,
                cwr_acknowledged: false,
                received_ecn: EcnCounts::ZERO,
                server_observed_ecn: EcnCounts {
                    ect0: 9,
                    ect1: 0,
                    ce: 0,
                },
                server_used_ecn: false,
                response_received: true,
                forward_losses: 1,
            }),
            trace: Some(TraceAnalysis {
                changes: vec![EcnChange {
                    from: EcnCodepoint::Ect0,
                    to: EcnCodepoint::Ect1,
                    visible_at_ttl: 7,
                    last_unchanged_router: Some("10.1.2.3".parse().unwrap()),
                    asn_before: Some(Asn(1299)),
                    first_changed_router: Some("2001:db8::7".parse().unwrap()),
                    asn_at_change: Some(Asn(174)),
                }],
                verdict: PathVerdict::RemarkedToEct1,
                final_observed: Some(EcnCodepoint::Ect1),
                dscp_rewritten_only: false,
            }),
        }
    }

    #[test]
    fn a_full_record_round_trips() {
        let m = sample_measurement(42);
        let decoded = decode_block(&encode_block(std::slice::from_ref(&m))).unwrap();
        assert_eq!(decoded, vec![m]);
    }

    #[test]
    fn a_minimal_record_round_trips() {
        let m = HostMeasurement {
            host_id: 0,
            quic_reachable: false,
            quic: None,
            tcp: None,
            trace: None,
        };
        let decoded = decode_block(&encode_block(std::slice::from_ref(&m))).unwrap();
        assert_eq!(decoded, vec![m]);
    }

    #[test]
    fn dictionaries_deduplicate_repeated_strings() {
        let hosts: Vec<HostMeasurement> = (0..100).map(sample_measurement).collect();
        let block = encode_block(&hosts);
        let one = encode_block(&hosts[..1]);
        // 100 identical-shape records must cost measurably less than 100
        // single-record blocks: every string and ASN is stored once per
        // segment instead of once per record.
        assert!(
            block.len() < one.len() * hosts.len() * 4 / 5,
            "block {} vs naive {}",
            block.len(),
            one.len() * hosts.len()
        );
        assert_eq!(decode_block(&block).unwrap(), hosts);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut block = encode_block(&[sample_measurement(1)]);
        block.push(0);
        assert!(matches!(decode_block(&block), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn every_validation_state_round_trips() {
        for tag in 0..=8u8 {
            let state = validation_state_from_tag(tag).unwrap();
            assert_eq!(validation_state_tag(state), tag);
        }
        assert!(validation_state_from_tag(9).is_err());
    }

    #[test]
    fn every_verdict_round_trips() {
        for tag in 0..=5u8 {
            assert_eq!(verdict_tag(verdict_from_tag(tag).unwrap()), tag);
        }
        assert!(verdict_from_tag(6).is_err());
    }
}
