//! Segment files: the append unit of the store.
//!
//! A segment holds one encoded block of measurements (see
//! [`crate::codec::encode_block`]) wrapped in framing:
//!
//! ```text
//! "QSEG" | version u8 | block bytes … | FNV-1a-64 of everything before (LE)
//! ```
//!
//! Segments are written **atomically**: the bytes go to `<name>.tmp`, the
//! file is synced, then renamed into place.  A campaign killed mid-write
//! therefore leaves either a complete, checksummed segment or an ignorable
//! `.tmp` orphan — never a half-segment — which is the invariant resume
//! relies on.

use crate::codec::{decode_block, encode_block, FORMAT_VERSION};
use crate::wire::{fnv1a, split_seal, ByteReader};
use crate::StoreError;
use qem_core::observation::HostMeasurement;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"QSEG";

/// File name of segment `index` inside a snapshot directory.
pub fn segment_file_name(index: u32) -> String {
    format!("segment-{index:05}.qseg")
}

/// Write `measurements` as segment `index` in `dir`, atomically.
pub fn write_segment(
    dir: &Path,
    index: u32,
    measurements: &[HostMeasurement],
) -> Result<PathBuf, StoreError> {
    let mut bytes = Vec::with_capacity(measurements.len() * 64 + 16);
    bytes.extend_from_slice(MAGIC);
    bytes.push(FORMAT_VERSION);
    bytes.extend_from_slice(&encode_block(measurements));
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());

    let final_path = dir.join(segment_file_name(index));
    write_atomically(&final_path, &bytes)?;
    Ok(final_path)
}

/// Write `bytes` to `path` via a `.tmp` sibling plus rename, syncing before
/// the rename so the name never points at partial data, and syncing the
/// parent directory afterwards so the rename itself survives power loss —
/// otherwise segment N's directory entry could vanish while N+1's persists,
/// breaking the gapless-prefix invariant resume relies on.
pub fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp_path = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp_path)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp_path, path)?;
    if let Some(parent) = path.parent() {
        // Best-effort: fsync on a directory handle is well-defined on Linux
        // (the target platform) but not everywhere; a failure here degrades
        // power-loss durability, not correctness of what was written.
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Read and fully validate one segment file.
pub fn read_segment(path: &Path) -> Result<Vec<HostMeasurement>, StoreError> {
    let bytes = fs::read(path)?;
    let payload = check_framing(&bytes)
        .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
    decode_block(payload).map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))
}

/// Verify a segment file's framing and FNV seal without decoding the block.
///
/// This is the eager integrity check [`crate::StoredSnapshot::open`] runs
/// over every segment, so corruption surfaces as a typed
/// [`StoreError::Corrupt`] naming the file at open time instead of failing
/// (or silently skipping) halfway through a census.
pub fn verify_segment(path: &Path) -> Result<(), StoreError> {
    let bytes = fs::read(path)?;
    check_framing(&bytes)
        .map(|_| ())
        .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))
}

/// Validate magic, version and checksum; return the enclosed block bytes.
pub fn check_framing(bytes: &[u8]) -> Result<&[u8], StoreError> {
    if bytes.len() < MAGIC.len() + 1 + 8 {
        return Err(StoreError::Corrupt(
            "file shorter than segment framing".to_string(),
        ));
    }
    let (body, stored) = split_seal(bytes)?;
    let computed = fnv1a(body);
    if stored != computed {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        )));
    }
    let mut r = ByteReader::new(body);
    if r.bytes(MAGIC.len())? != MAGIC {
        return Err(StoreError::Corrupt(
            "bad magic (not a segment file)".to_string(),
        ));
    }
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    Ok(&body[MAGIC.len() + 1..])
}

/// Remove `.tmp` orphans left behind by a killed writer.
pub fn remove_tmp_orphans(dir: &Path) -> Result<(), StoreError> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|ext| ext == "tmp") {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// List the gapless prefix of complete segment files in `dir`, in order.
///
/// Renames are atomic and segments are written in order, so a crash leaves a
/// contiguous run `segment-00000 … segment-NNNNN`.  A gap would mean the
/// directory was tampered with; segments after it are unreachable from the
/// resume protocol, so their presence is reported as corruption.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut indices = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(index) = name
            .strip_prefix("segment-")
            .and_then(|rest| rest.strip_suffix(".qseg"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            indices.push(index);
        }
    }
    indices.sort_unstable();
    for (expected, &actual) in indices.iter().enumerate() {
        if actual != expected as u32 {
            return Err(StoreError::Corrupt(format!(
                "segment numbering has a gap: expected segment {expected}, found {actual}"
            )));
        }
    }
    Ok(indices
        .into_iter()
        .map(|index| dir.join(segment_file_name(index)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;

    fn measurement(host_id: usize) -> HostMeasurement {
        HostMeasurement {
            host_id,
            quic_reachable: false,
            quic: None,
            tcp: None,
            trace: None,
        }
    }

    #[test]
    fn segments_round_trip_through_the_filesystem() {
        let dir = temp_dir("roundtrip");
        let hosts: Vec<HostMeasurement> = (0..10).map(measurement).collect();
        let path = write_segment(&dir, 0, &hosts).unwrap();
        assert_eq!(read_segment(&path).unwrap(), hosts);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_flipped_bit_is_detected() {
        let dir = temp_dir("bitflip");
        let path = write_segment(&dir, 0, &[measurement(7)]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_segment(&path), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_skips_tmp_orphans_and_rejects_gaps() {
        let dir = temp_dir("listing");
        write_segment(&dir, 0, &[measurement(0)]).unwrap();
        write_segment(&dir, 1, &[measurement(1)]).unwrap();
        fs::write(dir.join("segment-00002.tmp"), b"partial").unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 2);
        remove_tmp_orphans(&dir).unwrap();
        assert!(!dir.join("segment-00002.tmp").exists());

        // Introduce a gap: 0, 1, 3.
        write_segment(&dir, 3, &[measurement(3)]).unwrap();
        assert!(matches!(list_segments(&dir), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
