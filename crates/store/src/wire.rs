//! Low-level wire primitives of the store format: LEB128 varints, a bounds-
//! checked byte reader and the FNV-1a checksum that seals every file.
//!
//! Everything here is hand-rolled on purpose — the store must not pull in
//! registry crates (the build runs fully offline), and the format is simple
//! enough that a dependency would cost more than it saves.

use crate::StoreError;

/// Append a LEB128-encoded unsigned integer to `buf`.
pub fn write_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append a little-endian `u64` (used for f64 bit patterns and checksums,
/// where varint encoding would inflate random bit patterns).
pub fn write_u64_le(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// The 64-bit FNV-1a hash of `data` — the integrity seal at the end of every
/// store file.  Not cryptographic; it catches truncation and bit rot, which
/// is all a local result store needs.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Split a sealed store file into its body and the trailing little-endian
/// [`fnv1a`] seal.  Every store file ends with this 8-byte seal; a file
/// shorter than the seal itself is truncation, reported as
/// [`StoreError::Corrupt`] rather than a slicing panic.
pub fn split_seal(bytes: &[u8]) -> Result<(&[u8], u64), StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Corrupt(
            "file shorter than its 8-byte integrity seal".to_string(),
        ));
    }
    let (body, seal_bytes) = bytes.split_at(bytes.len() - 8);
    let mut seal = [0u8; 8];
    seal.copy_from_slice(seal_bytes);
    Ok((body, u64::from_le_bytes(seal)))
}

/// A bounds-checked cursor over an encoded buffer.  Every read error carries
/// the reader's position so corrupt files produce actionable messages.
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wrap a buffer.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn corrupt(&self, what: &str) -> StoreError {
        StoreError::Corrupt(format!("{what} at offset {}", self.pos))
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        let byte = *self
            .data
            .get(self.pos)
            .ok_or_else(|| self.corrupt("unexpected end of data"))?;
        self.pos += 1;
        Ok(byte)
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| self.corrupt("unexpected end of data"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, StoreError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(self.corrupt("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.corrupt("varint longer than 10 bytes"));
            }
        }
    }

    /// Read a little-endian `u64`.
    pub fn u64_le(&mut self) -> Result<u64, StoreError> {
        let bytes = self.bytes(8)?;
        let mut array = [0u8; 8];
        array.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(array))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, StoreError> {
        let len = self.varint()? as usize;
        if len > self.data.len().saturating_sub(self.pos) {
            return Err(self.corrupt("string length exceeds remaining data"));
        }
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("invalid UTF-8 at offset {}", self.pos)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_across_magnitudes() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut reader = ByteReader::new(&buf);
        for &v in &values {
            assert_eq!(reader.varint().unwrap(), v);
        }
        assert!(reader.is_empty());
    }

    #[test]
    fn truncated_varint_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.truncate(buf.len() - 1);
        assert!(ByteReader::new(&buf).varint().is_err());
    }

    #[test]
    fn oversized_varint_is_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        assert!(ByteReader::new(&buf).varint().is_err());
    }

    #[test]
    fn strings_round_trip_and_reject_bad_lengths() {
        let mut buf = Vec::new();
        write_str(&mut buf, "Aachen (main)");
        write_str(&mut buf, "");
        let mut reader = ByteReader::new(&buf);
        assert_eq!(reader.string().unwrap(), "Aachen (main)");
        assert_eq!(reader.string().unwrap(), "");

        let mut bad = Vec::new();
        write_varint(&mut bad, 1_000);
        bad.push(b'x');
        assert!(ByteReader::new(&bad).string().is_err());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
