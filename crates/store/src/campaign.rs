//! Store-backed campaign runs: streaming ingest and kill-and-resume.
//!
//! [`CampaignStoreExt`] extends [`qem_core::Campaign`] with variants of the
//! snapshot and longitudinal runs that spill to a store directory instead of
//! accumulating measurements in memory.  Because every per-host measurement
//! is a pure function of `seed × host id`, a resumed campaign — skipping the
//! hosts already persisted before the kill — produces a snapshot
//! bit-identical to an uninterrupted run at any worker count.

use crate::longitudinal::{LongitudinalStore, LongitudinalWriter};
use crate::segment::write_atomically;
use crate::store::{CampaignWriter, SnapshotMeta, StoredSnapshot, WriterStats, TELEMETRY_FILE};
use crate::StoreError;
use qem_core::campaign::{Campaign, CampaignOptions};
use qem_core::scanner::{ScanOptions, Scanner};
use qem_core::vantage::VantagePoint;
use qem_obs::RunTelemetry;
use qem_web::SnapshotDate;
use std::collections::BTreeSet;
use std::path::Path;

/// What a resumed campaign did.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The completed snapshot.
    pub store: StoredSnapshot,
    /// Hosts that were already persisted and therefore **not** re-scanned.
    pub skipped_hosts: usize,
    /// Hosts measured by the resume run.
    pub scanned_hosts: usize,
}

/// Drive a streaming scan into a fallible sink (typically
/// [`CampaignWriter::append`]), stopping the (cheap) appends after the first
/// error and surfacing it afterwards.  The scan itself runs to completion —
/// the executor owns worker threads that must join.
pub fn scan_into<F>(scanner: &Scanner<'_>, ids: &[usize], mut sink: F) -> Result<(), StoreError>
where
    F: FnMut(qem_core::observation::HostMeasurement) -> Result<(), StoreError>,
{
    let mut first_error: Option<StoreError> = None;
    scanner.scan_hosts_streaming(ids, |m| {
        if first_error.is_none() {
            if let Err(e) = sink(m) {
                first_error = Some(e);
            }
        }
    });
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// The `telemetry.json` written next to the segments by store-backed runs:
/// the scan's deterministic metrics plus what the writer did.  Informational
/// only — never part of the snapshot identity or the measurement data.
fn write_run_telemetry(
    dir: &Path,
    meta: &SnapshotMeta,
    scanner: &Scanner<'_>,
    stats: WriterStats,
) -> Result<(), StoreError> {
    let mut telemetry = RunTelemetry::new();
    telemetry.set_info("campaign", "snapshot");
    telemetry.set_info("date", meta.date.to_string());
    telemetry.set_info("family", if meta.ipv6 { "v6" } else { "v4" });
    telemetry.set_info("probe", format!("{:?}", meta.probe));
    telemetry.set_info("seed", meta.seed.to_string());
    telemetry.insert_section("scan", scanner.metrics_snapshot());
    telemetry.insert_section("store", stats.telemetry());
    write_atomically(&dir.join(TELEMETRY_FILE), telemetry.to_json().as_bytes())
}

/// Stores hold only the single-flow methodology (see [`CampaignStoreExt`]).
fn reject_cross_traffic(options: &CampaignOptions) -> Result<(), StoreError> {
    if options.cross_traffic.is_enabled() {
        return Err(StoreError::Mismatch(
            "cross-traffic scenarios cannot be persisted: the scenario is not \
             part of the store identity, so a resumed scan could not reproduce \
             it — run what-if campaigns in memory instead"
                .to_string(),
        ));
    }
    // Same argument for retries: a failed attempt re-draws from the per-host
    // RNG, so the retry policy shapes the measurement stream — and it is not
    // part of [`SnapshotMeta`], so a resume could not reproduce it.
    if !options.retry.is_noop() {
        return Err(StoreError::Mismatch(
            "retrying campaigns cannot be persisted: the retry policy is not \
             part of the store identity, so a resumed scan could not reproduce \
             it — run chaos campaigns in memory instead"
                .to_string(),
        ));
    }
    Ok(())
}

/// Store-backed campaign runs.
///
/// Stores only ever hold the single-flow methodology: an enabled
/// [`CampaignOptions::cross_traffic`] scenario is rejected with
/// [`StoreError::Mismatch`], because the scenario is not part of
/// [`SnapshotMeta`] and a later resume could not reproduce it — half the
/// hosts would be measured under load and half without, silently.  What-if
/// scenarios are ephemeral; run them in memory.
pub trait CampaignStoreExt {
    /// Run one snapshot, streaming every measurement into a store at `dir`
    /// instead of materialising the result set.  Peak memory is one segment
    /// buffer plus the executor's bounded in-flight window.
    fn run_snapshot_to_store(
        &self,
        vantage: &VantagePoint,
        options: &CampaignOptions,
        ipv6: bool,
        dir: &Path,
    ) -> Result<StoredSnapshot, StoreError>;

    /// Complete an interrupted [`CampaignStoreExt::run_snapshot_to_store`]:
    /// hosts already persisted are skipped, the rest are measured with the
    /// stored options (`workers` only changes scheduling, so it is supplied
    /// fresh).  The result is bit-identical to an uninterrupted run.
    fn resume_snapshot_to_store(
        &self,
        dir: &Path,
        workers: usize,
    ) -> Result<ResumeOutcome, StoreError>;

    /// Run the longitudinal series (one IPv4 snapshot per date), streaming
    /// each date into a delta-encoded store: dates after the first persist
    /// only hosts whose measurement changed.
    fn run_longitudinal_to_store(
        &self,
        dates: &[SnapshotDate],
        options: &CampaignOptions,
        dir: &Path,
    ) -> Result<LongitudinalStore, StoreError>;
}

impl CampaignStoreExt for Campaign<'_> {
    fn run_snapshot_to_store(
        &self,
        vantage: &VantagePoint,
        options: &CampaignOptions,
        ipv6: bool,
        dir: &Path,
    ) -> Result<StoredSnapshot, StoreError> {
        reject_cross_traffic(options)?;
        let universe = self.universe();
        let meta = SnapshotMeta::for_campaign(options, vantage, ipv6);
        let mut writer = CampaignWriter::create(dir, &meta)?;
        let scanner = Scanner::new(
            universe,
            vantage.clone(),
            ScanOptions {
                date: options.date,
                ipv6,
                probe: options.probe,
                trace_sample_probability: options.trace_sample_probability,
                workers: options.workers,
                seed: options.seed,
                cross_traffic: options.cross_traffic,
                retry: qem_core::resilience::RetryPolicy::none(),
            },
        );
        let population = universe.scan_population(ipv6);
        scan_into(&scanner, &population, |m| writer.append(m))?;
        let (store, stats) = writer.finish_with_stats()?;
        write_run_telemetry(dir, &meta, &scanner, stats)?;
        Ok(store)
    }

    fn resume_snapshot_to_store(
        &self,
        dir: &Path,
        workers: usize,
    ) -> Result<ResumeOutcome, StoreError> {
        let universe = self.universe();
        let (mut writer, meta, persisted) = CampaignWriter::resume(dir)?;
        let population = universe.scan_population(meta.ipv6);

        // The persisted prefix must be a prefix of this universe's scan
        // population — otherwise the store belongs to a different universe
        // and "resuming" would splice two incompatible campaigns.
        let expected: BTreeSet<usize> = population.iter().copied().collect();
        if let Some(alien) = persisted.iter().find(|id| !expected.contains(id)) {
            return Err(StoreError::Mismatch(format!(
                "store holds host {alien}, which this universe would not scan — \
                 wrong universe or options?"
            )));
        }

        let persisted_set: BTreeSet<usize> = persisted.iter().copied().collect();
        let remaining: Vec<usize> = population
            .iter()
            .copied()
            .filter(|id| !persisted_set.contains(id))
            .collect();
        let scanner = Scanner::new(
            universe,
            meta.vantage.clone(),
            ScanOptions {
                date: meta.date,
                ipv6: meta.ipv6,
                probe: meta.probe,
                trace_sample_probability: meta.trace_sample_probability,
                workers,
                seed: meta.seed,
                // Cross-traffic and retry what-if scenarios are not campaign
                // artifacts: the store only ever holds (and resumes) the
                // single-flow, single-attempt methodology.
                cross_traffic: qem_netsim::CrossTraffic::none(),
                retry: qem_core::resilience::RetryPolicy::none(),
            },
        );
        scan_into(&scanner, &remaining, |m| writer.append(m))?;
        let (store, stats) = writer.finish_with_stats()?;
        write_run_telemetry(dir, &meta, &scanner, stats)?;
        Ok(ResumeOutcome {
            store,
            skipped_hosts: persisted.len(),
            scanned_hosts: remaining.len(),
        })
    }

    fn run_longitudinal_to_store(
        &self,
        dates: &[SnapshotDate],
        options: &CampaignOptions,
        dir: &Path,
    ) -> Result<LongitudinalStore, StoreError> {
        reject_cross_traffic(options)?;
        let universe = self.universe();
        let vantage = VantagePoint::main();
        let mut writer = LongitudinalWriter::create(dir, &vantage, options, dates)?;
        let population = universe.scan_population(false);
        for _ in dates {
            let date = writer.begin_date()?;
            let scanner = Scanner::new(
                universe,
                vantage.clone(),
                ScanOptions {
                    date,
                    ipv6: false,
                    probe: options.probe,
                    trace_sample_probability: options.trace_sample_probability,
                    workers: options.workers,
                    seed: options.seed,
                    cross_traffic: options.cross_traffic,
                    retry: qem_core::resilience::RetryPolicy::none(),
                },
            );
            scan_into(&scanner, &population, |m| writer.append(m))?;
            writer.end_date()?;
        }
        writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;
    use qem_core::source::SnapshotSource;
    use qem_web::{Universe, UniverseConfig};
    use std::fs;

    fn universe() -> Universe {
        Universe::generate(&UniverseConfig::tiny())
    }

    #[test]
    fn cross_traffic_campaigns_cannot_be_persisted() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let vantage = VantagePoint::main();
        let loaded = CampaignOptions::ce_probing_under_load();

        let dir = temp_dir("cross-traffic-reject");
        let snapshot = campaign.run_snapshot_to_store(&vantage, &loaded, false, &dir);
        assert!(
            matches!(snapshot, Err(StoreError::Mismatch(_))),
            "cross-traffic snapshots must be rejected, got {snapshot:?}"
        );
        let series =
            campaign.run_longitudinal_to_store(&[qem_web::SnapshotDate::APR_2023], &loaded, &dir);
        assert!(matches!(series, Err(StoreError::Mismatch(_))));

        // And a stored single-flow snapshot never claims identity with
        // loaded options, even when everything else matches.
        let options = CampaignOptions::paper_default();
        let stored = campaign
            .run_snapshot_to_store(&vantage, &options, false, &dir)
            .unwrap();
        assert!(stored.meta().matches(&options, &vantage, false));
        assert!(!stored.meta().matches(
            &options.with_cross_traffic(qem_netsim::CrossTraffic::congested()),
            &vantage,
            false
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_backed_snapshot_equals_in_memory_snapshot() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let options = CampaignOptions::paper_default();
        let vantage = VantagePoint::main();
        let in_memory = campaign.run_snapshot(&vantage, &options, false);

        let dir = temp_dir("equality");
        let stored = campaign
            .run_snapshot_to_store(&vantage, &options, false, &dir)
            .unwrap();
        assert_eq!(stored.to_snapshot().unwrap().hosts, in_memory.hosts);
        assert_eq!(stored.date(), in_memory.date);
        assert_eq!(stored.vantage(), &in_memory.vantage);
        let telemetry = stored
            .telemetry_json()
            .unwrap()
            .expect("store-backed runs persist their telemetry");
        assert!(telemetry.contains("\"scan.hosts\""));
        assert!(telemetry.contains("\"store.segments_written\""));
        // The persisted identity names exactly this campaign — and rejects
        // any options that would produce different measurements.
        assert!(stored.meta().matches(&options, &vantage, false));
        assert!(!stored.meta().matches(&options, &vantage, true));
        assert!(!stored
            .meta()
            .matches(&CampaignOptions::ce_probing(), &vantage, false));
        assert!(
            stored.meta().matches(
                &CampaignOptions {
                    workers: 7,
                    ..options
                },
                &vantage,
                false
            ),
            "worker count is scheduling, not identity"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_killed_campaign_resumes_without_rescanning() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let options = CampaignOptions::paper_default();
        let vantage = VantagePoint::main();
        let reference = campaign.run_snapshot(&vantage, &options, false);

        // Simulate the kill: persist only the first 40% of the population,
        // then drop the writer without finishing.
        let dir = temp_dir("resume");
        let population = universe.scan_population(false);
        let cut = population.len() * 2 / 5;
        {
            let meta = SnapshotMeta::for_campaign(&options, &vantage, false);
            let mut writer = CampaignWriter::create(&dir, &meta)
                .unwrap()
                .with_segment_capacity(16);
            let scanner = Scanner::new(
                &universe,
                vantage.clone(),
                ScanOptions {
                    date: options.date,
                    ipv6: false,
                    probe: options.probe,
                    trace_sample_probability: options.trace_sample_probability,
                    workers: 0,
                    seed: options.seed,
                    cross_traffic: options.cross_traffic,
                    retry: qem_core::resilience::RetryPolicy::none(),
                },
            );
            scan_into(&scanner, &population[..cut], |m| writer.append(m)).unwrap();
            // Writer dropped here: partial segments stay, no COMPLETE marker.
        }

        let outcome = campaign.resume_snapshot_to_store(&dir, 4).unwrap();
        // The persisted prefix is segment-aligned: everything the writer
        // flushed survives, the buffered tail is re-scanned.
        assert!(
            outcome.skipped_hosts > 0,
            "resume must reuse persisted hosts"
        );
        assert!(outcome.skipped_hosts <= cut);
        assert_eq!(
            outcome.skipped_hosts + outcome.scanned_hosts,
            population.len(),
            "every host is either reused or scanned exactly once"
        );
        assert_eq!(outcome.store.to_snapshot().unwrap().hosts, reference.hosts);
        // The resume's telemetry records how much work the store saved.
        let telemetry = outcome.store.telemetry_json().unwrap().unwrap();
        let needle = format!(
            "\"store.resume_skipped\": {{\"type\": \"counter\", \"value\": {}}}",
            outcome.skipped_hosts
        );
        assert!(
            telemetry.contains(&needle),
            "telemetry must record the skipped prefix:\n{telemetry}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn longitudinal_store_replays_the_run_and_stores_deltas_only() {
        let universe = universe();
        let campaign = Campaign::new(&universe);
        let options = CampaignOptions::paper_default();
        let dates = [
            SnapshotDate::JUN_2022,
            SnapshotDate::FEB_2023,
            SnapshotDate::APR_2023,
        ];
        let reference = campaign.run_longitudinal(&dates, &options);

        let dir = temp_dir("longitudinal");
        let store = campaign
            .run_longitudinal_to_store(&dates, &options, &dir)
            .unwrap();
        let replayed = store.snapshots().unwrap();
        assert_eq!(replayed.len(), reference.len());
        for (a, b) in replayed.iter().zip(&reference) {
            assert_eq!(a.date, b.date);
            assert_eq!(a.hosts, b.hosts);
        }
        // The first date stores the full population; later dates store
        // strictly fewer records (only changed hosts).
        let full = store.stored_record_count(0).unwrap();
        for idx in 1..dates.len() {
            let delta = store.stored_record_count(idx).unwrap();
            assert!(
                delta < full,
                "date {idx} stored {delta} records, expected fewer than {full}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
