//! One snapshot on disk: metadata, the streaming writer and the reader.
//!
//! Directory layout (one directory per snapshot):
//!
//! ```text
//! <dir>/
//!   snapshot.meta      identity: date, family, vantage, probe options
//!   segment-00000.qseg measurements in ascending host-id order
//!   segment-00001.qseg …
//!   COMPLETE           end marker + total record count (absent ⇒ resumable)
//! ```
//!
//! Every file is checksummed and written atomically, so the directory is
//! always in one of three states: empty, a resumable prefix of a campaign,
//! or a complete snapshot.

use crate::codec::{encode_block, FORMAT_VERSION};
use crate::segment::{
    list_segments, read_segment, remove_tmp_orphans, verify_segment, write_atomically,
    write_segment,
};
use crate::wire::{fnv1a, split_seal, write_str, write_u64_le, write_varint, ByteReader};
use crate::StoreError;
use qem_core::campaign::{CampaignOptions, SnapshotMeasurement};
use qem_core::observation::HostMeasurement;
use qem_core::scanner::ProbeMode;
use qem_core::source::SnapshotSource;
use qem_core::vantage::{CloudProvider, VantagePoint, VantageQuirks};
use qem_obs::MetricsSnapshot;
use qem_web::SnapshotDate;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const META_MAGIC: &[u8; 4] = b"QMET";
const COMPLETE_MAGIC: &[u8; 4] = b"QDON";

/// File holding the snapshot identity.
pub const META_FILE: &str = "snapshot.meta";
/// End marker file; its presence means the snapshot is complete.
pub const COMPLETE_FILE: &str = "COMPLETE";
/// Optional [`qem_obs::RunTelemetry`] JSON written next to the segments by
/// store-backed campaign runs.
pub const TELEMETRY_FILE: &str = "telemetry.json";

/// Records per segment file.  4096 full measurements (reports plus traces)
/// stay in the low tens of megabytes — the writer's entire memory footprint.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

/// Identity of one stored snapshot: everything (except the universe itself)
/// needed to re-derive the remaining measurements of an interrupted campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// Snapshot date.
    pub date: SnapshotDate,
    /// Whether IPv6 was probed.
    pub ipv6: bool,
    /// The vantage point.
    pub vantage: VantagePoint,
    /// Probe mode.
    pub probe: ProbeMode,
    /// Tracebox sampling probability.
    pub trace_sample_probability: f64,
    /// Campaign seed (the scanner derives every per-host RNG from it).
    pub seed: u64,
    /// Whether the segments hold a delta against the previous longitudinal
    /// date instead of a full snapshot.
    pub delta: bool,
}

impl SnapshotMeta {
    /// Metadata for one snapshot of a campaign run.
    pub fn for_campaign(options: &CampaignOptions, vantage: &VantagePoint, ipv6: bool) -> Self {
        SnapshotMeta {
            date: options.date,
            ipv6,
            vantage: vantage.clone(),
            probe: options.probe,
            trace_sample_probability: options.trace_sample_probability,
            seed: options.seed,
            delta: false,
        }
    }

    /// Whether a campaign with `options` produces the measurements this
    /// store holds.  The worker count is deliberately not part of the
    /// identity: scheduling never changes results.  Stores only ever hold
    /// the single-flow methodology, so options with an enabled
    /// cross-traffic scenario never match.
    pub fn matches(&self, options: &CampaignOptions, vantage: &VantagePoint, ipv6: bool) -> bool {
        !options.cross_traffic.is_enabled()
            && self.date == options.date
            && self.ipv6 == ipv6
            && self.vantage == *vantage
            && self.probe == options.probe
            && self.trace_sample_probability.to_bits() == options.trace_sample_probability.to_bits()
            && self.seed == options.seed
    }

    fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(96);
        bytes.extend_from_slice(META_MAGIC);
        bytes.push(FORMAT_VERSION);
        let mut flags = 0u8;
        flags |= u8::from(self.ipv6);
        flags |= u8::from(self.delta) << 1;
        bytes.push(flags);
        write_varint(&mut bytes, u64::from(self.date.year));
        bytes.push(self.date.month);
        write_str(&mut bytes, &self.vantage.name);
        bytes.push(match self.vantage.provider {
            CloudProvider::Main => 0,
            CloudProvider::Aws => 1,
            CloudProvider::Vultr => 2,
        });
        write_varint(&mut bytes, u64::from(self.vantage.asn.0));
        let quirks = &self.vantage.quirks;
        let mut quirk_flags = 0u8;
        quirk_flags |= u8::from(quirks.wix_unreachable);
        quirk_flags |= u8::from(quirks.google_ce_anomaly) << 1;
        bytes.push(quirk_flags);
        write_u64_le(&mut bytes, quirks.extra_remark_probability.to_bits());
        write_u64_le(&mut bytes, quirks.remark_suppression_probability.to_bits());
        bytes.push(match self.probe {
            ProbeMode::Ect0 => 0,
            ProbeMode::ForceCe => 1,
        });
        write_u64_le(&mut bytes, self.trace_sample_probability.to_bits());
        write_u64_le(&mut bytes, self.seed);
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    fn decode(bytes: &[u8]) -> Result<SnapshotMeta, StoreError> {
        let (body, stored) = split_seal(bytes)
            .map_err(|_| StoreError::Corrupt("metadata file truncated".to_string()))?;
        if stored != fnv1a(body) {
            return Err(StoreError::Corrupt(
                "metadata checksum mismatch".to_string(),
            ));
        }
        let mut r = ByteReader::new(body);
        if r.bytes(META_MAGIC.len())? != META_MAGIC {
            return Err(StoreError::Corrupt("bad metadata magic".to_string()));
        }
        let version = r.u8()?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported metadata version {version}"
            )));
        }
        let flags = r.u8()?;
        let year = r.varint()?;
        let month = r.u8()?;
        let name = r.string()?;
        let provider = match r.u8()? {
            0 => CloudProvider::Main,
            1 => CloudProvider::Aws,
            2 => CloudProvider::Vultr,
            tag => return Err(StoreError::Corrupt(format!("invalid provider tag {tag}"))),
        };
        let asn = r.varint()?;
        let quirk_flags = r.u8()?;
        let extra_remark = f64::from_bits(r.u64_le()?);
        let remark_suppression = f64::from_bits(r.u64_le()?);
        let probe = match r.u8()? {
            0 => ProbeMode::Ect0,
            1 => ProbeMode::ForceCe,
            tag => return Err(StoreError::Corrupt(format!("invalid probe tag {tag}"))),
        };
        let trace_sample_probability = f64::from_bits(r.u64_le()?);
        let seed = r.u64_le()?;
        if !r.is_empty() {
            return Err(StoreError::Corrupt(
                "trailing bytes in metadata".to_string(),
            ));
        }
        Ok(SnapshotMeta {
            date: SnapshotDate::new(
                u16::try_from(year)
                    .map_err(|_| StoreError::Corrupt(format!("year {year} overflows u16")))?,
                month,
            ),
            ipv6: flags & 1 != 0,
            vantage: VantagePoint {
                name,
                provider,
                asn: qem_netsim::Asn(
                    u32::try_from(asn)
                        .map_err(|_| StoreError::Corrupt(format!("ASN {asn} overflows u32")))?,
                ),
                quirks: VantageQuirks {
                    wix_unreachable: quirk_flags & 1 != 0,
                    google_ce_anomaly: quirk_flags & 2 != 0,
                    extra_remark_probability: extra_remark,
                    remark_suppression_probability: remark_suppression,
                },
            },
            probe,
            trace_sample_probability,
            seed,
            delta: flags & 2 != 0,
        })
    }

    fn write_to(&self, dir: &Path) -> Result<(), StoreError> {
        write_atomically(&dir.join(META_FILE), &self.encode())
    }

    fn read_from(dir: &Path) -> Result<SnapshotMeta, StoreError> {
        let path = dir.join(META_FILE);
        let bytes = fs::read(&path)
            .map_err(|e| StoreError::State(format!("no snapshot at {}: {e}", dir.display())))?;
        SnapshotMeta::decode(&bytes)
            .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))
    }
}

fn write_complete_marker(dir: &Path, record_count: u64) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(24);
    bytes.extend_from_slice(COMPLETE_MAGIC);
    bytes.push(FORMAT_VERSION);
    write_varint(&mut bytes, record_count);
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    write_atomically(&dir.join(COMPLETE_FILE), &bytes)
}

fn read_complete_marker(dir: &Path) -> Result<Option<u64>, StoreError> {
    let path = dir.join(COMPLETE_FILE);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let (body, stored) = split_seal(&bytes)
        .map_err(|_| StoreError::Corrupt("COMPLETE marker truncated".to_string()))?;
    if stored != fnv1a(body) {
        return Err(StoreError::Corrupt(
            "COMPLETE marker checksum mismatch".to_string(),
        ));
    }
    let mut r = ByteReader::new(body);
    if r.bytes(COMPLETE_MAGIC.len())? != COMPLETE_MAGIC {
        return Err(StoreError::Corrupt("bad COMPLETE marker magic".to_string()));
    }
    let _version = r.u8()?;
    Ok(Some(r.varint()?))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// What a [`CampaignWriter`] has done so far, as plain counters.
///
/// All values are byte-exact properties of the written artifacts, so for a
/// fixed segment capacity they are as deterministic as the store itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Segment files flushed to disk.
    pub segments_written: u64,
    /// Total size of the flushed segment files, framing and checksums
    /// included.
    pub bytes_written: u64,
    /// Measurements flushed to disk (excluding any still buffered).
    pub records_written: u64,
    /// What the flushed measurements would occupy encoded one record per
    /// block — i.e. without sharing the per-segment dictionaries.  The
    /// ratio `bytes_written / raw_bytes` is the codec's true
    /// dictionary-compression win.
    pub raw_bytes: u64,
    /// Records found already persisted by [`CampaignWriter::resume`] and
    /// therefore never re-written.
    pub resume_skipped: u64,
}

impl WriterStats {
    /// The stats as a `store.*` metrics snapshot (for [`qem_obs::RunTelemetry`]).
    pub fn telemetry(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("store.segments_written", self.segments_written);
        snap.set_counter("store.bytes_written", self.bytes_written);
        snap.set_counter("store.records_written", self.records_written);
        snap.set_counter("store.raw_bytes", self.raw_bytes);
        snap.set_counter("store.resume_skipped", self.resume_skipped);
        if let Some(pct) = (self.bytes_written * 100).checked_div(self.raw_bytes) {
            snap.set_gauge("store.codec_ratio_pct", pct);
        }
        snap
    }
}

/// Streaming snapshot writer: measurements come in (in ascending host-id
/// order, which is what [`qem_core::Scanner::scan_hosts_streaming`]
/// delivers), segments go out.  At most one segment of measurements is held
/// in memory.
pub struct CampaignWriter {
    dir: PathBuf,
    buf: Vec<HostMeasurement>,
    segment_capacity: usize,
    next_segment: u32,
    appended: u64,
    last_host_id: Option<usize>,
    stats: WriterStats,
}

impl CampaignWriter {
    /// Start a new snapshot in `dir` (created if missing).  Fails if the
    /// directory already holds a snapshot — complete or partial; use
    /// [`CampaignWriter::resume`] for the latter.
    pub fn create(dir: &Path, meta: &SnapshotMeta) -> Result<CampaignWriter, StoreError> {
        fs::create_dir_all(dir)?;
        if dir.join(COMPLETE_FILE).exists() {
            return Err(StoreError::State(format!(
                "{} already holds a complete snapshot",
                dir.display()
            )));
        }
        if dir.join(META_FILE).exists() {
            return Err(StoreError::State(format!(
                "{} already holds a partial snapshot; resume it instead",
                dir.display()
            )));
        }
        meta.write_to(dir)?;
        Ok(CampaignWriter {
            dir: dir.to_path_buf(),
            buf: Vec::new(),
            segment_capacity: DEFAULT_SEGMENT_CAPACITY,
            next_segment: 0,
            appended: 0,
            last_host_id: None,
            stats: WriterStats::default(),
        })
    }

    /// Reopen an interrupted snapshot: validates the persisted prefix,
    /// removes `.tmp` orphans and returns the writer (positioned after the
    /// last complete segment) together with the metadata and the host ids
    /// already persisted.
    pub fn resume(dir: &Path) -> Result<(CampaignWriter, SnapshotMeta, Vec<usize>), StoreError> {
        let meta = SnapshotMeta::read_from(dir)?;
        if dir.join(COMPLETE_FILE).exists() {
            return Err(StoreError::State(format!(
                "{} is already complete; nothing to resume",
                dir.display()
            )));
        }
        remove_tmp_orphans(dir)?;
        let segments = list_segments(dir)?;
        let mut persisted = Vec::new();
        for path in &segments {
            for m in read_segment(path)? {
                persisted.push(m.host_id);
            }
        }
        let writer = CampaignWriter {
            dir: dir.to_path_buf(),
            buf: Vec::new(),
            segment_capacity: DEFAULT_SEGMENT_CAPACITY,
            next_segment: segments.len() as u32,
            appended: persisted.len() as u64,
            last_host_id: persisted.last().copied(),
            stats: WriterStats {
                resume_skipped: persisted.len() as u64,
                ..WriterStats::default()
            },
        };
        Ok((writer, meta, persisted))
    }

    /// Override the records-per-segment spill threshold.
    pub fn with_segment_capacity(mut self, capacity: usize) -> Self {
        self.segment_capacity = capacity.max(1);
        self
    }

    /// Number of measurements appended so far (including persisted ones
    /// found by [`CampaignWriter::resume`]).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// What this writer has done so far.
    pub fn stats(&self) -> WriterStats {
        self.stats
    }

    /// Append one measurement; spills a segment to disk when the buffer
    /// reaches the segment capacity.
    pub fn append(&mut self, m: HostMeasurement) -> Result<(), StoreError> {
        if let Some(last) = self.last_host_id {
            if m.host_id <= last {
                return Err(StoreError::State(format!(
                    "measurements must arrive in ascending host-id order (got {} after {})",
                    m.host_id, last
                )));
            }
        }
        self.last_host_id = Some(m.host_id);
        self.buf.push(m);
        self.appended += 1;
        if self.buf.len() >= self.segment_capacity {
            self.flush_segment()?;
        }
        Ok(())
    }

    fn flush_segment(&mut self) -> Result<(), StoreError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        // The codec baseline: what these records cost encoded one per block,
        // i.e. without amortising the per-segment dictionaries.
        for m in &self.buf {
            self.stats.raw_bytes += encode_block(std::slice::from_ref(m)).len() as u64;
        }
        let path = write_segment(&self.dir, self.next_segment, &self.buf)?;
        self.stats.segments_written += 1;
        self.stats.bytes_written += fs::metadata(&path)?.len();
        self.stats.records_written += self.buf.len() as u64;
        self.next_segment += 1;
        self.buf.clear();
        Ok(())
    }

    /// Flush the remaining buffer and seal the snapshot with its `COMPLETE`
    /// marker.  Dropping the writer without calling this leaves a valid,
    /// resumable prefix — that is the crash-consistency story, not an error.
    pub fn finish(self) -> Result<StoredSnapshot, StoreError> {
        Ok(self.finish_with_stats()?.0)
    }

    /// Like [`CampaignWriter::finish`], additionally returning the final
    /// [`WriterStats`] (which are consumed by sealing).
    pub fn finish_with_stats(mut self) -> Result<(StoredSnapshot, WriterStats), StoreError> {
        self.flush_segment()?;
        write_complete_marker(&self.dir, self.appended)?;
        Ok((StoredSnapshot::open_trusted(&self.dir)?, self.stats))
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// What [`StoredSnapshot::open_quarantining`] had to set aside: segments
/// whose FNV seal failed, with the corruption that condemned them.  The
/// quarantined segments are dropped from the read set, so a census over the
/// snapshot degrades to partial results instead of dying.
#[derive(Debug, Default)]
pub struct QuarantineReport {
    /// Quarantined segment paths, each with the error that condemned it.
    pub segments: Vec<(PathBuf, StoreError)>,
}

impl QuarantineReport {
    /// Whether every segment passed verification.
    pub fn is_clean(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of segments set aside.
    pub fn quarantined_segments(&self) -> u64 {
        self.segments.len() as u64
    }

    /// The quarantine outcome as `store.quarantine.*` counters for
    /// [`qem_obs::RunTelemetry`].  Empty when the store was clean, so the
    /// telemetry of healthy runs is unchanged.
    pub fn telemetry(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        if !self.segments.is_empty() {
            snap.set_counter("store.quarantine.segments", self.segments.len() as u64);
        }
        snap
    }
}

/// A snapshot directory opened for reading.
///
/// Implements [`SnapshotSource`], so every table and figure builder consumes
/// it directly — decoding one segment at a time, never the whole campaign.
#[derive(Debug)]
pub struct StoredSnapshot {
    dir: PathBuf,
    meta: SnapshotMeta,
    segments: Vec<PathBuf>,
    recorded_count: Option<u64>,
    /// Segments the tolerant [`SnapshotSource`] read path had to skip —
    /// a high-water mark across passes, seeded by
    /// [`StoredSnapshot::open_quarantining`].
    quarantined: AtomicU64,
}

impl StoredSnapshot {
    /// Open a **complete** snapshot, eagerly verifying every segment's FNV
    /// seal: corruption surfaces here as [`StoreError::Corrupt`] naming the
    /// bad file, not as a failure halfway through report generation.  Use
    /// [`StoredSnapshot::open_quarantining`] to degrade gracefully instead.
    pub fn open(dir: &Path) -> Result<StoredSnapshot, StoreError> {
        let snapshot = StoredSnapshot::open_trusted(dir)?;
        for path in &snapshot.segments {
            verify_segment(path)?;
        }
        Ok(snapshot)
    }

    /// [`StoredSnapshot::open`] without the eager per-segment verification —
    /// for the writer that just produced (and synced) every segment itself
    /// and would only be re-hashing its own output.
    pub(crate) fn open_trusted(dir: &Path) -> Result<StoredSnapshot, StoreError> {
        let snapshot = StoredSnapshot::open_partial(dir)?;
        if snapshot.recorded_count.is_none() {
            return Err(StoreError::State(format!(
                "{} holds an incomplete snapshot (no COMPLETE marker); resume the campaign first",
                dir.display()
            )));
        }
        Ok(snapshot)
    }

    /// Open a snapshot that may still be mid-campaign.
    pub fn open_partial(dir: &Path) -> Result<StoredSnapshot, StoreError> {
        let meta = SnapshotMeta::read_from(dir)?;
        let segments = list_segments(dir)?;
        let recorded_count = read_complete_marker(dir)?;
        Ok(StoredSnapshot {
            dir: dir.to_path_buf(),
            meta,
            segments,
            recorded_count,
            quarantined: AtomicU64::new(0),
        })
    }

    /// Open a snapshot tolerantly: verify every segment's seal and
    /// **quarantine** the corrupt ones — skip, count and report them — so
    /// downstream consumers see a partial but well-formed snapshot instead
    /// of an error or a panic.
    ///
    /// Quarantining invalidates the `COMPLETE` marker's record count (the
    /// missing records are exactly what was quarantined), so the returned
    /// snapshot reports itself as incomplete and counts hosts by streaming.
    pub fn open_quarantining(dir: &Path) -> Result<(StoredSnapshot, QuarantineReport), StoreError> {
        let mut snapshot = StoredSnapshot::open_partial(dir)?;
        let mut report = QuarantineReport::default();
        let mut kept = Vec::with_capacity(snapshot.segments.len());
        for path in std::mem::take(&mut snapshot.segments) {
            match verify_segment(&path) {
                Ok(()) => kept.push(path),
                Err(e) => report.segments.push((path, e)),
            }
        }
        snapshot.segments = kept;
        if !report.is_clean() {
            snapshot.recorded_count = None;
            snapshot
                .quarantined
                .store(report.quarantined_segments(), Ordering::Relaxed);
        }
        Ok((snapshot, report))
    }

    /// The snapshot identity.
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// Whether the `COMPLETE` marker is present.
    pub fn is_complete(&self) -> bool {
        self.recorded_count.is_some()
    }

    /// The record count sealed into the `COMPLETE` marker, if complete.
    pub fn recorded_host_count(&self) -> Option<u64> {
        self.recorded_count
    }

    /// Number of segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The [`qem_obs::RunTelemetry`] JSON written next to the segments by a
    /// store-backed campaign run, if any.  Purely informational — never part
    /// of the snapshot identity or the measurement data.
    pub fn telemetry_json(&self) -> Result<Option<String>, StoreError> {
        match fs::read_to_string(self.dir.join(TELEMETRY_FILE)) {
            Ok(json) => Ok(Some(json)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Stream every measurement, one segment in memory at a time.
    pub fn iter(&self) -> MeasurementIter<'_> {
        MeasurementIter {
            segments: &self.segments,
            next_segment: 0,
            current: Vec::new().into_iter(),
            failed: false,
        }
    }

    /// Segments the tolerant [`SnapshotSource`] read path has had to skip,
    /// seeded by what [`StoredSnapshot::open_quarantining`] set aside.  A
    /// nonzero value means reports built from this snapshot are partial.
    ///
    /// The counter is a high-water mark, not a sum: a census streams the
    /// store once per table, and one bad segment stays one bad segment.
    pub fn quarantined_segments(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// The current quarantine state as `store.quarantine.*` counters (empty
    /// while nothing was skipped, so clean runs' telemetry is unchanged).
    pub fn quarantine_telemetry(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let skipped = self.quarantined_segments();
        if skipped > 0 {
            snap.set_counter("store.quarantine.segments", skipped);
        }
        snap
    }

    /// Stream every readable measurement, skipping — and counting into the
    /// quarantine high-water mark — segments that fail their checksum.
    /// This is the degraded-mode backbone of the infallible
    /// [`SnapshotSource`] methods.
    fn read_tolerantly(&self, f: &mut dyn FnMut(&HostMeasurement)) {
        let mut skipped = 0u64;
        for path in &self.segments {
            match read_segment(path) {
                Ok(measurements) => {
                    for m in &measurements {
                        f(m);
                    }
                }
                Err(_) => skipped += 1,
            }
        }
        self.quarantined.fetch_max(skipped, Ordering::Relaxed);
    }

    /// The host ids persisted so far, in order.
    pub fn host_ids(&self) -> Result<Vec<usize>, StoreError> {
        let mut ids = Vec::new();
        for result in self.iter() {
            ids.push(result?.host_id);
        }
        Ok(ids)
    }

    /// Materialise the snapshot as an in-memory [`SnapshotMeasurement`].
    ///
    /// This is the convenience path for small universes and tests; the
    /// report builders do **not** need it — they consume the store directly
    /// through [`SnapshotSource`].
    pub fn to_snapshot(&self) -> Result<SnapshotMeasurement, StoreError> {
        let mut hosts = BTreeMap::new();
        for result in self.iter() {
            let m = result?;
            hosts.insert(m.host_id, m);
        }
        if let Some(recorded) = self.recorded_count {
            if recorded != hosts.len() as u64 {
                return Err(StoreError::Corrupt(format!(
                    "COMPLETE marker records {recorded} hosts but segments hold {}",
                    hosts.len()
                )));
            }
        }
        Ok(SnapshotMeasurement {
            date: self.meta.date,
            ipv6: self.meta.ipv6,
            vantage: self.meta.vantage.clone(),
            hosts,
        })
    }
}

impl SnapshotSource for StoredSnapshot {
    fn date(&self) -> SnapshotDate {
        self.meta.date
    }

    fn ipv6(&self) -> bool {
        self.meta.ipv6
    }

    fn vantage(&self) -> &VantagePoint {
        &self.meta.vantage
    }

    fn host_count(&self) -> usize {
        // The COMPLETE marker seals the exact record count — no need to
        // decode the segments just to count them.  Partial (or quarantined)
        // stores fall back to streaming, skipping unreadable segments the
        // same way `for_each_host` does.
        match self.recorded_count {
            Some(count) => count as usize,
            None => {
                let mut count = 0usize;
                self.read_tolerantly(&mut |_| count += 1);
                count
            }
        }
    }

    /// Streams from disk, skipping segments that fail their checksum.
    ///
    /// A skipped segment bumps [`StoredSnapshot::quarantined_segments`]
    /// instead of aborting the census; reports degrade to partial results.
    /// [`StoredSnapshot::open`] verifies eagerly, so skips here mean the
    /// file rotted (or was tampered with) after open.
    fn for_each_host(&self, f: &mut dyn FnMut(&HostMeasurement)) {
        self.read_tolerantly(f);
    }
}

/// Streaming iterator over a stored snapshot: segments are decoded lazily,
/// one at a time, in host-id order.
pub struct MeasurementIter<'a> {
    segments: &'a [PathBuf],
    next_segment: usize,
    current: std::vec::IntoIter<HostMeasurement>,
    failed: bool,
}

impl Iterator for MeasurementIter<'_> {
    type Item = Result<HostMeasurement, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(m) = self.current.next() {
                return Some(Ok(m));
            }
            let path = self.segments.get(self.next_segment)?;
            self.next_segment += 1;
            match read_segment(path) {
                Ok(measurements) => self.current = measurements.into_iter(),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;

    fn meta() -> SnapshotMeta {
        SnapshotMeta::for_campaign(
            &CampaignOptions::paper_default(),
            &VantagePoint::main(),
            false,
        )
    }

    fn measurement(host_id: usize) -> HostMeasurement {
        HostMeasurement {
            host_id,
            quic_reachable: host_id % 2 == 0,
            quic: None,
            tcp: None,
            trace: None,
        }
    }

    #[test]
    fn metadata_round_trips_including_quirky_vantages() {
        for vantage in VantagePoint::cloud_fleet() {
            let meta = SnapshotMeta {
                date: SnapshotDate::MAY_2023,
                ipv6: true,
                vantage,
                probe: ProbeMode::ForceCe,
                trace_sample_probability: 0.2,
                seed: 0x1299,
                delta: true,
            };
            let decoded = SnapshotMeta::decode(&meta.encode()).unwrap();
            assert_eq!(decoded, meta);
        }
    }

    #[test]
    fn write_then_read_round_trips_across_segments() {
        let dir = temp_dir("write-read");
        let mut writer = CampaignWriter::create(&dir, &meta())
            .unwrap()
            .with_segment_capacity(7);
        let hosts: Vec<HostMeasurement> = (0..23).map(measurement).collect();
        for m in &hosts {
            writer.append(m.clone()).unwrap();
        }
        let stored = writer.finish().unwrap();
        assert!(stored.is_complete());
        assert_eq!(stored.recorded_host_count(), Some(23));
        assert_eq!(stored.segment_count(), 4); // 7 + 7 + 7 + 2
        let read: Vec<HostMeasurement> = stored.iter().map(|r| r.unwrap()).collect();
        assert_eq!(read, hosts);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_stats_account_for_segments_bytes_and_the_codec_win() {
        let dir = temp_dir("stats");
        let mut writer = CampaignWriter::create(&dir, &meta())
            .unwrap()
            .with_segment_capacity(7);
        for id in 0..23 {
            writer.append(measurement(id)).unwrap();
        }
        let buffered = writer.stats();
        assert_eq!(buffered.segments_written, 3, "the tail is still buffered");
        assert_eq!(buffered.records_written, 21);
        let (stored, stats) = writer.finish_with_stats().unwrap();
        assert_eq!(stats.segments_written, 4);
        assert_eq!(stats.records_written, 23);
        assert_eq!(stats.resume_skipped, 0);
        let on_disk: u64 = (0..4)
            .map(|i| {
                fs::metadata(dir.join(crate::segment::segment_file_name(i)))
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(stats.bytes_written, on_disk);
        assert!(
            stats.raw_bytes > 0,
            "single-record baseline must be measured"
        );
        let telemetry = stats.telemetry();
        assert_eq!(telemetry.counter("store.records_written"), Some(23));
        assert_eq!(stored.telemetry_json().unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_dropped_writer_leaves_a_resumable_prefix() {
        let dir = temp_dir("resume");
        {
            let mut writer = CampaignWriter::create(&dir, &meta())
                .unwrap()
                .with_segment_capacity(5);
            for id in 0..12 {
                writer.append(measurement(id)).unwrap();
            }
            // Dropped without finish(): segments 0 and 1 (10 hosts) are on
            // disk, hosts 10 and 11 are lost with the buffer — exactly what
            // a kill -9 would leave.
        }
        let (mut writer, read_meta, persisted) = CampaignWriter::resume(&dir).unwrap();
        assert_eq!(read_meta, meta());
        assert_eq!(persisted, (0..10).collect::<Vec<_>>());
        for id in 10..15 {
            writer.append(measurement(id)).unwrap();
        }
        let stored = writer.finish().unwrap();
        assert_eq!(stored.host_ids().unwrap(), (0..15).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_appends_are_rejected() {
        let dir = temp_dir("order");
        let mut writer = CampaignWriter::create(&dir, &meta()).unwrap();
        writer.append(measurement(5)).unwrap();
        assert!(matches!(
            writer.append(measurement(5)),
            Err(StoreError::State(_))
        ));
        assert!(matches!(
            writer.append(measurement(3)),
            Err(StoreError::State(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_refuses_incomplete_and_create_refuses_existing() {
        let dir = temp_dir("states");
        let mut writer = CampaignWriter::create(&dir, &meta())
            .unwrap()
            .with_segment_capacity(2);
        writer.append(measurement(0)).unwrap();
        writer.append(measurement(1)).unwrap();
        drop(writer);
        assert!(matches!(
            StoredSnapshot::open(&dir),
            Err(StoreError::State(_))
        ));
        assert!(StoredSnapshot::open_partial(&dir).is_ok());
        assert!(matches!(
            CampaignWriter::create(&dir, &meta()),
            Err(StoreError::State(_))
        ));
        let (writer, _, _) = CampaignWriter::resume(&dir).unwrap();
        let stored = writer.finish().unwrap();
        assert!(stored.is_complete());
        assert!(matches!(
            CampaignWriter::resume(&dir),
            Err(StoreError::State(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
