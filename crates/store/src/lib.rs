//! `qem-store` — the columnar, append-only scan-result store.
//!
//! Campaigns at paper scale measure hundreds of millions of domains; holding
//! a snapshot in RAM caps how far the pipeline scales.  This crate gives
//! measurements a persistent home with three properties:
//!
//! * **Streaming ingest** — [`CampaignWriter`] receives measurements from
//!   the sharded scanner *while the scan runs* (in ascending host-id order,
//!   over the executor's bounded channel) and spills them to checksummed,
//!   atomically-renamed segment files.  Peak memory is one segment, not one
//!   campaign.
//! * **Kill-and-resume** — a campaign killed mid-scan leaves a valid prefix;
//!   [`CampaignStoreExt::resume_snapshot_to_store`] skips the persisted
//!   hosts and measures only the rest.  Per-host RNG derivation makes the
//!   result bit-identical to an uninterrupted run.
//! * **Delta-encoded longitudinal series** — monthly snapshots store only
//!   the hosts whose measurement changed ([`LongitudinalWriter`]), turning
//!   `O(dates × hosts)` storage into `O(hosts + changed)`.
//!
//! Reports never need the data back in memory: [`StoredSnapshot`] implements
//! [`qem_core::source::SnapshotSource`], so every Table 1–7 / Figure 3–8
//! builder consumes a store directory directly — byte-identical to the
//! in-memory path, which `tests/scan_determinism.rs` enforces.
//!
//! The on-disk format is a hand-rolled binary codec (LEB128 varints, packed
//! flag bytes, per-segment string/ASN dictionaries) with zero dependencies —
//! see [`codec`] for the layout and [`segment`] for the framing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod codec;
pub mod longitudinal;
pub mod segment;
pub mod store;
pub mod wire;

pub use campaign::{scan_into, CampaignStoreExt, ResumeOutcome};
pub use codec::FORMAT_VERSION;
pub use longitudinal::{LongitudinalStore, LongitudinalWriter};
pub use store::{
    CampaignWriter, MeasurementIter, QuarantineReport, SnapshotMeta, StoredSnapshot, WriterStats,
    TELEMETRY_FILE,
};

use std::fmt;

/// Errors of the store layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file exists but its contents are invalid (bad magic, failed
    /// checksum, malformed records).
    Corrupt(String),
    /// The store contents do not fit the requested operation (wrong
    /// universe, incompatible options).
    Mismatch(String),
    /// The store is in the wrong lifecycle state for the operation
    /// (already complete, still partial, out-of-order writes).
    State(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::Mismatch(msg) => write!(f, "store mismatch: {msg}"),
            StoreError::State(msg) => write!(f, "store state error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared test plumbing for the store's filesystem-touching tests.

    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A fresh, unique, created temp directory for one test.
    pub(crate) fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qem-store-test-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
