//! Bounded ring-buffer trace recorder.
//!
//! Long scenarios produce unbounded event streams; a [`TraceRing`] keeps
//! the most recent `capacity` entries and counts what it evicted, so the
//! recorder's memory is fixed while the *information that something was
//! dropped* is preserved deterministically.  `qem_netsim::Engine` records
//! its `FlowWake` log through one of these — entries carry virtual-time
//! (`SimInstant`) stamps, so two identical runs produce identical rings
//! and traces can be pinned by golden tests.

/// A fixed-capacity ring that keeps the newest entries.
#[derive(Debug, Clone)]
pub struct TraceRing<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index in `buf` of the oldest retained entry.
    head: usize,
    dropped: u64,
}

impl<T> TraceRing<T> {
    /// A ring retaining at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> TraceRing<T> {
        let capacity = capacity.max(1);
        TraceRing {
            buf: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Append `item`, evicting the oldest entry when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total number of entries ever pushed (retained + evicted).
    pub fn recorded(&self) -> u64 {
        self.dropped + self.buf.len() as u64
    }

    /// Iterate oldest → newest over the retained entries.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, front) = self.buf.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// The retained entries oldest → newest, as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_below_capacity() {
        let mut ring = TraceRing::new(8);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.to_vec(), vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.recorded(), 5);
    }

    #[test]
    fn evicts_oldest_first_when_full() {
        let mut ring = TraceRing::new(3);
        for i in 0..7 {
            ring.push(i);
        }
        assert_eq!(ring.to_vec(), vec![4, 5, 6]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.recorded(), 7);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let mut ring = TraceRing::new(0);
        ring.push('a');
        ring.push('b');
        assert_eq!(ring.to_vec(), vec!['b']);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn iter_matches_to_vec_at_every_fill_level() {
        let mut ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(i);
            let via_iter: Vec<i32> = ring.iter().copied().collect();
            assert_eq!(via_iter, ring.to_vec());
            // Entries stay in push order.
            assert!(via_iter.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
