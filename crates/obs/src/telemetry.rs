//! Per-run telemetry summaries.
//!
//! A [`RunTelemetry`] bundles the deterministic metric sections of one
//! campaign run (e.g. `scan.v4`, `scan.v6`, `store`) together with a small
//! string info block (date, probe codepoint, seed).  Its JSON export is
//! byte-identical across worker counts and repeat runs, so it can sit next
//! to census output under CI's determinism byte-diff and be written into a
//! qem-store snapshot directory.

use crate::json;
use crate::registry::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt;

/// Deterministic summary of one campaign run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunTelemetry {
    /// Free-form run identification (date, probe, seed …), name-ordered.
    /// Must not contain wall-clock readings.
    pub info: BTreeMap<String, String>,
    /// Named metric sections, name-ordered.
    pub sections: BTreeMap<String, MetricsSnapshot>,
}

impl RunTelemetry {
    /// An empty summary.
    pub fn new() -> RunTelemetry {
        RunTelemetry::default()
    }

    /// Set info entry `key` to `value`.
    pub fn set_info(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.info.insert(key.into(), value.into());
    }

    /// Insert (or replace) metric section `name`.
    pub fn insert_section(&mut self, name: impl Into<String>, snapshot: MetricsSnapshot) {
        self.sections.insert(name.into(), snapshot);
    }

    /// The info entry `key`, if present.
    pub fn info(&self, key: &str) -> Option<&str> {
        self.info.get(key).map(String::as_str)
    }

    /// The section `name`, if present.
    pub fn section(&self, name: &str) -> Option<&MetricsSnapshot> {
        self.sections.get(name)
    }

    /// Deterministic JSON document:
    ///
    /// ```json
    /// {
    ///   "info": {"date": "2023-04", …},
    ///   "sections": {"scan.v4": {…}, …}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        json::open_object(&mut out, false);

        json::key(&mut out, 1, "info", true);
        json::open_object(&mut out, self.info.is_empty());
        for (i, (k, v)) in self.info.iter().enumerate() {
            json::key(&mut out, 2, k, i == 0);
            json::push_string(&mut out, v);
        }
        json::close_object(&mut out, 1, self.info.is_empty());

        json::key(&mut out, 1, "sections", false);
        json::open_object(&mut out, self.sections.is_empty());
        for (i, (name, snapshot)) in self.sections.iter().enumerate() {
            json::key(&mut out, 2, name, i == 0);
            snapshot.write_json(&mut out, 2);
        }
        json::close_object(&mut out, 1, self.sections.is_empty());

        json::close_object(&mut out, 0, false);
        out.push('\n');
        out
    }
}

impl fmt::Display for RunTelemetry {
    /// Plain-text rendering: info lines, then each section's metrics.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.info {
            writeln!(f, "# {k}: {v}")?;
        }
        for (name, snapshot) in &self.sections {
            writeln!(f, "[{name}]")?;
            write!(f, "{snapshot}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunTelemetry {
        let mut t = RunTelemetry::new();
        t.set_info("date", "2023-04");
        t.set_info("seed", "0x1299");
        let mut scan = MetricsSnapshot::new();
        scan.set_counter("scan.hosts", 12);
        t.insert_section("scan.v4", scan);
        t
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        let t = sample();
        assert_eq!(t.to_json(), sample().to_json());
        assert_eq!(
            t.to_json(),
            "{\n  \"info\": {\n    \"date\": \"2023-04\",\n    \"seed\": \"0x1299\"\n  },\n  \"sections\": {\n    \"scan.v4\": {\n      \"scan.hosts\": {\"type\": \"counter\", \"value\": 12}\n    }\n  }\n}\n"
        );
    }

    #[test]
    fn empty_summary_still_renders_both_blocks() {
        let t = RunTelemetry::new();
        assert_eq!(t.to_json(), "{\n  \"info\": {},\n  \"sections\": {}\n}\n");
    }

    #[test]
    fn display_lists_info_then_sections() {
        let text = sample().to_string();
        assert!(text.starts_with("# date: 2023-04\n"));
        assert!(text.contains("[scan.v4]\nscan.hosts = 12\n"));
    }
}
