//! A tiny deterministic JSON writer.
//!
//! The workspace's vendored serde stand-in has no `serde_json`, and pulling
//! one in would violate the offline-vendoring policy — so telemetry exports
//! are written by hand.  The writer produces a fixed layout (two-space
//! indentation, keys in the caller's iteration order, `", "` separators in
//! inline arrays) so equal inputs serialize to byte-identical documents,
//! which is what the CI determinism gate diffs.

/// Append `s` as a JSON string literal (quotes included).
pub(crate) fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `indent` levels of two-space indentation.
pub(crate) fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Open a `{`; empty objects render as `{}` with no newline.
pub(crate) fn open_object(out: &mut String, empty: bool) {
    out.push('{');
    if !empty {
        out.push('\n');
    }
}

/// Close a `}` at `indent` levels.
pub(crate) fn close_object(out: &mut String, indent: usize, empty: bool) {
    if !empty {
        out.push('\n');
        push_indent(out, indent);
    }
    out.push('}');
}

/// Write the separator-plus-key prefix for an object member at `indent`
/// levels: `[,\n]<indent>"key": `.
pub(crate) fn key(out: &mut String, indent: usize, name: &str, first: bool) {
    if !first {
        out.push_str(",\n");
    }
    push_indent(out, indent);
    push_string(out, name);
    out.push_str(": ");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        let mut out = String::new();
        push_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn object_layout_is_fixed() {
        let mut out = String::new();
        open_object(&mut out, false);
        key(&mut out, 1, "k", true);
        out.push('1');
        key(&mut out, 1, "l", false);
        out.push('2');
        close_object(&mut out, 0, false);
        assert_eq!(out, "{\n  \"k\": 1,\n  \"l\": 2\n}");
    }
}
