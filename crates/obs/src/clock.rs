//! The single wall-clock seam of the workspace.
//!
//! Deterministic snapshots must never contain wall-clock readings, but an
//! operator watching a census still wants hosts/sec.  The compromise: all
//! wall-clock access goes through the [`Clock`] trait, whose only real
//! implementation ([`WallClock`]) lives in this module.  `lint.toml` lists
//! this file as the sole `no-wall-clock` allow-zone inside `crates/obs` —
//! a `std::time` mention anywhere else in the crate fails `qem-lint check`
//! (proven by a fixture test in `crates/lint/tests/fixtures.rs`).
//!
//! Rates derived from a [`Clock`] are operator output (stderr, progress
//! bars); they must never be written into a [`crate::MetricsSnapshot`] or
//! [`crate::RunTelemetry`], which CI byte-diffs across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait Clock {
    /// Microseconds elapsed since an arbitrary (per-clock) origin.
    fn now_micros(&self) -> u64;
}

/// The real wall clock, anchored at construction time.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A hand-cranked clock for tests and simulations.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_micros`.
    pub fn new(start_micros: u64) -> ManualClock {
        ManualClock {
            now: AtomicU64::new(start_micros),
        }
    }

    /// Advance the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::Relaxed);
    }

    /// Jump the clock to `micros`.
    pub fn set(&self, micros: u64) {
        self.now.store(micros, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Measures an items-per-second rate against an injected [`Clock`].
#[derive(Debug, Clone, Copy)]
pub struct RateMeter {
    start_micros: u64,
}

impl RateMeter {
    /// Start measuring at `clock`'s current reading.
    pub fn start(clock: &dyn Clock) -> RateMeter {
        RateMeter {
            start_micros: clock.now_micros(),
        }
    }

    /// Microseconds elapsed since [`RateMeter::start`] (at least 1, so
    /// rates never divide by zero).
    pub fn elapsed_micros(&self, clock: &dyn Clock) -> u64 {
        clock.now_micros().saturating_sub(self.start_micros).max(1)
    }

    /// `items` per second since the meter started.
    pub fn per_second(&self, clock: &dyn Clock, items: u64) -> f64 {
        items as f64 * 1_000_000.0 / self.elapsed_micros(clock) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_drives_rates_exactly() {
        let clock = ManualClock::new(0);
        let meter = RateMeter::start(&clock);
        clock.advance(2_000_000); // 2 s
        assert_eq!(meter.elapsed_micros(&clock), 2_000_000);
        assert!((meter.per_second(&clock, 500) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_never_divides_by_zero() {
        let clock = ManualClock::new(42);
        let meter = RateMeter::start(&clock);
        assert_eq!(meter.elapsed_micros(&clock), 1);
        assert!(meter.per_second(&clock, 10).is_finite());
    }

    #[test]
    fn wall_clock_is_monotone_from_its_origin() {
        let clock = WallClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }
}
