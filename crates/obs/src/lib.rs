//! Deterministic observability for the qem workspace.
//!
//! Everything in this crate is designed around the workspace's central
//! invariant: **a scan is a pure function of (universe, options minus
//! workers)**.  Metrics must therefore never become a side channel that
//! re-introduces nondeterminism into outputs:
//!
//! * every metric value is a `u64` and every merge operation is
//!   commutative and associative (counters add, gauges take the max,
//!   histograms add per-bucket counts), so a [`MetricsSnapshot`] is
//!   bit-identical no matter how work was interleaved across workers;
//! * registries store their metrics in `BTreeMap`s, so snapshots,
//!   renderings and JSON exports enumerate in one deterministic order;
//! * per-worker shards ([`ShardedRegistry`]) are merged in worker-id
//!   order;
//! * traces ([`TraceRing`]) are bounded rings of events timestamped in
//!   **virtual time** (`SimInstant` microseconds), so engine traces are
//!   golden-testable;
//! * the **only** wall-clock touchpoint is the [`Clock`] seam in
//!   [`clock`], whose real implementation ([`WallClock`]) is confined to
//!   that one module by `lint.toml`'s `no-wall-clock` zone exception.
//!   Wall-clock derived rates (hosts/sec) are operator output and must
//!   never be written into a deterministic snapshot.
//!
//! The crate is dependency-free (std only) so every other workspace crate
//! — including `qem-netsim`, which sits at the bottom of the graph — can
//! depend on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod json;
pub mod registry;
pub mod telemetry;
pub mod trace;

pub use clock::{Clock, ManualClock, RateMeter, WallClock};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot,
    ShardedRegistry,
};
pub use telemetry::RunTelemetry;
pub use trace::TraceRing;
