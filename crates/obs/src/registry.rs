//! Metric registries whose snapshots are bit-identical across runs and
//! worker counts.
//!
//! Three metric kinds, all `u64`-valued so merges stay exact:
//!
//! | kind        | record op            | merge op              |
//! |-------------|----------------------|-----------------------|
//! | [`Counter`] | `add(n)`             | sum                   |
//! | [`Gauge`]   | `record_max(v)`      | max                   |
//! | [`Histogram`] | `record(v)`        | per-bucket count sums |
//!
//! Because every merge is commutative and associative, the merged value is
//! independent of scheduling: it does not matter which worker incremented
//! first or how hosts were batched.  Anything that is *not* schedule
//! independent (batch counts, queue depths) must be kept out of
//! deterministic snapshots and reported as scheduling noise instead — see
//! `qem_core::executor::ExecutorStats`.
//!
//! Registration takes a `Mutex` once per metric name; the returned handles
//! record lock-free via relaxed atomics, which is all the ordering needed
//! because snapshots are taken after worker threads have been joined.

use crate::json;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Log-linear histogram geometry
// ---------------------------------------------------------------------------

/// Sub-buckets per power-of-two octave (2 bits of mantissa).
const SUB_BUCKETS: u64 = 4;

/// Total bucket count covering the full `u64` range: 4 linear buckets for
/// values 0–3, then 4 sub-buckets for each of the 62 remaining octaves.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Index of the log-linear bucket recording `value`.
///
/// Values 0–3 get exact buckets; beyond that each power-of-two octave is
/// split into [`SUB_BUCKETS`] equal slices, giving a worst-case relative
/// error of 25% — plenty for queue depths, packet counts and microsecond
/// latencies.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize;
    let top = (value >> (msb - 2)) as usize; // 4..8: leading bit + 2 mantissa bits
    (msb - 2) * SUB_BUCKETS as usize + top
}

/// Smallest value that lands in bucket `index` (the inverse of
/// [`bucket_index`]); used when rendering snapshots.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let k = (index - SUB_BUCKETS as usize) as u64;
    (SUB_BUCKETS + k % SUB_BUCKETS) << (k / SUB_BUCKETS)
}

// ---------------------------------------------------------------------------
// Slots (shared storage behind the cloneable handles)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ValueSlot(AtomicU64);

#[derive(Debug)]
struct HistogramSlot {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for HistogramSlot {
    fn default() -> Self {
        HistogramSlot {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A monotonically increasing count.  Merge = sum.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    slot: Arc<ValueSlot>,
}

impl Counter {
    /// A counter not attached to any registry (embed it in a struct and
    /// export it by hand with [`MetricsSnapshot::set_counter`]).
    pub fn standalone() -> Counter {
        Counter::default()
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.slot.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.slot.0.load(Ordering::Relaxed)
    }
}

/// A high-water mark.  `record_max` keeps the largest observed value, which
/// makes the merge (max) commutative — the deterministic counterpart of a
/// "current value" gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    slot: Arc<ValueSlot>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn standalone() -> Gauge {
        Gauge::default()
    }

    /// Raise the gauge to `v` if `v` is larger than the current value.
    pub fn record_max(&self, v: u64) {
        self.slot.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.slot.0.load(Ordering::Relaxed)
    }
}

/// A log-linear histogram of `u64` samples (see [`bucket_index`] for the
/// geometry).  Merge = per-bucket count sums.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    slot: Arc<HistogramSlot>,
}

impl Histogram {
    /// A histogram not attached to any registry (e.g. the per-router
    /// occupancy histogram embedded in `qem_netsim`'s `QueueState`).
    pub fn standalone() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.slot.count.fetch_add(1, Ordering::Relaxed);
        self.slot.sum.fetch_add(value, Ordering::Relaxed);
        self.slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.slot.count.load(Ordering::Relaxed)
    }

    /// Immutable snapshot of the current bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .slot
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.slot.count.load(Ordering::Relaxed),
            sum: self.slot.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum AnySlot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics.  Handles are registered once under a
/// `Mutex` and then record lock-free; [`MetricsRegistry::snapshot`]
/// enumerates them in `BTreeMap` (i.e. name) order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, AnySlot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, AnySlot>> {
        // A poisoned registration map only means another thread panicked
        // mid-insert; the map itself (name -> Arc handle) is still valid.
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.lock();
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| AnySlot::Counter(Counter::standalone()))
        {
            AnySlot::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.lock();
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| AnySlot::Gauge(Gauge::standalone()))
        {
            AnySlot::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut slots = self.lock();
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| AnySlot::Histogram(Histogram::standalone()))
        {
            AnySlot::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Snapshot every registered metric, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.lock();
        let metrics = slots
            .iter()
            .map(|(name, slot)| {
                let value = match slot {
                    AnySlot::Counter(c) => MetricValue::Counter(c.get()),
                    AnySlot::Gauge(g) => MetricValue::Gauge(g.get()),
                    AnySlot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { metrics }
    }
}

/// One registry per worker, merged in worker-id order.
///
/// Sharding keeps hot-path increments off shared cache lines; because every
/// merge is commutative the merged snapshot is nevertheless independent of
/// which shard recorded what.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<MetricsRegistry>,
}

impl ShardedRegistry {
    /// A registry with `shards` independent shards (at least one).
    pub fn new(shards: usize) -> ShardedRegistry {
        ShardedRegistry {
            shards: (0..shards.max(1)).map(|_| MetricsRegistry::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false — there is at least one shard.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The registry of shard `worker` (indices wrap, so a caller may pass a
    /// raw worker id without bounds bookkeeping).
    pub fn shard(&self, worker: usize) -> &MetricsRegistry {
        &self.shards[worker % self.shards.len()]
    }

    /// Merge every shard's snapshot, in worker-id order.
    pub fn merged(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for shard in &self.shards {
            out.merge_from(&shard.snapshot());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// The frozen value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A summed count.
    Counter(u64),
    /// A high-water mark.
    Gauge(u64),
    /// Frozen histogram buckets.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram contents: only non-empty buckets are kept, as
/// `(bucket lower bound, sample count)` pairs in ascending bound order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples (exact, unlike the bucketed distribution).
    pub sum: u64,
    /// `(lower bound, count)` per non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Merge `other` into `self` by summing per-bucket counts.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(bound, n) in &other.buckets {
            *merged.entry(bound).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// Mean sample value, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Lower bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`; nearest-rank over the bucketed distribution,
    /// 0 when empty).
    ///
    /// Workload reports use this for frame-lateness percentiles; the
    /// log-linear buckets bound the answer's relative error at 25 % —
    /// see [`bucket_index`] — which is plenty for a latency table.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        self.buckets.last().map(|&(bound, _)| bound).unwrap_or(0)
    }
}

/// A deterministic, order-stable snapshot of many metrics.
///
/// Snapshots can be taken from a [`MetricsRegistry`], built by hand with
/// the `set_*` methods (the single-threaded engine does this), merged with
/// [`MetricsSnapshot::merge_from`], compared bit-for-bit with `==`, and
/// exported with [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Metric name → frozen value, in name order.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Set counter `name` to `v` (overwrites).
    pub fn set_counter(&mut self, name: impl Into<String>, v: u64) {
        self.metrics.insert(name.into(), MetricValue::Counter(v));
    }

    /// Set gauge `name` to `v` (overwrites).
    pub fn set_gauge(&mut self, name: impl Into<String>, v: u64) {
        self.metrics.insert(name.into(), MetricValue::Gauge(v));
    }

    /// Set histogram `name` to `h` (overwrites).
    pub fn set_histogram(&mut self, name: impl Into<String>, h: HistogramSnapshot) {
        self.metrics.insert(name.into(), MetricValue::Histogram(h));
    }

    /// Value of counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Value of gauge `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Merge `other` into `self`: counters add, gauges take the max,
    /// histograms merge per bucket.  Metrics only present in `other` are
    /// copied over.
    ///
    /// # Panics
    /// If the same name carries different metric kinds in the two
    /// snapshots — that is a naming bug, not a runtime condition.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (name, theirs) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
                Some(mine) => match (mine, theirs) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge_from(b),
                    (mine, theirs) => {
                        panic!("metric {name:?} kind mismatch: {mine:?} vs {theirs:?}")
                    }
                },
            }
        }
    }

    /// Prefix every metric name with `prefix` (e.g. `"engine."`).
    pub fn prefixed(self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .into_iter()
                .map(|(name, v)| (format!("{prefix}{name}"), v))
                .collect(),
        }
    }

    /// Deterministic JSON object: `{"name": {"type": …, …}, …}` with keys
    /// in name order and two-space indentation.  Byte-identical for equal
    /// snapshots; see [`crate::json`] for the writer.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out
    }

    pub(crate) fn write_json(&self, out: &mut String, indent: usize) {
        json::open_object(out, self.metrics.is_empty());
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            json::key(out, indent + 1, name, i == 0);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{{\"type\": \"counter\", \"value\": {v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{{\"type\": \"gauge\", \"value\": {v}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                        h.count, h.sum
                    ));
                    for (j, (bound, n)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{bound}, {n}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        json::close_object(out, indent, self.metrics.is_empty());
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Plain-text rendering, one `name = value` line per metric.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => writeln!(f, "{name} = {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "{name} = {v} (peak)")?,
                MetricValue::Histogram(h) => writeln!(
                    f,
                    "{name} = {{count: {}, sum: {}, mean: {}}}",
                    h.count,
                    h.sum,
                    h.mean()
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn bucket_geometry_round_trips() {
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1023, 1024, u64::MAX] {
            let idx = bucket_index(v);
            let lo = bucket_lower_bound(idx);
            assert!(lo <= v, "lower bound {lo} above sample {v}");
            if idx + 1 < HISTOGRAM_BUCKETS {
                let hi = bucket_lower_bound(idx + 1);
                assert!(v < hi, "sample {v} not below next bound {hi}");
            }
            assert!(idx < HISTOGRAM_BUCKETS);
        }
        // Bounds are strictly increasing — no bucket is unreachable.
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_lower_bound(i) > bucket_lower_bound(i - 1));
        }
    }

    #[test]
    fn registry_snapshot_is_name_ordered_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(3);
        reg.counter("a.first").inc();
        reg.gauge("m.peak").record_max(7);
        reg.gauge("m.peak").record_max(5); // lower: ignored
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "m.peak", "z.last"]);
        assert_eq!(snap.counter("z.last"), Some(3));
        assert_eq!(snap.gauge("m.peak"), Some(7));
        assert_eq!(snap, reg.snapshot());
    }

    #[test]
    fn sharded_merge_is_schedule_independent() {
        // Record the same multiset of events under two different
        // shard assignments; the merged snapshots must be identical.
        let record = |assign: &dyn Fn(u64) -> usize| {
            let shards = ShardedRegistry::new(4);
            for i in 0..100u64 {
                let reg = shards.shard(assign(i));
                reg.counter("events").inc();
                reg.gauge("peak").record_max(i);
                reg.histogram("size").record(i * 17 % 1000);
            }
            shards.merged()
        };
        let round_robin = record(&|i| (i % 4) as usize);
        let skewed = record(&|i| usize::from(i > 90));
        assert_eq!(round_robin, skewed);
        assert_eq!(round_robin.to_json(), skewed.to_json());
        assert_eq!(round_robin.counter("events"), Some(100));
    }

    #[test]
    fn concurrent_recording_merges_deterministically() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let h = reg.histogram("v");
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= 1000 {
                        break;
                    }
                    c.inc();
                    h.record(i as u64);
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("n"), Some(1000));
        assert_eq!(snap.histogram("v").unwrap().count, 1000);
        assert_eq!(snap.histogram("v").unwrap().sum, 999 * 1000 / 2);
    }

    #[test]
    fn merge_and_prefix_compose() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("x", 1);
        a.set_gauge("g", 10);
        let mut b = MetricsSnapshot::new();
        b.set_counter("x", 2);
        b.set_gauge("g", 4);
        b.set_histogram(
            "d",
            HistogramSnapshot {
                count: 1,
                sum: 5,
                buckets: vec![(5, 1)],
            },
        );
        a.merge_from(&b);
        assert_eq!(a.counter("x"), Some(3));
        assert_eq!(a.gauge("g"), Some(10));
        assert_eq!(a.histogram("d").unwrap().count, 1);
        let p = a.prefixed("s.");
        assert_eq!(p.counter("s.x"), Some(3));
    }

    #[test]
    fn quantile_walks_the_bucketed_distribution() {
        let h = Histogram::standalone();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), bucket_lower_bound(bucket_index(1)));
        // Bucket bounds are exact only up to the log-linear resolution:
        // the answer must bracket the true percentile within one bucket.
        let p50 = snap.quantile(0.5);
        assert!((32..=64).contains(&p50), "p50 bucket bound was {p50}");
        let p99 = snap.quantile(0.99);
        assert!(p99 >= 80, "p99 bucket bound was {p99}");
        assert!(snap.quantile(1.0) >= p99);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("a", 1);
        snap.set_histogram(
            "b",
            HistogramSnapshot {
                count: 2,
                sum: 9,
                buckets: vec![(4, 2)],
            },
        );
        assert_eq!(
            snap.to_json(),
            "{\n  \"a\": {\"type\": \"counter\", \"value\": 1},\n  \"b\": {\"type\": \"histogram\", \"count\": 2, \"sum\": 9, \"buckets\": [[4, 2]]}\n}"
        );
    }
}
