//! Deterministic workload reports: per-variant outcomes and the
//! cross-variant comparison tables the `netbench` example prints.
//!
//! Everything in here is integer arithmetic over `µs` and `kbit/s` values —
//! no floating-point formatting — so a rendered report is byte-identical
//! across machines, worker counts and scheduler implementations, and can be
//! pinned by a golden snapshot.

use crate::apps::jitter_us;
use crate::scenario::{EcnVariant, Transport};
use qem_netsim::QueueStats;
use qem_obs::MetricsSnapshot;
use std::fmt;

/// Exact nearest-rank percentile over an unsorted sample set (the sample is
/// sorted internally; ties keep their value).  Used for the small per-flow
/// tables; the bucketed [`qem_obs`] histograms serve the metrics snapshot.
pub fn percentile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Render a µs quantity as fixed-point milliseconds with one decimal.
fn ms1(us: u64) -> String {
    format!("{}.{}", us / 1_000, (us % 1_000) / 100)
}

/// Outcome of one `BulkTransfer` app under one variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkOutcome {
    /// Which transport carried the object.
    pub transport: Transport,
    /// Object size in bytes (same for every connection of the app).
    pub object_size: u64,
    /// Per-connection goodput in kbit/s, in registration order.
    pub goodput_kbps: Vec<u64>,
    /// Per-connection flow-completion time in µs, in registration order.
    pub fct_us: Vec<u64>,
    /// Total retransmitted packets across the app's connections.
    pub retransmits: u64,
    /// Total ACKs carrying a CE mark across the app's connections.
    pub ce_acks: u64,
    /// Total retransmission timeouts across the app's connections.
    pub timeouts: u64,
}

/// Outcome of one `RtcStream` app under one variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtcOutcome {
    /// Frames fully delivered.
    pub frames_delivered: u64,
    /// Frames that lost at least one packet.
    pub frames_lost: u64,
    /// Delivered frames that arrived with a CE mark.
    pub ce_frames: u64,
    /// Per-frame delivery lateness in µs, in completion order.
    pub lateness_us: Vec<u64>,
    /// Mean absolute consecutive lateness difference, µs.
    pub jitter_us: u64,
}

impl RtcOutcome {
    /// Build an outcome from raw per-frame lateness samples.
    pub fn from_samples(
        frames_delivered: u64,
        frames_lost: u64,
        ce_frames: u64,
        lateness_us: Vec<u64>,
    ) -> Self {
        let jitter = jitter_us(&lateness_us);
        RtcOutcome {
            frames_delivered,
            frames_lost,
            ce_frames,
            lateness_us,
            jitter_us: jitter,
        }
    }
}

/// Outcome of one `Load` app under one variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Packets the fleet sent.
    pub sent: u64,
    /// Packets that survived the bottleneck.
    pub delivered: u64,
}

/// Everything one scenario run under one ECN variant produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// The variant this report describes.
    pub variant: EcnVariant,
    /// One outcome per `BulkTransfer` app, in scenario order.
    pub bulk: Vec<BulkOutcome>,
    /// One outcome per `RtcStream` app, in scenario order.
    pub rtc: Vec<RtcOutcome>,
    /// One outcome per `Load` app, in scenario order.
    pub load: Vec<LoadOutcome>,
    /// Counters of the shared bottleneck queue.
    pub queue: QueueStats,
    /// Engine telemetry plus workload histograms (`workload.*` keys).
    pub metrics: MetricsSnapshot,
}

impl WorkloadReport {
    /// All bulk goodput samples of the report (every connection of every
    /// bulk app), for CDF rows.
    pub fn goodput_samples(&self) -> Vec<u64> {
        self.bulk
            .iter()
            .flat_map(|b| b.goodput_kbps.iter().copied())
            .collect()
    }

    /// All flow-completion-time samples of the report, µs.
    pub fn fct_samples(&self) -> Vec<u64> {
        self.bulk
            .iter()
            .flat_map(|b| b.fct_us.iter().copied())
            .collect()
    }

    /// All RTC lateness samples of the report, µs.
    pub fn lateness_samples(&self) -> Vec<u64> {
        self.rtc
            .iter()
            .flat_map(|r| r.lateness_us.iter().copied())
            .collect()
    }
}

/// The cross-variant comparison of one scenario: the deliverable of a
/// workload run, rendered as report sections in the style of the campaign
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadComparison {
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// One report per variant, in [`EcnVariant::ALL`] order.
    pub reports: Vec<WorkloadReport>,
}

impl fmt::Display for WorkloadComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== workload: {} (seed {}) ==", self.scenario, self.seed)?;

        writeln!(f)?;
        writeln!(f, "-- bulk goodput CDF (kbit/s across connections) --")?;
        writeln!(
            f,
            "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "variant", "p10", "p25", "p50", "p75", "p90", "max"
        )?;
        for report in &self.reports {
            let samples = report.goodput_samples();
            writeln!(
                f,
                "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                report.variant.label(),
                percentile(&samples, 0.10),
                percentile(&samples, 0.25),
                percentile(&samples, 0.50),
                percentile(&samples, 0.75),
                percentile(&samples, 0.90),
                samples.iter().max().copied().unwrap_or(0),
            )?;
        }

        writeln!(f)?;
        writeln!(f, "-- bulk flow completion (ms) and congestion signals --")?;
        writeln!(
            f,
            "{:<14} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
            "variant", "fct-p50", "fct-p90", "fct-max", "retx", "ce-acks", "rtos"
        )?;
        for report in &self.reports {
            let fct = report.fct_samples();
            let retx: u64 = report.bulk.iter().map(|b| b.retransmits).sum();
            let ce: u64 = report.bulk.iter().map(|b| b.ce_acks).sum();
            let rtos: u64 = report.bulk.iter().map(|b| b.timeouts).sum();
            writeln!(
                f,
                "{:<14} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
                report.variant.label(),
                ms1(percentile(&fct, 0.50)),
                ms1(percentile(&fct, 0.90)),
                ms1(fct.iter().max().copied().unwrap_or(0)),
                retx,
                ce,
                rtos,
            )?;
        }

        writeln!(f)?;
        writeln!(f, "-- rtc frame lateness (ms) --")?;
        writeln!(
            f,
            "{:<14} {:>9} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8}",
            "variant", "delivered", "lost", "ce", "p50", "p90", "p99", "jitter"
        )?;
        for report in &self.reports {
            let lateness = report.lateness_samples();
            let delivered: u64 = report.rtc.iter().map(|r| r.frames_delivered).sum();
            let lost: u64 = report.rtc.iter().map(|r| r.frames_lost).sum();
            let ce: u64 = report.rtc.iter().map(|r| r.ce_frames).sum();
            let jitter = if report.rtc.len() == 1 {
                report.rtc[0].jitter_us
            } else {
                jitter_us(&lateness)
            };
            writeln!(
                f,
                "{:<14} {:>9} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8}",
                report.variant.label(),
                delivered,
                lost,
                ce,
                ms1(percentile(&lateness, 0.50)),
                ms1(percentile(&lateness, 0.90)),
                ms1(percentile(&lateness, 0.99)),
                ms1(jitter),
            )?;
        }

        // Rendered only when a fault plan actually fired: the engine emits
        // `fault.*` counters nonzero-only, so fault-free scenarios (and the
        // committed netbench golden) keep their exact pre-fault rendering.
        let fault_key =
            |report: &WorkloadReport, key: &str| report.metrics.counter(key).unwrap_or(0);
        let drops = |report: &WorkloadReport| {
            fault_key(report, "fault.drops.loss")
                + fault_key(report, "fault.drops.burst")
                + fault_key(report, "fault.drops.blackhole")
                + fault_key(report, "fault.drops.flap")
        };
        if self.reports.iter().any(|r| {
            drops(r) > 0
                || [
                    "fault.corrupted",
                    "fault.duplicates",
                    "fault.reordered",
                    "fault.jittered",
                ]
                .iter()
                .any(|k| fault_key(r, k) > 0)
        }) {
            writeln!(f)?;
            writeln!(f, "-- fault injection --")?;
            writeln!(
                f,
                "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "variant", "drops", "corrupt", "dup", "salvage", "reorder", "jitter"
            )?;
            for report in &self.reports {
                writeln!(
                    f,
                    "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    report.variant.label(),
                    drops(report),
                    fault_key(report, "fault.corrupted"),
                    fault_key(report, "fault.duplicates"),
                    fault_key(report, "fault.dup_salvaged"),
                    fault_key(report, "fault.reordered"),
                    fault_key(report, "fault.jittered"),
                )?;
            }
        }

        writeln!(f)?;
        writeln!(f, "-- bottleneck queue --")?;
        writeln!(
            f,
            "{:<14} {:>9} {:>8} {:>8} {:>6} {:>10} {:>10}",
            "variant", "enqueued", "marked", "dropped", "peak", "load-sent", "load-ok"
        )?;
        for report in &self.reports {
            let load_sent: u64 = report.load.iter().map(|l| l.sent).sum();
            let load_ok: u64 = report.load.iter().map(|l| l.delivered).sum();
            writeln!(
                f,
                "{:<14} {:>9} {:>8} {:>8} {:>6} {:>10} {:>10}",
                report.variant.label(),
                report.queue.enqueued,
                report.queue.marked,
                report.queue.dropped,
                report.queue.peak_occupancy,
                load_sent,
                load_ok,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank_on_the_sorted_sample() {
        let samples = [40, 10, 30, 20];
        assert_eq!(percentile(&samples, 0.0), 10);
        assert_eq!(percentile(&samples, 0.5), 30);
        assert_eq!(percentile(&samples, 1.0), 40);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn ms_rendering_keeps_one_decimal() {
        assert_eq!(ms1(0), "0.0");
        assert_eq!(ms1(1_234), "1.2");
        assert_eq!(ms1(999), "0.9");
        assert_eq!(ms1(33_050), "33.0");
    }
}
