//! The declarative scenario model: what to run, over which bottleneck,
//! under which ECN variant — and the compiler that lowers a scenario onto
//! [`qem_netsim::EngineCore`].
//!
//! A [`Scenario`] is pure data (serde-serializable, netbench-style): a named
//! bottleneck spec plus an ordered list of [`AppSpec`]s.  Registration order
//! on the engine *is* spec order (connections within an app in connection
//! order), which — together with the engine's FIFO tie-breaking — makes a
//! scenario run a pure function of `(scenario, variant)`.  The same scenario
//! runs unmodified on the production [`TimerWheel`](qem_netsim::TimerWheel)
//! and the [`EventQueue`](qem_netsim::EventQueue) oracle, which the
//! determinism tests exploit.

use crate::apps::{jitter_us, BulkAppFlow, RtcAppFlow};
use crate::report::{BulkOutcome, LoadOutcome, RtcOutcome, WorkloadComparison, WorkloadReport};
use qem_netsim::{
    Asn, DuplexPath, EcnPolicy, EngineCore, EventQueue, FaultKind, FaultPlan, Hop, LoadFlow, Path,
    QueueConfig, Router, RouterId, Scheduler, SharedQueues, SimDuration, SimInstant, TimerWheel,
};
use qem_obs::Histogram;
use qem_packet::ecn::EcnCodepoint;
use serde::{Deserialize, Serialize};

/// Fibonacci-hashing constant shared with [`LoadFlow::fleet`]'s per-flow
/// seed derivation, so nested derivations stay well distributed.
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

fn derive_seed(seed: u64, salt: u64) -> u64 {
    seed.wrapping_mul(SEED_MIX).wrapping_add(salt)
}

/// The ECN condition a scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EcnVariant {
    /// Endpoints send ECT(0); the bottleneck CE-marks and the marks reach
    /// the receiver — the feedback loop closes without loss.
    EcnOn,
    /// Endpoints send not-ECT; the AQM spares them (RFC 3168 §6.1.1), so the
    /// only congestion signal is tail drop when the queue is full.
    EcnOff,
    /// Endpoints send ECT(0) and the bottleneck marks, but a downstream hop
    /// erases CE back to ECT(0) ([`EcnPolicy::EraseCe`]): the path *looks*
    /// ECN-capable while the congestion signal is destroyed in transit —
    /// the paper's broken-path failure mode, and the worst of both worlds
    /// (marks are spent, nobody backs off, the queue pegs at capacity).
    CeBlackhole,
}

impl EcnVariant {
    /// Every variant, in the order reports render them.
    pub const ALL: [EcnVariant; 3] = [
        EcnVariant::EcnOn,
        EcnVariant::EcnOff,
        EcnVariant::CeBlackhole,
    ];

    /// Stable label used in report tables and metric keys.
    pub fn label(self) -> &'static str {
        match self {
            EcnVariant::EcnOn => "ecn-on",
            EcnVariant::EcnOff => "ecn-off",
            EcnVariant::CeBlackhole => "ce-blackhole",
        }
    }

    /// The codepoint application senders use under this variant.
    pub fn codepoint(self) -> EcnCodepoint {
        match self {
            EcnVariant::EcnOff => EcnCodepoint::NotEct,
            EcnVariant::EcnOn | EcnVariant::CeBlackhole => EcnCodepoint::Ect0,
        }
    }
}

/// The shared bottleneck every app of a scenario crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BottleneckSpec {
    /// Queue capacity in packets; arrivals beyond it tail-drop.
    pub capacity: usize,
    /// Occupancy below which the AQM never marks.
    pub min_thresh: usize,
    /// Occupancy at which marking probability reaches 1.
    pub max_thresh: usize,
    /// Per-packet serialization time, µs (the drain rate).
    pub service_time_us: u64,
    /// Propagation delay of each hop, µs.
    pub hop_delay_us: u64,
}

impl BottleneckSpec {
    fn queue_config(&self) -> QueueConfig {
        let mut config = QueueConfig::bottleneck(self.capacity, self.min_thresh, self.max_thresh);
        config.service_time = SimDuration::from_micros(self.service_time_us);
        config
    }
}

/// Which transport a bulk transfer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// QUIC short-header STREAM packets over UDP.
    Quic,
    /// TCP `ACK|PSH` data segments.
    Tcp,
}

/// One application of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppSpec {
    /// `connections` parallel transfers of an `object_size`-byte object,
    /// measuring goodput and flow completion time.
    BulkTransfer {
        /// Wire format of the transfer.
        transport: Transport,
        /// Bytes per object.
        object_size: u64,
        /// Parallel connections, each transferring its own object.
        connections: u8,
    },
    /// A constant-bitrate RTC stream measuring frame lateness and jitter.
    RtcStream {
        /// Interval between frames, µs (33 000 ≈ 30 fps).
        frame_interval_us: u64,
        /// Stream bitrate in kbit/s.
        bitrate_kbps: u64,
        /// Stream duration, µs.
        duration_us: u64,
    },
    /// Background load: a fleet of paced UDP senders sharing the bottleneck
    /// (the same [`LoadFlow`] machinery `CrossTraffic` uses — one code path).
    Load {
        /// Number of flows in the fleet.
        flows: u32,
        /// Packets each flow sends.
        packets_per_flow: u64,
        /// Pacing interval per flow, µs.
        interval_us: u64,
    },
}

/// A complete declarative workload scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name, used in report headers.
    pub name: String,
    /// Master seed; every flow derives its RNG seed from it.
    pub seed: u64,
    /// The shared bottleneck spec.
    pub bottleneck: BottleneckSpec,
    /// The applications, in registration order.
    pub apps: Vec<AppSpec>,
    /// Fault plan attached to the forward path.  The default (empty) plan
    /// consumes no RNG draws, so fault-free scenarios are byte-identical to
    /// the pre-fault world.
    #[serde(default)]
    pub fault: FaultPlan,
}

/// Internal registration plan entry: which flow vector the next `count`
/// engine slots come from.
enum AppKind {
    Bulk,
    Rtc,
    Load,
}

impl Scenario {
    /// The router owning the shared bottleneck queue (hop 2 of 3).
    pub const BOTTLENECK_ROUTER: RouterId = RouterId(2);

    /// The default netbench-style scenario the example, golden snapshot and
    /// bench all run: QUIC and TCP bulk transfers, one 30 fps / 3 Mbit/s RTC
    /// stream, and a burst of background load, all over a 4 000 pkt/s
    /// bottleneck.
    pub fn netbench_default(seed: u64) -> Scenario {
        Scenario {
            name: "netbench".into(),
            seed,
            bottleneck: BottleneckSpec {
                capacity: 128,
                min_thresh: 16,
                max_thresh: 48,
                service_time_us: 250,
                hop_delay_us: 2_000,
            },
            apps: vec![
                AppSpec::BulkTransfer {
                    transport: Transport::Quic,
                    object_size: 384 * 1024,
                    connections: 4,
                },
                AppSpec::BulkTransfer {
                    transport: Transport::Tcp,
                    object_size: 384 * 1024,
                    connections: 2,
                },
                AppSpec::RtcStream {
                    frame_interval_us: 33_000,
                    bitrate_kbps: 3_000,
                    duration_us: 3_000_000,
                },
                AppSpec::Load {
                    flows: 8,
                    packets_per_flow: 80,
                    interval_us: 4_000,
                },
            ],
            fault: FaultPlan::default(),
        }
    }

    /// The netbench workload over a chronically lossy bottleneck: steady
    /// random loss and jitter for the whole run, plus a mid-run corruption
    /// window.  The chaos counterpart of [`Scenario::netbench_default`].
    pub fn lossy_bottleneck(seed: u64) -> Scenario {
        let mut scenario = Scenario::netbench_default(seed);
        scenario.name = "lossy-bottleneck".into();
        scenario.fault = FaultPlan::new()
            .always(FaultKind::Loss { rate: 0.03 })
            .always(FaultKind::Jitter {
                max: SimDuration::from_micros(1_500),
            })
            .window(
                SimInstant::EPOCH + SimDuration::from_micros(500_000),
                SimInstant::EPOCH + SimDuration::from_micros(1_500_000),
                FaultKind::Corrupt { rate: 0.02 },
            );
        scenario
    }

    /// The netbench workload over a flapping link: a square-wave outage
    /// (200 ms down out of every second) through the middle of the run,
    /// with reordering while the link is unstable.  Deterministic — the
    /// flap is a pure function of virtual time.
    pub fn flapping_link(seed: u64) -> Scenario {
        let mut scenario = Scenario::netbench_default(seed);
        scenario.name = "flapping-link".into();
        scenario.fault = FaultPlan::new()
            .window(
                SimInstant::EPOCH + SimDuration::from_micros(300_000),
                SimInstant::EPOCH + SimDuration::from_micros(2_300_000),
                FaultKind::Flap {
                    period: SimDuration::from_micros(1_000_000),
                    down: SimDuration::from_micros(200_000),
                },
            )
            .window(
                SimInstant::EPOCH + SimDuration::from_micros(300_000),
                SimInstant::EPOCH + SimDuration::from_micros(2_300_000),
                FaultKind::Reorder {
                    rate: 0.05,
                    extra: SimDuration::from_micros(2_500),
                },
            );
        scenario
    }

    /// The three-hop forward path of the scenario: access router, the shared
    /// bottleneck, and an egress router which under
    /// [`EcnVariant::CeBlackhole`] erases CE marks *after* the bottleneck
    /// applied them.  The reverse direction is clean and unqueued.
    pub fn forward_path(&self, variant: EcnVariant) -> Path {
        let hop_delay = SimDuration::from_micros(self.bottleneck.hop_delay_us);
        let egress = match variant {
            EcnVariant::CeBlackhole => {
                Router::transparent(3, Asn(64502)).with_ecn_policy(EcnPolicy::EraseCe)
            }
            _ => Router::transparent(3, Asn(64502)),
        };
        Path::new(vec![
            Hop::new(Router::transparent(1, Asn(64500))).with_delay(hop_delay),
            Hop::new(Router::transparent(2, Asn(64501))).with_delay(hop_delay),
            Hop::new(egress).with_delay(hop_delay),
        ])
        .with_fault(self.fault.clone())
    }

    /// Run the scenario under `variant` on the production timer wheel.
    pub fn run(&self, variant: EcnVariant) -> WorkloadReport {
        self.run_core::<TimerWheel<usize>>(variant)
    }

    /// Run the scenario under `variant` on the binary-heap oracle scheduler.
    /// Bit-identical to [`Scenario::run`] — the determinism tests prove it.
    pub fn run_heap(&self, variant: EcnVariant) -> WorkloadReport {
        self.run_core::<EventQueue<usize>>(variant)
    }

    /// Run the scenario under every variant and bundle the comparison.
    pub fn run_all(&self) -> WorkloadComparison {
        WorkloadComparison {
            scenario: self.name.clone(),
            seed: self.seed,
            reports: EcnVariant::ALL.iter().map(|&v| self.run(v)).collect(),
        }
    }

    fn run_core<S: Scheduler<usize> + Default>(&self, variant: EcnVariant) -> WorkloadReport {
        let forward = self.forward_path(variant);
        let duplex = DuplexPath::symmetric_clean_reverse(forward.clone());
        let codepoint = variant.codepoint();

        let mut shared = SharedQueues::new();
        shared.register(Self::BOTTLENECK_ROUTER, self.bottleneck.queue_config());

        // Build the concrete flows, grouped by kind but remembering spec
        // order in `plan` so engine registration order equals spec order.
        let mut bulks: Vec<BulkAppFlow> = Vec::new();
        let mut rtcs: Vec<RtcAppFlow> = Vec::new();
        let mut loads: Vec<LoadFlow> = Vec::new();
        let mut plan: Vec<(AppKind, usize)> = Vec::new();
        let mut conn_counter: u8 = 0;
        for (app_index, spec) in self.apps.iter().enumerate() {
            let app_seed = derive_seed(self.seed, app_index as u64);
            match *spec {
                AppSpec::BulkTransfer {
                    transport,
                    object_size,
                    connections,
                } => {
                    for conn in 0..connections {
                        conn_counter = conn_counter.wrapping_add(1);
                        let seed = derive_seed(app_seed, u64::from(conn));
                        let flow = match transport {
                            Transport::Quic => BulkAppFlow::quic(
                                duplex.clone(),
                                codepoint,
                                object_size,
                                conn_counter,
                                seed,
                            ),
                            Transport::Tcp => BulkAppFlow::tcp(
                                duplex.clone(),
                                codepoint,
                                object_size,
                                conn_counter,
                                seed,
                            ),
                        };
                        bulks.push(flow);
                    }
                    plan.push((AppKind::Bulk, usize::from(connections)));
                }
                AppSpec::RtcStream {
                    frame_interval_us,
                    bitrate_kbps,
                    duration_us,
                } => {
                    conn_counter = conn_counter.wrapping_add(1);
                    let frame_bytes = bitrate_kbps * frame_interval_us / 8_000;
                    let total_frames = duration_us / frame_interval_us.max(1);
                    rtcs.push(RtcAppFlow::new(
                        duplex.clone(),
                        codepoint,
                        frame_bytes,
                        SimDuration::from_micros(frame_interval_us),
                        total_frames,
                        conn_counter,
                        app_seed,
                    ));
                    plan.push((AppKind::Rtc, 1));
                }
                AppSpec::Load {
                    flows,
                    packets_per_flow,
                    interval_us,
                } => {
                    let fleet = LoadFlow::fleet(
                        &forward,
                        flows,
                        packets_per_flow,
                        SimDuration::from_micros(interval_us),
                        codepoint,
                        app_seed,
                    );
                    plan.push((AppKind::Load, fleet.len()));
                    loads.extend(fleet);
                }
            }
        }

        // Register in spec order and run to quiescence.
        let mut engine: EngineCore<'_, S> = EngineCore::new(shared);
        {
            let mut b = bulks.iter_mut();
            let mut r = rtcs.iter_mut();
            let mut l = loads.iter_mut();
            for (kind, count) in &plan {
                for _ in 0..*count {
                    match kind {
                        AppKind::Bulk => {
                            engine.add_flow(b.next().expect("plan matches bulk flows"));
                        }
                        AppKind::Rtc => {
                            engine.add_flow(r.next().expect("plan matches rtc flows"));
                        }
                        AppKind::Load => {
                            engine.add_flow(l.next().expect("plan matches load flows"));
                        }
                    }
                }
            }
            engine.run();
        }
        let queue = engine
            .shared()
            .stats(Self::BOTTLENECK_ROUTER)
            .unwrap_or_default();
        let mut metrics = engine.telemetry().metrics;
        drop(engine);

        // Collect per-app outcomes in spec order.
        let mut report = WorkloadReport {
            variant,
            bulk: Vec::new(),
            rtc: Vec::new(),
            load: Vec::new(),
            queue,
            metrics: qem_obs::MetricsSnapshot::new(),
        };
        let mut bulk_cursor = bulks.iter();
        let mut rtc_cursor = rtcs.iter();
        let mut load_cursor = loads.iter();
        for spec in &self.apps {
            match *spec {
                AppSpec::BulkTransfer {
                    transport,
                    object_size,
                    connections,
                } => {
                    let mut outcome = BulkOutcome {
                        transport,
                        object_size,
                        goodput_kbps: Vec::new(),
                        fct_us: Vec::new(),
                        retransmits: 0,
                        ce_acks: 0,
                        timeouts: 0,
                    };
                    let fct_hist = Histogram::standalone();
                    for _ in 0..connections {
                        let flow = bulk_cursor.next().expect("collected bulk flow");
                        let fct_us = flow
                            .completion_time()
                            .map(|d| d.as_micros())
                            .unwrap_or(u64::MAX);
                        fct_hist.record(fct_us);
                        // kbit/s = bytes * 8 / (µs / 1000).
                        let goodput = object_size * 8_000 / fct_us.max(1);
                        outcome.fct_us.push(fct_us);
                        outcome.goodput_kbps.push(goodput);
                        outcome.retransmits += flow.retransmits();
                        outcome.ce_acks += flow.ce_acks();
                        outcome.timeouts += flow.timeouts();
                    }
                    let index = report.bulk.len();
                    let prefix = format!("workload.{}.bulk{}", variant.label(), index);
                    metrics.set_histogram(format!("{prefix}.fct_us"), fct_hist.snapshot());
                    metrics.set_counter(format!("{prefix}.retransmits"), outcome.retransmits);
                    metrics.set_counter(format!("{prefix}.ce_acks"), outcome.ce_acks);
                    report.bulk.push(outcome);
                }
                AppSpec::RtcStream { .. } => {
                    let flow = rtc_cursor.next().expect("collected rtc flow");
                    let lateness_hist = Histogram::standalone();
                    for &sample in flow.lateness_us() {
                        lateness_hist.record(sample);
                    }
                    let index = report.rtc.len();
                    let prefix = format!("workload.{}.rtc{}", variant.label(), index);
                    metrics
                        .set_histogram(format!("{prefix}.lateness_us"), lateness_hist.snapshot());
                    metrics.set_counter(
                        format!("{prefix}.frames_delivered"),
                        flow.frames_delivered(),
                    );
                    metrics.set_counter(format!("{prefix}.frames_lost"), flow.frames_lost());
                    metrics
                        .set_counter(format!("{prefix}.jitter_us"), jitter_us(flow.lateness_us()));
                    report.rtc.push(RtcOutcome::from_samples(
                        flow.frames_delivered(),
                        flow.frames_lost(),
                        flow.ce_frames(),
                        flow.lateness_us().to_vec(),
                    ));
                }
                AppSpec::Load { flows, .. } => {
                    let mut outcome = LoadOutcome {
                        sent: 0,
                        delivered: 0,
                    };
                    for _ in 0..flows {
                        let flow = load_cursor.next().expect("collected load flow");
                        outcome.sent += flow.sent();
                        outcome.delivered += flow.delivered();
                    }
                    report.load.push(outcome);
                }
            }
        }
        report.metrics = metrics;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            name: "tiny".into(),
            seed: 11,
            bottleneck: BottleneckSpec {
                capacity: 64,
                min_thresh: 8,
                max_thresh: 24,
                service_time_us: 250,
                hop_delay_us: 1_000,
            },
            apps: vec![
                AppSpec::BulkTransfer {
                    transport: Transport::Quic,
                    object_size: 96 * 1024,
                    connections: 2,
                },
                AppSpec::RtcStream {
                    frame_interval_us: 33_000,
                    bitrate_kbps: 1_500,
                    duration_us: 500_000,
                },
                AppSpec::Load {
                    flows: 4,
                    packets_per_flow: 30,
                    interval_us: 4_000,
                },
            ],
            fault: FaultPlan::default(),
        }
    }

    #[test]
    fn variants_differ_in_the_expected_directions() {
        let scenario = tiny();
        let on = scenario.run(EcnVariant::EcnOn);
        let off = scenario.run(EcnVariant::EcnOff);
        let broken = scenario.run(EcnVariant::CeBlackhole);

        // ECN-on: marks happen and reach the senders; no loss needed.
        assert!(on.queue.marked > 0);
        assert!(on.bulk.iter().map(|b| b.ce_acks).sum::<u64>() > 0);

        // ECN-off: not-ECT is never marked; tail drop is the only signal.
        assert_eq!(off.queue.marked, 0);

        // Broken path: the bottleneck spends marks but no sender ever sees
        // one — the signal is erased downstream.
        assert!(broken.queue.marked > 0);
        assert_eq!(broken.bulk.iter().map(|b| b.ce_acks).sum::<u64>(), 0);
        assert_eq!(broken.rtc.iter().map(|r| r.ce_frames).sum::<u64>(), 0);
    }

    #[test]
    fn wheel_and_heap_schedulers_agree_exactly() {
        let scenario = tiny();
        for variant in EcnVariant::ALL {
            let wheel = scenario.run(variant);
            let heap = scenario.run_heap(variant);
            assert_eq!(
                wheel,
                heap,
                "{} diverged across schedulers",
                variant.label()
            );
        }
    }

    #[test]
    fn fault_scenarios_impair_the_run_and_stay_scheduler_deterministic() {
        let mut lossy = tiny();
        lossy.fault = Scenario::lossy_bottleneck(7).fault;
        let mut flappy = tiny();
        flappy.fault = Scenario::flapping_link(7).fault;

        let lossy_report = lossy.run(EcnVariant::EcnOn);
        assert!(
            lossy_report
                .metrics
                .counter("fault.drops.loss")
                .unwrap_or(0)
                > 0,
            "steady loss must cost packets"
        );
        assert!(lossy_report.metrics.counter("fault.jittered").unwrap_or(0) > 0);
        assert_eq!(lossy_report, lossy.run_heap(EcnVariant::EcnOn));

        let flappy_report = flappy.run(EcnVariant::EcnOn);
        assert!(
            flappy_report
                .metrics
                .counter("fault.drops.flap")
                .unwrap_or(0)
                > 0,
            "the down slices must swallow packets"
        );
        assert_eq!(flappy_report, flappy.run_heap(EcnVariant::EcnOn));

        // The fault-free scenario emits no fault keys at all — that silence
        // is what keeps the committed goldens byte-identical.
        let clean = tiny().run(EcnVariant::EcnOn);
        assert_eq!(clean.metrics.counter("fault.drops.loss"), None);
        assert_eq!(clean.metrics.counter("fault.jittered"), None);
    }

    #[test]
    fn the_fault_section_renders_only_for_faulted_runs() {
        let mut lossy = tiny();
        lossy.fault = Scenario::lossy_bottleneck(7).fault;
        let faulted = lossy.run_all().to_string();
        assert!(
            faulted.contains("-- fault injection --"),
            "faulted comparison must render the section:\n{faulted}"
        );
        let clean = tiny().run_all().to_string();
        assert!(
            !clean.contains("-- fault injection --"),
            "clean comparison must not grow a section"
        );
    }

    #[test]
    fn only_the_blackhole_variant_impairs_the_path() {
        let scenario = Scenario::netbench_default(7);
        assert!(!scenario
            .forward_path(EcnVariant::EcnOn)
            .has_ecn_impairment());
        assert!(!scenario
            .forward_path(EcnVariant::EcnOff)
            .has_ecn_impairment());
        let broken = scenario.forward_path(EcnVariant::CeBlackhole);
        assert!(broken.has_ecn_impairment());
        // The eraser sits strictly after the bottleneck, so marks are spent
        // before they are destroyed.
        assert_eq!(
            broken.hops.last().map(|h| h.router.ecn_policy),
            Some(EcnPolicy::EraseCe)
        );
        assert_eq!(broken.hops[1].router.id, Scenario::BOTTLENECK_ROUTER);
    }
}
