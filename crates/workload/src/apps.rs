//! The sans-IO application flows a [`Scenario`](crate::scenario::Scenario)
//! compiles onto the engine: bulk object transfers with an AIMD congestion
//! response and constant-bitrate RTC frame streaming.
//!
//! Both flows implement [`qem_netsim::Flow`] and drive *real wire formats*
//! through the simulated network — QUIC short-header STREAM packets built by
//! [`qem_quic::app::StreamPacketizer`] or TCP `ACK|PSH` segments built by
//! [`qem_tcp::app::SegmentPacketizer`], encapsulated in IPv4 datagrams
//! carrying the scenario variant's ECN codepoint.
//!
//! ## The congestion model, honestly
//!
//! ROADMAP item 4 (full congestion-controller/loss-recovery state machines on
//! the endpoints) is still open, so the bulk flow carries a deliberately
//! small, self-contained AIMD model: slow start, congestion avoidance,
//! multiplicative decrease once per round trip on a CE-marked ACK or a
//! retransmission timeout.  It is enough for the property the workload layer
//! measures — *whether the congestion feedback loop closes* — which is
//! exactly what the ECN-on / ECN-off / CE-blackholed variants differ in.
//! When real controllers land, these flows are the call sites to rewire.

use qem_netsim::{DuplexPath, Flow, FlowStatus, SharedQueues, SimDuration, SimInstant};
use qem_packet::ecn::EcnCodepoint;
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header};
use qem_packet::udp::UdpHeader;
use qem_quic::app::{AppDataSource, BulkObject, FrameSource, StreamPacketizer};
use qem_tcp::app::SegmentPacketizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr};

/// Maximum application bytes per packet (a QUIC-ish 1200-byte segment).
pub const MSS: usize = 1_200;

/// Initial congestion window, in packets (RFC 6928's IW10).
const INITIAL_CWND: usize = 10;

/// Floor the window never drops below, in packets.
const MIN_CWND: usize = 2;

/// Which wire format a bulk transfer puts on the path.
#[derive(Debug)]
enum Packetizer {
    /// QUIC short-header packets carrying STREAM frames, over UDP.
    Quic(StreamPacketizer),
    /// TCP `ACK|PSH` data segments.
    Tcp(SegmentPacketizer),
}

/// Benchmarking-range endpoint addresses (RFC 2544), one source address per
/// connection so traces stay tellable apart.
fn endpoint_addrs(conn: u8) -> (IpAddr, IpAddr) {
    (
        IpAddr::V4(Ipv4Addr::new(198, 18, 1, conn)),
        IpAddr::V4(Ipv4Addr::new(198, 19, 1, 1)),
    )
}

fn encapsulate(
    src: IpAddr,
    dst: IpAddr,
    ecn: EcnCodepoint,
    protocol: IpProtocol,
    transport_bytes: Vec<u8>,
) -> IpDatagram {
    let (IpAddr::V4(src_v4), IpAddr::V4(dst_v4)) = (src, dst) else {
        unreachable!("workload endpoints are IPv4");
    };
    let header = IpHeader::V4(Ipv4Header::new(src_v4, dst_v4, protocol, 64).with_ecn(ecn));
    IpDatagram::new(header, transport_bytes)
}

/// What the bulk sender learns about one packet, delivered as a timed event.
#[derive(Debug, Clone, Copy)]
enum Feedback {
    /// The packet arrived and its ACK came back; `ce` is whether the packet
    /// was CE-marked *on arrival at the receiver* (the only place a mark is
    /// visible — an erased mark never reaches here).
    Ack { offset: u64, len: usize, ce: bool },
    /// The retransmission timeout fired for a packet the network dropped.
    Timeout { offset: u64, len: usize },
}

/// A bulk object transfer: send `object_size` bytes over the scenario path
/// as fast as the AIMD window allows, recording completion time and the
/// congestion signals consumed along the way.
#[derive(Debug)]
pub struct BulkAppFlow {
    path: DuplexPath,
    ecn: EcnCodepoint,
    conn: u8,
    source: BulkObject,
    packetizer: Packetizer,
    rng: StdRng,
    /// Congestion state.
    cwnd: usize,
    ssthresh: usize,
    ack_credit: usize,
    recovery_until: SimInstant,
    rto: SimDuration,
    /// Offset → length of packets in flight.
    in_flight: BTreeMap<u64, usize>,
    /// Offset → length of dropped packets awaiting retransmission.
    retransmit: BTreeMap<u64, usize>,
    /// Timed feedback, ordered by delivery instant (FIFO within an instant).
    feedback: BTreeMap<SimInstant, Vec<Feedback>>,
    acked_bytes: u64,
    /// Results.
    completed_at: Option<SimInstant>,
    packets_sent: u64,
    retransmits: u64,
    ce_acks: u64,
    timeouts: u64,
}

impl BulkAppFlow {
    /// A QUIC bulk transfer of `object_size` bytes for connection `conn`.
    pub fn quic(
        path: DuplexPath,
        ecn: EcnCodepoint,
        object_size: u64,
        conn: u8,
        seed: u64,
    ) -> Self {
        let packetizer = Packetizer::Quic(StreamPacketizer::new(seed, u64::from(conn) * 4));
        Self::new(path, ecn, object_size, conn, seed, packetizer)
    }

    /// A TCP bulk transfer of `object_size` bytes for connection `conn`.
    pub fn tcp(path: DuplexPath, ecn: EcnCodepoint, object_size: u64, conn: u8, seed: u64) -> Self {
        let packetizer = Packetizer::Tcp(SegmentPacketizer::new(
            443,
            50_000 + u16::from(conn),
            seed as u32,
        ));
        Self::new(path, ecn, object_size, conn, seed, packetizer)
    }

    fn new(
        path: DuplexPath,
        ecn: EcnCodepoint,
        object_size: u64,
        conn: u8,
        seed: u64,
        packetizer: Packetizer,
    ) -> Self {
        // A fixed, deterministic timeout: the un-congested RTT plus the worst
        // case the bottleneck queue can add, plus slack.  Deliberately not an
        // adaptive estimator — see the module docs.
        let rto = path.rtt() + SimDuration::from_millis(50);
        BulkAppFlow {
            path,
            ecn,
            conn,
            source: BulkObject::new(object_size),
            packetizer,
            rng: StdRng::seed_from_u64(seed),
            cwnd: INITIAL_CWND,
            ssthresh: usize::MAX / 2,
            ack_credit: 0,
            recovery_until: SimInstant::EPOCH,
            rto,
            in_flight: BTreeMap::new(),
            retransmit: BTreeMap::new(),
            feedback: BTreeMap::new(),
            acked_bytes: 0,
            completed_at: None,
            packets_sent: 0,
            retransmits: 0,
            ce_acks: 0,
            timeouts: 0,
        }
    }

    /// Flow-completion time, once the whole object is acknowledged.
    pub fn completion_time(&self) -> Option<SimDuration> {
        self.completed_at
            .map(|at| at.duration_since(SimInstant::EPOCH))
    }

    /// Packets sent, including retransmissions.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Packets retransmitted after a timeout.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// ACKs that reported a CE mark (congestion the sender acted on).
    pub fn ce_acks(&self) -> u64 {
        self.ce_acks
    }

    /// Retransmission timeouts that fired.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Multiplicative decrease, at most once per recovery period (one RTT).
    fn on_congestion(&mut self, now: SimInstant) {
        if now < self.recovery_until {
            return;
        }
        self.cwnd = (self.cwnd / 2).max(MIN_CWND);
        self.ssthresh = self.cwnd;
        self.ack_credit = 0;
        self.recovery_until = now + self.path.rtt();
    }

    /// Additive increase: slow start below `ssthresh`, one packet per window
    /// above it.
    fn on_ack_growth(&mut self) {
        if self.cwnd < self.ssthresh {
            self.cwnd += 1;
        } else {
            self.ack_credit += 1;
            if self.ack_credit >= self.cwnd {
                self.cwnd += 1;
                self.ack_credit = 0;
            }
        }
    }

    fn transmit(
        &mut self,
        offset: u64,
        len: usize,
        fin: bool,
        now: SimInstant,
        net: &mut SharedQueues,
    ) {
        let (src, dst) = endpoint_addrs(self.conn);
        let chunk = qem_quic::app::AppChunk { offset, len, fin };
        let (protocol, transport_bytes) = match &mut self.packetizer {
            Packetizer::Quic(p) => {
                let quic_bytes = p.packetize(&chunk);
                let udp = UdpHeader::new(50_000 + u16::from(self.conn), 443);
                (IpProtocol::Udp, udp.encode(src, dst, &quic_bytes))
            }
            Packetizer::Tcp(p) => (IpProtocol::Tcp, p.packetize(src, dst, len)),
        };
        let datagram = encapsulate(src, dst, self.ecn, protocol, transport_bytes);
        self.packets_sent += 1;
        self.in_flight.insert(offset, len);
        match self
            .path
            .forward
            .transit_shared(&datagram, now, &mut self.rng, net)
        {
            qem_netsim::TransitOutcome::Delivered { datagram, delay } => {
                let ce = datagram.header.ecn() == EcnCodepoint::Ce;
                let ack_at = now + delay + self.path.reverse.one_way_delay();
                self.feedback
                    .entry(ack_at)
                    .or_default()
                    .push(Feedback::Ack { offset, len, ce });
            }
            _ => {
                self.feedback
                    .entry(now + self.rto)
                    .or_default()
                    .push(Feedback::Timeout { offset, len });
            }
        }
    }
}

impl Flow for BulkAppFlow {
    fn on_wake(&mut self, now: SimInstant, net: &mut SharedQueues) -> FlowStatus {
        // 1. Consume all feedback that has arrived by now, in time order.
        while let Some((&at, _)) = self.feedback.iter().next() {
            if at > now {
                break;
            }
            let batch = self.feedback.remove(&at).unwrap_or_default();
            for event in batch {
                match event {
                    Feedback::Ack { offset, len, ce } => {
                        if self.in_flight.remove(&offset).is_some() {
                            self.acked_bytes += len as u64;
                            if ce {
                                self.ce_acks += 1;
                                self.on_congestion(at);
                            } else {
                                self.on_ack_growth();
                            }
                        }
                    }
                    Feedback::Timeout { offset, len } => {
                        if self.in_flight.remove(&offset).is_some() {
                            self.retransmit.insert(offset, len);
                            self.timeouts += 1;
                            self.on_congestion(at);
                        }
                    }
                }
            }
        }

        // 2. Done once every byte of the object is acknowledged.
        if self.acked_bytes >= self.source.total_len().unwrap_or(0) {
            if self.completed_at.is_none() {
                self.completed_at = Some(now);
            }
            return FlowStatus::Done;
        }

        // 3. Fill the window: retransmissions first, then fresh data.
        while self.in_flight.len() < self.cwnd {
            if let Some((&offset, &len)) = self.retransmit.iter().next() {
                self.retransmit.remove(&offset);
                self.retransmits += 1;
                let fin = offset + len as u64 >= self.source.total_len().unwrap_or(0);
                self.transmit(offset, len, fin, now, net);
            } else if let Some(chunk) = self.source.next_chunk(MSS) {
                self.transmit(chunk.offset, chunk.len, chunk.fin, now, net);
            } else {
                break;
            }
        }

        // 4. Sleep until the next feedback event.  Every in-flight packet has
        // one pending, so an empty map here means the transfer stalled with
        // nothing outstanding — impossible by construction, but sleeping one
        // RTO is a safe recovery rather than a panic.
        match self.feedback.keys().next() {
            Some(&at) => FlowStatus::Sleep(at),
            None => FlowStatus::Sleep(now + self.rto),
        }
    }
}

/// Per-frame bookkeeping for the RTC flow.
#[derive(Debug, Clone, Copy)]
struct FrameState {
    generated: SimInstant,
    /// Packets of this frame still in the network.
    outstanding: usize,
    /// Whether any packet of the frame was dropped.
    lost: bool,
    /// Whether any packet of the frame arrived CE-marked.
    ce: bool,
    /// Arrival instant of the latest packet so far.
    completed_at: SimInstant,
}

/// A constant-bitrate RTC stream: one frame every `frame_interval`, each
/// split into MSS-sized packets sent back-to-back, measuring per-frame
/// delivery lateness and jitter at the receiver.
///
/// The source does *not* adapt its rate — real-time media keeps its schedule
/// and eats the queueing delay, which is exactly why its frame lateness is
/// the cleanest probe of how deep the bottleneck queue sits under each ECN
/// variant.
#[derive(Debug)]
pub struct RtcAppFlow {
    path: DuplexPath,
    ecn: EcnCodepoint,
    conn: u8,
    source: FrameSource,
    packetizer: StreamPacketizer,
    rng: StdRng,
    frame_interval: SimDuration,
    total_frames: u64,
    frames_generated: u64,
    /// Frame index → in-network state.
    pending: BTreeMap<u64, FrameState>,
    /// Arrival instant → frame indices receiving a packet then.
    arrivals: BTreeMap<SimInstant, Vec<u64>>,
    /// Lateness (generation → last packet arrival) of delivered frames, µs.
    lateness_us: Vec<u64>,
    frames_delivered: u64,
    frames_lost: u64,
    ce_frames: u64,
}

impl RtcAppFlow {
    /// An RTC stream of `total_frames` frames of `frame_bytes` bytes, one
    /// every `frame_interval`.
    pub fn new(
        path: DuplexPath,
        ecn: EcnCodepoint,
        frame_bytes: u64,
        frame_interval: SimDuration,
        total_frames: u64,
        conn: u8,
        seed: u64,
    ) -> Self {
        RtcAppFlow {
            path,
            ecn,
            conn,
            source: FrameSource::new(frame_bytes),
            packetizer: StreamPacketizer::new(seed, 2),
            rng: StdRng::seed_from_u64(seed),
            frame_interval,
            total_frames,
            frames_generated: 0,
            pending: BTreeMap::new(),
            arrivals: BTreeMap::new(),
            lateness_us: Vec::new(),
            frames_delivered: 0,
            frames_lost: 0,
            ce_frames: 0,
        }
    }

    /// Lateness of each delivered frame in µs, in delivery-completion order.
    pub fn lateness_us(&self) -> &[u64] {
        &self.lateness_us
    }

    /// Frames whose every packet arrived.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_delivered
    }

    /// Frames that lost at least one packet.
    pub fn frames_lost(&self) -> u64 {
        self.frames_lost
    }

    /// Delivered frames that carried at least one CE mark on arrival.
    pub fn ce_frames(&self) -> u64 {
        self.ce_frames
    }

    fn finalize(&mut self, index: u64) {
        let Some(state) = self.pending.remove(&index) else {
            return;
        };
        if state.lost {
            self.frames_lost += 1;
        } else {
            self.frames_delivered += 1;
            if state.ce {
                self.ce_frames += 1;
            }
            self.lateness_us.push(
                state
                    .completed_at
                    .duration_since(state.generated)
                    .as_micros(),
            );
        }
    }

    fn generate_frame(&mut self, now: SimInstant, net: &mut SharedQueues) {
        let index = self.frames_generated;
        self.frames_generated += 1;
        let (src, dst) = endpoint_addrs(self.conn);
        let mut state = FrameState {
            generated: now,
            outstanding: 0,
            lost: false,
            ce: false,
            completed_at: now,
        };
        for chunk in self.source.next_frame(MSS) {
            let quic_bytes = self.packetizer.packetize(&chunk);
            let udp = UdpHeader::new(51_000 + u16::from(self.conn), 443);
            let transport_bytes = udp.encode(src, dst, &quic_bytes);
            let datagram = encapsulate(src, dst, self.ecn, IpProtocol::Udp, transport_bytes);
            match self
                .path
                .forward
                .transit_shared(&datagram, now, &mut self.rng, net)
            {
                qem_netsim::TransitOutcome::Delivered { datagram, delay } => {
                    state.outstanding += 1;
                    state.ce |= datagram.header.ecn() == EcnCodepoint::Ce;
                    self.arrivals.entry(now + delay).or_default().push(index);
                }
                _ => {
                    state.lost = true;
                }
            }
        }
        self.pending.insert(index, state);
        if state.outstanding == 0 {
            // Every packet dropped: nothing will ever arrive.
            self.finalize(index);
        }
    }

    fn next_generation_at(&self) -> Option<SimInstant> {
        (self.frames_generated < self.total_frames)
            .then(|| SimInstant::EPOCH + self.frame_interval * self.frames_generated)
    }
}

impl Flow for RtcAppFlow {
    fn on_wake(&mut self, now: SimInstant, net: &mut SharedQueues) -> FlowStatus {
        // 1. Book all packet arrivals up to now, in arrival order.
        while let Some((&at, _)) = self.arrivals.iter().next() {
            if at > now {
                break;
            }
            let batch = self.arrivals.remove(&at).unwrap_or_default();
            for index in batch {
                let finished = match self.pending.get_mut(&index) {
                    Some(state) => {
                        state.outstanding -= 1;
                        state.completed_at = at;
                        state.outstanding == 0
                    }
                    None => false,
                };
                if finished {
                    self.finalize(index);
                }
            }
        }
        // 2. Generate every frame whose schedule slot has arrived.
        while let Some(at) = self.next_generation_at() {
            if at > now {
                break;
            }
            self.generate_frame(at, net);
        }

        // 3. Sleep until the earlier of the next arrival and the next frame.
        let next_arrival = self.arrivals.keys().next().copied();
        let next_generation = self.next_generation_at();
        match (next_arrival, next_generation) {
            (Some(a), Some(g)) => FlowStatus::Sleep(a.min(g)),
            (Some(a), None) => FlowStatus::Sleep(a),
            (None, Some(g)) => FlowStatus::Sleep(g),
            (None, None) => FlowStatus::Done,
        }
    }
}

/// Mean absolute difference between consecutive frame lateness samples, µs —
/// the inter-frame jitter the receiver's dejitter buffer has to absorb.
pub fn jitter_us(lateness_us: &[u64]) -> u64 {
    if lateness_us.len() < 2 {
        return 0;
    }
    let total: u64 = lateness_us.windows(2).map(|w| w[0].abs_diff(w[1])).sum();
    total / (lateness_us.len() as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qem_netsim::{Asn, EngineCore, Hop, Path, QueueConfig, Router, TimerWheel};

    fn clean_duplex() -> (DuplexPath, qem_netsim::RouterId) {
        let bottleneck = Router::transparent(2, Asn(64500));
        let id = bottleneck.id;
        let forward = Path::new(vec![
            Hop::new(Router::transparent(1, Asn(64500))).with_delay(SimDuration::from_millis(2)),
            Hop::new(bottleneck).with_delay(SimDuration::from_millis(2)),
        ]);
        (DuplexPath::symmetric_clean_reverse(forward), id)
    }

    #[test]
    fn bulk_flow_completes_the_object_on_an_uncongested_path() {
        let (duplex, id) = clean_duplex();
        let mut shared = SharedQueues::new();
        shared.register(id, QueueConfig::bottleneck(256, 64, 128));
        let mut flow = BulkAppFlow::quic(duplex, EcnCodepoint::Ect0, 60_000, 1, 7);
        let mut engine: EngineCore<TimerWheel<usize>> = EngineCore::new(shared);
        engine.add_flow(&mut flow);
        engine.run();
        let fct = flow.completion_time().expect("transfer completes");
        assert!(fct > SimDuration::ZERO);
        assert_eq!(flow.retransmits(), 0);
        assert_eq!(flow.ce_acks(), 0);
        assert_eq!(flow.packets_sent(), 50); // 60_000 / 1_200
    }

    #[test]
    fn bulk_flow_backs_off_on_ce_and_recovers_without_loss() {
        // Mark aggressively: min_thresh 0 ramps straight into certain marking.
        let (duplex, id) = clean_duplex();
        let mut shared = SharedQueues::new();
        shared.register(id, QueueConfig::bottleneck(512, 0, 1));
        let mut flow = BulkAppFlow::quic(duplex, EcnCodepoint::Ect0, 120_000, 1, 7);
        let mut engine: EngineCore<TimerWheel<usize>> = EngineCore::new(shared);
        engine.add_flow(&mut flow);
        engine.run();
        assert!(flow.completion_time().is_some());
        assert!(flow.ce_acks() > 0, "AQM marks must reach the sender");
        assert_eq!(
            flow.retransmits(),
            0,
            "ECN resolves congestion without loss"
        );
    }

    #[test]
    fn bulk_flow_retransmits_through_a_tiny_tail_drop_queue() {
        let (duplex, id) = clean_duplex();
        let mut shared = SharedQueues::new();
        shared.register(id, QueueConfig::bottleneck(4, 1, 2));
        // not-ECT: the AQM spares it, so the only signal is tail drop + RTO.
        let mut flow = BulkAppFlow::tcp(duplex, EcnCodepoint::NotEct, 120_000, 1, 7);
        let mut engine: EngineCore<TimerWheel<usize>> = EngineCore::new(shared);
        engine.add_flow(&mut flow);
        engine.run();
        assert!(flow.completion_time().is_some(), "transfer still completes");
        assert!(
            flow.retransmits() > 0,
            "tail drops must force retransmission"
        );
        assert_eq!(flow.ce_acks(), 0, "not-ECT traffic is never marked");
    }

    #[test]
    fn rtc_flow_delivers_every_frame_and_measures_base_lateness() {
        let (duplex, id) = clean_duplex();
        let mut shared = SharedQueues::new();
        shared.register(id, QueueConfig::bottleneck(256, 64, 128));
        let mut flow = RtcAppFlow::new(
            duplex,
            EcnCodepoint::Ect0,
            6_000,
            SimDuration::from_millis(33),
            10,
            1,
            7,
        );
        let mut engine: EngineCore<TimerWheel<usize>> = EngineCore::new(shared);
        engine.add_flow(&mut flow);
        engine.run();
        assert_eq!(flow.frames_delivered(), 10);
        assert_eq!(flow.frames_lost(), 0);
        // One-way delay is 4 ms; queueing adds service time on top.
        assert!(flow.lateness_us().iter().all(|&l| l >= 4_000));
    }

    #[test]
    fn jitter_is_mean_absolute_consecutive_difference() {
        assert_eq!(jitter_us(&[]), 0);
        assert_eq!(jitter_us(&[5_000]), 0);
        assert_eq!(jitter_us(&[4_000, 6_000, 5_000]), 1_500);
    }
}
