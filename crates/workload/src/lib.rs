//! Declarative netbench-style application workloads over the discrete-event
//! engine: what ECN actually *buys* an application.
//!
//! The paper measures who marks and mirrors ECN in the wild; this crate
//! closes the loop by running the two evaluation applications the PEMI
//! line of work uses — bulk HTTP-style transfers (goodput, flow completion
//! time) and real-time media streaming (frame lateness, jitter) — over the
//! simulated bottleneck, under three conditions of the *same* scenario:
//!
//! * **ecn-on** — ECT(0) traffic, AQM CE marks close the feedback loop;
//! * **ecn-off** — not-ECT traffic, tail drop is the only signal;
//! * **ce-blackhole** — ECT(0) traffic whose CE marks a downstream hop
//!   erases ([`qem_netsim::EcnPolicy::EraseCe`]): the broken-path failure
//!   mode where everyone pays for ECN and nobody receives it.
//!
//! A [`Scenario`] is pure data; [`Scenario::run`] lowers it onto
//! [`qem_netsim::EngineCore`] and returns a deterministic
//! [`WorkloadReport`].  [`Scenario::run_all`] produces the cross-variant
//! [`WorkloadComparison`] the `netbench` example renders — byte-identical
//! across worker counts and scheduler implementations, pinned by a golden
//! snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod report;
pub mod scenario;

pub use apps::{jitter_us, BulkAppFlow, RtcAppFlow, MSS};
pub use report::{
    percentile, BulkOutcome, LoadOutcome, RtcOutcome, WorkloadComparison, WorkloadReport,
};
pub use scenario::{AppSpec, BottleneckSpec, EcnVariant, Scenario, Transport};
