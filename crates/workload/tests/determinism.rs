//! Determinism gates for the workload layer.
//!
//! A scenario run must be a pure function of `(scenario, variant)`:
//!
//! * the production [`TimerWheel`](qem_netsim::TimerWheel) scheduler and
//!   the binary-heap oracle must produce identical reports;
//! * running the variants through [`ShardedExecutor`] must produce the same
//!   rendered comparison for every worker count, byte for byte — the same
//!   property CI's examples-smoke job checks on `examples/netbench.rs`.

use qem_core::executor::ShardedExecutor;
use qem_workload::{EcnVariant, Scenario, WorkloadComparison};

fn scenario() -> Scenario {
    Scenario::netbench_default(7)
}

fn comparison_with_workers(workers: usize) -> String {
    let scenario = scenario();
    let reports = ShardedExecutor::new(workers).run(&EcnVariant::ALL, |v| scenario.run(*v));
    WorkloadComparison {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        reports,
    }
    .to_string()
}

#[test]
fn timer_wheel_and_heap_oracle_agree_on_every_variant() {
    let scenario = scenario();
    for variant in EcnVariant::ALL {
        let wheel = scenario.run(variant);
        let heap = scenario.run_heap(variant);
        assert_eq!(
            wheel,
            heap,
            "scenario diverged between schedulers under {}",
            variant.label()
        );
    }
}

#[test]
fn rendered_comparison_is_byte_identical_across_worker_counts() {
    let sequential = comparison_with_workers(1);
    for workers in [2, 4, 0] {
        assert_eq!(
            sequential,
            comparison_with_workers(workers),
            "comparison drifted between 1 and {workers} workers"
        );
    }
}
