//! ECN codepoints and DSCP values carried in the IP traffic-class octet.
//!
//! RFC 3168 splits the former IPv4 ToS octet (and the IPv6 traffic-class
//! octet) into a six-bit DSCP field and a two-bit ECN field.  The two ECN
//! bits encode four codepoints; routers that participate in ECN replace
//! `ECT(0)` / `ECT(1)` with `CE` instead of dropping the packet.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two-bit ECN codepoint of an IP packet (RFC 3168 §5).
///
/// The numeric values are the on-the-wire bit patterns.  Note the asymmetry
/// the paper calls out in §7.1: `ECT(1)` is `0b01` and `ECT(0)` is `0b10`,
/// which invites implementation mix-ups.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
#[repr(u8)]
pub enum EcnCodepoint {
    /// `00` — the transport does not support ECN; routers drop on congestion.
    #[default]
    NotEct = 0b00,
    /// `01` — ECN-capable transport, codepoint 1.  Redefined by L4S (RFC 9331)
    /// to request low-latency (aggressive) marking.
    Ect1 = 0b01,
    /// `10` — ECN-capable transport, codepoint 0.  The codepoint classic
    /// senders (and the study's probes) set.
    Ect0 = 0b10,
    /// `11` — congestion experienced; set by a router instead of dropping.
    Ce = 0b11,
}

impl EcnCodepoint {
    /// All four codepoints, in ascending wire order.
    pub const ALL: [EcnCodepoint; 4] = [
        EcnCodepoint::NotEct,
        EcnCodepoint::Ect1,
        EcnCodepoint::Ect0,
        EcnCodepoint::Ce,
    ];

    /// Decode from the low two bits of a traffic-class octet.
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => EcnCodepoint::NotEct,
            0b01 => EcnCodepoint::Ect1,
            0b10 => EcnCodepoint::Ect0,
            _ => EcnCodepoint::Ce,
        }
    }

    /// The two-bit wire representation.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Whether this codepoint declares an ECN-capable transport
    /// (`ECT(0)`, `ECT(1)`) or an already-applied mark (`CE`).
    pub fn is_ect_or_ce(self) -> bool {
        self != EcnCodepoint::NotEct
    }

    /// Whether the codepoint is one of the two ECT values (excluding `CE`).
    pub fn is_ect(self) -> bool {
        matches!(self, EcnCodepoint::Ect0 | EcnCodepoint::Ect1)
    }
}

impl fmt::Display for EcnCodepoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EcnCodepoint::NotEct => "not-ECT",
            EcnCodepoint::Ect1 => "ECT(1)",
            EcnCodepoint::Ect0 => "ECT(0)",
            EcnCodepoint::Ce => "CE",
        };
        f.write_str(s)
    }
}

/// A six-bit Differentiated Services codepoint.
///
/// The study's tracebox analysis distinguishes routers that rewrite only the
/// DSCP bits (legitimate) from routers that bleach the whole ToS octet and
/// thereby clear ECN (the impairment attributed to AS 1299 in §6.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Dscp(u8);

impl Dscp {
    /// Default forwarding (best effort).
    pub const BEST_EFFORT: Dscp = Dscp(0);
    /// Expedited forwarding (EF, RFC 3246).
    pub const EF: Dscp = Dscp(46);
    /// Class selector 1 (low priority / scavenger-adjacent).
    pub const CS1: Dscp = Dscp(8);

    /// Build a DSCP value; the argument is masked to six bits.
    pub fn new(value: u8) -> Self {
        Dscp(value & 0x3f)
    }

    /// The six-bit value.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Dscp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DSCP({})", self.0)
    }
}

/// Combine a DSCP value and an ECN codepoint into a traffic-class octet.
pub fn traffic_class(dscp: Dscp, ecn: EcnCodepoint) -> u8 {
    (dscp.value() << 2) | ecn.bits()
}

/// Split a traffic-class octet into its DSCP and ECN components.
pub fn split_traffic_class(octet: u8) -> (Dscp, EcnCodepoint) {
    (Dscp::new(octet >> 2), EcnCodepoint::from_bits(octet))
}

/// Per-codepoint counters, as kept by QUIC endpoints for ACK_ECN frames and by
/// the study's eBPF-style instrumentation of TCP sockets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcnCounts {
    /// Number of packets received with `ECT(0)`.
    pub ect0: u64,
    /// Number of packets received with `ECT(1)`.
    pub ect1: u64,
    /// Number of packets received with `CE`.
    pub ce: u64,
}

impl EcnCounts {
    /// Counters with all three fields zero.
    pub const ZERO: EcnCounts = EcnCounts {
        ect0: 0,
        ect1: 0,
        ce: 0,
    };

    /// Record one received codepoint. `not-ECT` packets are not counted,
    /// matching RFC 9000 §13.4.1.
    pub fn record(&mut self, ecn: EcnCodepoint) {
        match ecn {
            EcnCodepoint::Ect0 => self.ect0 += 1,
            EcnCodepoint::Ect1 => self.ect1 += 1,
            EcnCodepoint::Ce => self.ce += 1,
            EcnCodepoint::NotEct => {}
        }
    }

    /// Sum of all three counters.
    pub fn total(&self) -> u64 {
        self.ect0 + self.ect1 + self.ce
    }

    /// Component-wise saturating difference `self - earlier`.
    pub fn saturating_sub(&self, earlier: &EcnCounts) -> EcnCounts {
        EcnCounts {
            ect0: self.ect0.saturating_sub(earlier.ect0),
            ect1: self.ect1.saturating_sub(earlier.ect1),
            ce: self.ce.saturating_sub(earlier.ce),
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &EcnCounts) -> EcnCounts {
        EcnCounts {
            ect0: self.ect0 + other.ect0,
            ect1: self.ect1 + other.ect1,
            ce: self.ce + other.ce,
        }
    }

    /// True if every component of `self` is `>=` the corresponding component
    /// of `other` (monotonicity check used by ECN validation).
    pub fn dominates(&self, other: &EcnCounts) -> bool {
        self.ect0 >= other.ect0 && self.ect1 >= other.ect1 && self.ce >= other.ce
    }
}

impl fmt::Display for EcnCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ect0={} ect1={} ce={}", self.ect0, self.ect1, self.ce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codepoint_bits_round_trip() {
        for cp in EcnCodepoint::ALL {
            assert_eq!(EcnCodepoint::from_bits(cp.bits()), cp);
        }
    }

    #[test]
    fn ect0_and_ect1_have_the_confusable_encoding() {
        // The paper (§7.1) notes ECT(0) = 0b10 and ECT(1) = 0b01; keep it that way.
        assert_eq!(EcnCodepoint::Ect0.bits(), 0b10);
        assert_eq!(EcnCodepoint::Ect1.bits(), 0b01);
    }

    #[test]
    fn from_bits_ignores_upper_bits() {
        assert_eq!(EcnCodepoint::from_bits(0b1111_1110), EcnCodepoint::Ect0);
    }

    #[test]
    fn traffic_class_round_trip() {
        for dscp in [0u8, 1, 8, 46, 63] {
            for ecn in EcnCodepoint::ALL {
                let tc = traffic_class(Dscp::new(dscp), ecn);
                let (d, e) = split_traffic_class(tc);
                assert_eq!(d.value(), dscp);
                assert_eq!(e, ecn);
            }
        }
    }

    #[test]
    fn dscp_masks_to_six_bits() {
        assert_eq!(Dscp::new(0xff).value(), 0x3f);
    }

    #[test]
    fn counts_record_and_total() {
        let mut c = EcnCounts::ZERO;
        c.record(EcnCodepoint::Ect0);
        c.record(EcnCodepoint::Ect0);
        c.record(EcnCodepoint::Ce);
        c.record(EcnCodepoint::NotEct);
        assert_eq!(
            c,
            EcnCounts {
                ect0: 2,
                ect1: 0,
                ce: 1
            }
        );
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn counts_domination() {
        let a = EcnCounts {
            ect0: 5,
            ect1: 0,
            ce: 2,
        };
        let b = EcnCounts {
            ect0: 4,
            ect1: 0,
            ce: 2,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
    }

    #[test]
    fn counts_saturating_sub() {
        let a = EcnCounts {
            ect0: 5,
            ect1: 1,
            ce: 2,
        };
        let b = EcnCounts {
            ect0: 7,
            ect1: 0,
            ce: 2,
        };
        assert_eq!(
            a.saturating_sub(&b),
            EcnCounts {
                ect0: 0,
                ect1: 1,
                ce: 0
            }
        );
    }

    #[test]
    fn display_matches_rfc_names() {
        assert_eq!(EcnCodepoint::Ect0.to_string(), "ECT(0)");
        assert_eq!(EcnCodepoint::Ce.to_string(), "CE");
        assert_eq!(EcnCodepoint::NotEct.to_string(), "not-ECT");
    }
}
