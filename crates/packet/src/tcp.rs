//! TCP header encoding and decoding with the ECN-relevant flags (RFC 9293 / RFC 3168).
//!
//! The measurement study only needs the parts of TCP that interact with ECN:
//! the handshake flags used to negotiate ECN (`SYN` + `ECE` + `CWR`,
//! answered by `SYN`+`ACK`+`ECE`), the `ECE` echo of received `CE` marks and
//! the `CWR` acknowledgement of that echo.  Options other than MSS are not
//! modelled.

use crate::error::PacketError;
use crate::ip::{pseudo_header_checksum, IpProtocol};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags, including the ECN nonce/echo bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Congestion window reduced.
    pub cwr: bool,
    /// ECN echo.
    pub ece: bool,
    /// Urgent pointer significant (unused by the study, kept for fidelity).
    pub urg: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
    /// Push function.
    pub psh: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Synchronise sequence numbers.
    pub syn: bool,
    /// No more data from sender.
    pub fin: bool,
}

impl TcpFlags {
    /// Flags of an ECN-setup SYN (`SYN` + `ECE` + `CWR`, RFC 3168 §6.1.1).
    pub const ECN_SETUP_SYN: TcpFlags = TcpFlags {
        cwr: true,
        ece: true,
        urg: false,
        ack: false,
        psh: false,
        rst: false,
        syn: true,
        fin: false,
    };

    /// Encode into the flag octet.
    pub fn to_byte(self) -> u8 {
        (u8::from(self.cwr) << 7)
            | (u8::from(self.ece) << 6)
            | (u8::from(self.urg) << 5)
            | (u8::from(self.ack) << 4)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.syn) << 1)
            | u8::from(self.fin)
    }

    /// Decode from the flag octet.
    pub fn from_byte(b: u8) -> Self {
        TcpFlags {
            cwr: b & 0x80 != 0,
            ece: b & 0x40 != 0,
            urg: b & 0x20 != 0,
            ack: b & 0x10 != 0,
            psh: b & 0x08 != 0,
            rst: b & 0x04 != 0,
            syn: b & 0x02 != 0,
            fin: b & 0x01 != 0,
        }
    }

    /// True if this is an ECN-setup SYN (SYN set, ACK clear, ECE and CWR set).
    pub fn is_ecn_setup_syn(self) -> bool {
        self.syn && !self.ack && self.ece && self.cwr
    }

    /// True if this is an ECN-setup SYN-ACK (SYN, ACK and ECE set, CWR clear).
    pub fn is_ecn_setup_syn_ack(self) -> bool {
        self.syn && self.ack && self.ece && !self.cwr
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        for (set, name) in [
            (self.syn, "SYN"),
            (self.ack, "ACK"),
            (self.fin, "FIN"),
            (self.rst, "RST"),
            (self.psh, "PSH"),
            (self.urg, "URG"),
            (self.ece, "ECE"),
            (self.cwr, "CWR"),
        ] {
            if set {
                parts.push(name);
            }
        }
        write!(f, "[{}]", parts.join(","))
    }
}

/// A TCP header without options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Construct a header with a default 64 KiB window.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 0xffff,
        }
    }

    /// Encode the header followed by `payload`, computing the checksum over
    /// the pseudo header for `src`/`dst`.
    pub fn encode(&self, src: IpAddr, dst: IpAddr, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(TCP_HEADER_LEN + payload.len());
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.ack.to_be_bytes());
        buf.push(((TCP_HEADER_LEN / 4) as u8) << 4); // data offset, no options
        buf.push(self.flags.to_byte());
        buf.extend_from_slice(&self.window.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&[0, 0]); // urgent pointer
        buf.extend_from_slice(payload);
        let csum = pseudo_header_checksum(src, dst, IpProtocol::Tcp, &buf);
        buf[16..18].copy_from_slice(&csum.to_be_bytes());
        buf
    }

    /// Decode a TCP header; returns the header and the payload slice.
    pub fn decode(buf: &[u8]) -> Result<(Self, &[u8])> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "tcp header",
                needed: TCP_HEADER_LEN,
                available: buf.len(),
            });
        }
        let data_offset = ((buf[12] >> 4) as usize) * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > buf.len() {
            return Err(PacketError::InvalidField {
                what: "tcp header",
                reason: "data offset inconsistent with buffer",
            });
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags::from_byte(buf[13]),
                window: u16::from_be_bytes([buf[14], buf[15]]),
            },
            &buf[data_offset..],
        ))
    }

    /// Verify the TCP checksum of an encoded segment.
    pub fn verify_checksum(src: IpAddr, dst: IpAddr, segment: &[u8]) -> bool {
        if segment.len() < TCP_HEADER_LEN {
            return false;
        }
        pseudo_header_checksum(src, dst, IpProtocol::Tcp, segment) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(172, 16, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(172, 16, 0, 2)),
        )
    }

    #[test]
    fn flags_round_trip() {
        for byte in 0..=255u8 {
            assert_eq!(TcpFlags::from_byte(byte).to_byte(), byte);
        }
    }

    #[test]
    fn ecn_setup_flag_predicates() {
        assert!(TcpFlags::ECN_SETUP_SYN.is_ecn_setup_syn());
        let syn_ack = TcpFlags {
            syn: true,
            ack: true,
            ece: true,
            ..TcpFlags::default()
        };
        assert!(syn_ack.is_ecn_setup_syn_ack());
        assert!(!syn_ack.is_ecn_setup_syn());
        let plain_syn = TcpFlags {
            syn: true,
            ..TcpFlags::default()
        };
        assert!(!plain_syn.is_ecn_setup_syn());
    }

    #[test]
    fn header_round_trip() {
        let (src, dst) = addrs();
        let hdr = TcpHeader::new(50000, 443, 1000, 2000, TcpFlags::ECN_SETUP_SYN);
        let seg = hdr.encode(src, dst, b"GET /");
        let (decoded, payload) = TcpHeader::decode(&seg).unwrap();
        assert_eq!(decoded, hdr);
        assert_eq!(payload, b"GET /");
    }

    #[test]
    fn checksum_detects_corruption() {
        let (src, dst) = addrs();
        let mut seg =
            TcpHeader::new(50000, 443, 1, 0, TcpFlags::default()).encode(src, dst, b"data");
        assert!(TcpHeader::verify_checksum(src, dst, &seg));
        seg[4] ^= 1;
        assert!(!TcpHeader::verify_checksum(src, dst, &seg));
    }

    #[test]
    fn truncated_rejected() {
        assert!(TcpHeader::decode(&[0u8; 10]).is_err());
    }

    #[test]
    fn flags_display() {
        let s = TcpFlags::ECN_SETUP_SYN.to_string();
        assert!(s.contains("SYN") && s.contains("ECE") && s.contains("CWR"));
    }
}
