//! UDP header encoding and decoding (RFC 768).

use crate::error::PacketError;
use crate::ip::{pseudo_header_checksum, IpProtocol};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Length of a UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Construct a header.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader { src_port, dst_port }
    }

    /// Encode the header followed by `payload`, computing length and checksum
    /// over the pseudo header for `src`/`dst`.
    pub fn encode(&self, src: IpAddr, dst: IpAddr, payload: &[u8]) -> Vec<u8> {
        let len = (UDP_HEADER_LEN + payload.len()) as u16;
        let mut buf = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&len.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(payload);
        let csum = pseudo_header_checksum(src, dst, IpProtocol::Udp, &buf);
        // A computed checksum of zero is transmitted as all ones (RFC 768).
        let csum = if csum == 0 { 0xffff } else { csum };
        buf[6..8].copy_from_slice(&csum.to_be_bytes());
        buf
    }

    /// Decode a UDP header; returns the header and the payload slice.
    ///
    /// The checksum is *not* verified here because routers in the simulator
    /// legitimately rewrite IP-level fields that do not participate in the
    /// UDP checksum; verification is available via [`UdpHeader::verify_checksum`].
    pub fn decode(buf: &[u8]) -> Result<(Self, &[u8])> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "udp header",
                needed: UDP_HEADER_LEN,
                available: buf.len(),
            });
        }
        let src_port = u16::from_be_bytes([buf[0], buf[1]]);
        let dst_port = u16::from_be_bytes([buf[2], buf[3]]);
        let length = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        if length < UDP_HEADER_LEN || length > buf.len() {
            return Err(PacketError::InvalidField {
                what: "udp header",
                reason: "length field inconsistent with buffer",
            });
        }
        Ok((
            UdpHeader { src_port, dst_port },
            &buf[UDP_HEADER_LEN..length],
        ))
    }

    /// Verify the UDP checksum of an encoded segment for the given endpoints.
    pub fn verify_checksum(src: IpAddr, dst: IpAddr, segment: &[u8]) -> bool {
        if segment.len() < UDP_HEADER_LEN {
            return false;
        }
        pseudo_header_checksum(src, dst, IpProtocol::Udp, segment) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
        )
    }

    #[test]
    fn round_trip() {
        let (src, dst) = addrs();
        let hdr = UdpHeader::new(40000, 443);
        let seg = hdr.encode(src, dst, b"quic initial");
        let (decoded, payload) = UdpHeader::decode(&seg).unwrap();
        assert_eq!(decoded, hdr);
        assert_eq!(payload, b"quic initial");
    }

    #[test]
    fn checksum_verifies() {
        let (src, dst) = addrs();
        let seg = UdpHeader::new(1234, 443).encode(src, dst, b"payload");
        assert!(UdpHeader::verify_checksum(src, dst, &seg));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let (src, dst) = addrs();
        let mut seg = UdpHeader::new(1234, 443).encode(src, dst, b"payload!");
        seg[10] ^= 0x55;
        assert!(!UdpHeader::verify_checksum(src, dst, &seg));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            UdpHeader::decode(&[0, 1, 2]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_length_field_rejected() {
        let (src, dst) = addrs();
        let mut seg = UdpHeader::new(1, 2).encode(src, dst, b"abc");
        seg[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert!(UdpHeader::decode(&seg).is_err());
    }

    #[test]
    fn ipv6_checksum_round_trip() {
        let src: IpAddr = "2001:db8::1".parse().unwrap();
        let dst: IpAddr = "2001:db8::2".parse().unwrap();
        let seg = UdpHeader::new(5000, 443).encode(src, dst, b"h3");
        assert!(UdpHeader::verify_checksum(src, dst, &seg));
    }
}
