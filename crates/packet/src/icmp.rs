//! ICMPv4 and ICMPv6 messages used by the tracebox methodology.
//!
//! The path tracer (paper §4.2) sends QUIC Initial packets with increasing
//! TTLs; routers whose TTL expires answer with *time exceeded* messages that
//! quote the offending datagram.  The quotation is what lets the tracer see
//! which ECN / DSCP value the packet carried when it reached that hop.
//!
//! ICMPv4 quotes the IP header plus at least the first 8 bytes of the
//! transport payload (RFC 792); most modern routers quote more, and RFC 1812
//! recommends as much as fits.  ICMPv6 quotes as much of the packet as fits
//! in the minimum MTU (RFC 4443).  The simulator lets routers choose their
//! quote length so the tracer has to cope with short quotes.

use crate::error::PacketError;
use crate::ip::internet_checksum;
use crate::Result;
use serde::{Deserialize, Serialize};

/// ICMPv4 type for *time exceeded*.
pub const ICMPV4_TIME_EXCEEDED: u8 = 11;
/// ICMPv4 type for *destination unreachable*.
pub const ICMPV4_DEST_UNREACHABLE: u8 = 3;
/// ICMPv6 type for *time exceeded*.
pub const ICMPV6_TIME_EXCEEDED: u8 = 3;
/// ICMPv6 type for *destination unreachable*.
pub const ICMPV6_DEST_UNREACHABLE: u8 = 1;

/// Length of the fixed ICMP header (type, code, checksum, unused word).
pub const ICMP_HEADER_LEN: usize = 8;

/// The ICMP messages the simulator and tracer exchange.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpMessage {
    /// Time exceeded in transit (TTL reached zero at a router).
    TimeExceeded {
        /// Whether this is an ICMPv6 (true) or ICMPv4 (false) message.
        v6: bool,
        /// Quotation of the expired datagram, starting at its IP header.
        quote: Vec<u8>,
    },
    /// Destination unreachable (used for simulated administrative filtering).
    DestinationUnreachable {
        /// Whether this is an ICMPv6 (true) or ICMPv4 (false) message.
        v6: bool,
        /// ICMP code (e.g. 3 = port unreachable for ICMPv4).
        code: u8,
        /// Quotation of the rejected datagram.
        quote: Vec<u8>,
    },
}

impl IcmpMessage {
    /// The quoted original datagram bytes.
    pub fn quote(&self) -> &[u8] {
        match self {
            IcmpMessage::TimeExceeded { quote, .. } => quote,
            IcmpMessage::DestinationUnreachable { quote, .. } => quote,
        }
    }

    /// Whether this is a time-exceeded message.
    pub fn is_time_exceeded(&self) -> bool {
        matches!(self, IcmpMessage::TimeExceeded { .. })
    }

    /// Encode the message into ICMP bytes (type, code, checksum, unused, quote).
    pub fn encode(&self) -> Vec<u8> {
        let (ty, code, quote) = match self {
            IcmpMessage::TimeExceeded { v6, quote } => {
                let ty = if *v6 {
                    ICMPV6_TIME_EXCEEDED
                } else {
                    ICMPV4_TIME_EXCEEDED
                };
                (ty, 0u8, quote)
            }
            IcmpMessage::DestinationUnreachable { v6, code, quote } => {
                let ty = if *v6 {
                    ICMPV6_DEST_UNREACHABLE
                } else {
                    ICMPV4_DEST_UNREACHABLE
                };
                (ty, *code, quote)
            }
        };
        let mut buf = Vec::with_capacity(ICMP_HEADER_LEN + quote.len());
        buf.push(ty);
        buf.push(code);
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&[0, 0, 0, 0]); // unused
        buf.extend_from_slice(quote);
        let csum = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&csum.to_be_bytes());
        buf
    }

    /// Decode an ICMP message.  `v6` selects the ICMPv6 type space.
    pub fn decode(buf: &[u8], v6: bool) -> Result<Self> {
        if buf.len() < ICMP_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "icmp message",
                needed: ICMP_HEADER_LEN,
                available: buf.len(),
            });
        }
        if internet_checksum(buf) != 0 {
            return Err(PacketError::BadChecksum {
                what: "icmp message",
            });
        }
        let ty = buf[0];
        let code = buf[1];
        let quote = buf[ICMP_HEADER_LEN..].to_vec();
        let time_exceeded = if v6 {
            ICMPV6_TIME_EXCEEDED
        } else {
            ICMPV4_TIME_EXCEEDED
        };
        let unreachable = if v6 {
            ICMPV6_DEST_UNREACHABLE
        } else {
            ICMPV4_DEST_UNREACHABLE
        };
        if ty == time_exceeded {
            Ok(IcmpMessage::TimeExceeded { v6, quote })
        } else if ty == unreachable {
            Ok(IcmpMessage::DestinationUnreachable { v6, code, quote })
        } else {
            Err(PacketError::InvalidField {
                what: "icmp message",
                reason: "unsupported icmp type",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_exceeded_round_trip_v4() {
        let msg = IcmpMessage::TimeExceeded {
            v6: false,
            quote: vec![0x45, 0x02, 0x00, 0x1c, 1, 2, 3, 4],
        };
        let bytes = msg.encode();
        assert_eq!(bytes[0], ICMPV4_TIME_EXCEEDED);
        let decoded = IcmpMessage::decode(&bytes, false).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn time_exceeded_round_trip_v6() {
        let msg = IcmpMessage::TimeExceeded {
            v6: true,
            quote: vec![0x60, 0, 0, 0],
        };
        let bytes = msg.encode();
        assert_eq!(bytes[0], ICMPV6_TIME_EXCEEDED);
        let decoded = IcmpMessage::decode(&bytes, true).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn unreachable_round_trip() {
        let msg = IcmpMessage::DestinationUnreachable {
            v6: false,
            code: 3,
            quote: vec![1, 2, 3],
        };
        let decoded = IcmpMessage::decode(&msg.encode(), false).unwrap();
        assert_eq!(decoded, msg);
        assert!(!decoded.is_time_exceeded());
    }

    #[test]
    fn checksum_verified() {
        let msg = IcmpMessage::TimeExceeded {
            v6: false,
            quote: vec![9; 32],
        };
        let mut bytes = msg.encode();
        bytes[10] ^= 0xa5;
        assert_eq!(
            IcmpMessage::decode(&bytes, false),
            Err(PacketError::BadChecksum {
                what: "icmp message"
            })
        );
    }

    #[test]
    fn truncated_rejected() {
        assert!(IcmpMessage::decode(&[11, 0, 0], false).is_err());
    }

    #[test]
    fn wrong_type_space_rejected() {
        // An ICMPv4 time-exceeded type (11) is not a valid ICMPv6 time-exceeded.
        let msg = IcmpMessage::TimeExceeded {
            v6: false,
            quote: vec![],
        };
        let bytes = msg.encode();
        assert!(IcmpMessage::decode(&bytes, true).is_err());
    }
}
