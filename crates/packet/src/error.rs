//! Error type shared by all decoders in this crate.

use std::fmt;

/// Errors produced while decoding (or, rarely, encoding) wire formats.
///
/// Parsers in this crate never panic on untrusted input; every malformed
/// byte sequence maps onto one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer ended before the fixed-size portion of a header was complete.
    Truncated {
        /// Header or structure being decoded.
        what: &'static str,
        /// Bytes that were required.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// A version / type discriminator did not match any supported value.
    UnsupportedVersion {
        /// Header or structure being decoded.
        what: &'static str,
        /// The offending value.
        value: u32,
    },
    /// A field carried a value that is structurally invalid.
    InvalidField {
        /// Header or structure being decoded.
        what: &'static str,
        /// Description of the violated constraint.
        reason: &'static str,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Header whose checksum failed.
        what: &'static str,
    },
    /// A variable-length integer was malformed or exceeded the buffer.
    InvalidVarint,
    /// A QUIC packet used an unknown or unsupported long-header packet type.
    UnknownPacketType(u8),
    /// A QUIC frame type is not supported by this implementation.
    UnknownFrameType(u64),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            PacketError::UnsupportedVersion { what, value } => {
                write!(f, "unsupported version {value:#x} while decoding {what}")
            }
            PacketError::InvalidField { what, reason } => {
                write!(f, "invalid field in {what}: {reason}")
            }
            PacketError::BadChecksum { what } => write!(f, "checksum mismatch in {what}"),
            PacketError::InvalidVarint => write!(f, "malformed variable-length integer"),
            PacketError::UnknownPacketType(t) => write!(f, "unknown QUIC packet type {t:#x}"),
            PacketError::UnknownFrameType(t) => write!(f, "unknown QUIC frame type {t:#x}"),
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PacketError::Truncated {
            what: "ipv4 header",
            needed: 20,
            available: 7,
        };
        let s = e.to_string();
        assert!(s.contains("ipv4 header"));
        assert!(s.contains("20"));
        assert!(s.contains("7"));
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn std::error::Error> = Box::new(PacketError::InvalidVarint);
        assert_eq!(e.to_string(), "malformed variable-length integer");
    }
}
