//! IPv4 and IPv6 headers with explicit DSCP / ECN handling.
//!
//! Only the fields the measurement pipeline and the path simulator care about
//! are modelled as structured data; IPv4 options are not supported (the study
//! never emits them) and are rejected on decode with an explicit error rather
//! than silently skipped.

use crate::ecn::{split_traffic_class, traffic_class, Dscp, EcnCodepoint};
use crate::error::PacketError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Transport protocol numbers used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum IpProtocol {
    /// ICMP for IPv4 (protocol 1).
    Icmp = 1,
    /// TCP (protocol 6).
    Tcp = 6,
    /// UDP (protocol 17).
    Udp = 17,
    /// ICMPv6 (next header 58).
    Icmpv6 = 58,
}

impl IpProtocol {
    /// Decode a protocol / next-header number.
    pub fn from_u8(value: u8) -> Result<Self> {
        match value {
            1 => Ok(IpProtocol::Icmp),
            6 => Ok(IpProtocol::Tcp),
            17 => Ok(IpProtocol::Udp),
            58 => Ok(IpProtocol::Icmpv6),
            _ => Err(PacketError::InvalidField {
                what: "ip protocol",
                reason: "unsupported protocol number",
            }),
        }
    }

    /// The wire value.
    pub fn number(self) -> u8 {
        self as u8
    }
}

/// Minimum length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of the fixed IPv6 header.
pub const IPV6_HEADER_LEN: usize = 40;

/// An IPv4 header (RFC 791) without options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Differentiated services codepoint (upper six bits of the ToS octet).
    pub dscp: Dscp,
    /// ECN codepoint (lower two bits of the ToS octet).
    pub ecn: EcnCodepoint,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// IP identification field (used only for debugging / tracing realism).
    pub identification: u16,
}

impl Ipv4Header {
    /// Create a header with best-effort DSCP, `not-ECT`, and identification 0.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, ttl: u8) -> Self {
        Ipv4Header {
            src,
            dst,
            dscp: Dscp::BEST_EFFORT,
            ecn: EcnCodepoint::NotEct,
            ttl,
            protocol,
            identification: 0,
        }
    }

    /// Return a copy with the given ECN codepoint.
    pub fn with_ecn(mut self, ecn: EcnCodepoint) -> Self {
        self.ecn = ecn;
        self
    }

    /// Return a copy with the given DSCP.
    pub fn with_dscp(mut self, dscp: Dscp) -> Self {
        self.dscp = dscp;
        self
    }

    /// Encode the header for a payload of `payload_len` bytes.
    ///
    /// The total-length field and the header checksum are computed here.
    pub fn encode(&self, payload_len: usize) -> Vec<u8> {
        let total_len = (IPV4_HEADER_LEN + payload_len) as u16;
        let mut buf = vec![0u8; IPV4_HEADER_LEN];
        buf[0] = (4 << 4) | 5; // version 4, IHL 5 words
        buf[1] = traffic_class(self.dscp, self.ecn);
        buf[2..4].copy_from_slice(&total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.identification.to_be_bytes());
        // flags: don't fragment, fragment offset 0
        buf[6] = 0b0100_0000;
        buf[7] = 0;
        buf[8] = self.ttl;
        buf[9] = self.protocol.number();
        // checksum at [10..12], computed below
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&buf);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        buf
    }

    /// Decode a header from the front of `buf`, verifying the checksum.
    ///
    /// Returns the header and its length in bytes (always 20; headers with
    /// options are rejected).
    pub fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "ipv4 header",
                needed: IPV4_HEADER_LEN,
                available: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(PacketError::UnsupportedVersion {
                what: "ipv4 header",
                value: version as u32,
            });
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(PacketError::InvalidField {
                what: "ipv4 header",
                reason: "options are not supported",
            });
        }
        if internet_checksum(&buf[..IPV4_HEADER_LEN]) != 0 {
            return Err(PacketError::BadChecksum {
                what: "ipv4 header",
            });
        }
        let (dscp, ecn) = split_traffic_class(buf[1]);
        let identification = u16::from_be_bytes([buf[4], buf[5]]);
        let ttl = buf[8];
        let protocol = IpProtocol::from_u8(buf[9])?;
        let src = Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]);
        let dst = Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]);
        Ok((
            Ipv4Header {
                src,
                dst,
                dscp,
                ecn,
                ttl,
                protocol,
                identification,
            },
            IPV4_HEADER_LEN,
        ))
    }
}

/// An IPv6 header (RFC 8200) without extension headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6Header {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Differentiated services codepoint (upper six bits of the traffic class).
    pub dscp: Dscp,
    /// ECN codepoint (lower two bits of the traffic class).
    pub ecn: EcnCodepoint,
    /// Hop limit (the IPv6 TTL).
    pub hop_limit: u8,
    /// Next header (payload protocol).
    pub next_header: IpProtocol,
    /// Flow label (20 bits).
    pub flow_label: u32,
}

impl Ipv6Header {
    /// Create a header with best-effort DSCP, `not-ECT` and flow label 0.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: IpProtocol, hop_limit: u8) -> Self {
        Ipv6Header {
            src,
            dst,
            dscp: Dscp::BEST_EFFORT,
            ecn: EcnCodepoint::NotEct,
            hop_limit,
            next_header,
            flow_label: 0,
        }
    }

    /// Return a copy with the given ECN codepoint.
    pub fn with_ecn(mut self, ecn: EcnCodepoint) -> Self {
        self.ecn = ecn;
        self
    }

    /// Encode the header for a payload of `payload_len` bytes.
    pub fn encode(&self, payload_len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; IPV6_HEADER_LEN];
        let tc = traffic_class(self.dscp, self.ecn) as u32;
        let word0 = (6u32 << 28) | (tc << 20) | (self.flow_label & 0x000f_ffff);
        buf[0..4].copy_from_slice(&word0.to_be_bytes());
        buf[4..6].copy_from_slice(&(payload_len as u16).to_be_bytes());
        buf[6] = self.next_header.number();
        buf[7] = self.hop_limit;
        buf[8..24].copy_from_slice(&self.src.octets());
        buf[24..40].copy_from_slice(&self.dst.octets());
        buf
    }

    /// Decode a header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        if buf.len() < IPV6_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "ipv6 header",
                needed: IPV6_HEADER_LEN,
                available: buf.len(),
            });
        }
        let word0 = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let version = word0 >> 28;
        if version != 6 {
            return Err(PacketError::UnsupportedVersion {
                what: "ipv6 header",
                value: version,
            });
        }
        let tc = ((word0 >> 20) & 0xff) as u8;
        let (dscp, ecn) = split_traffic_class(tc);
        let flow_label = word0 & 0x000f_ffff;
        let next_header = IpProtocol::from_u8(buf[6])?;
        let hop_limit = buf[7];
        let mut src = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&buf[24..40]);
        Ok((
            Ipv6Header {
                src: Ipv6Addr::from(src),
                dst: Ipv6Addr::from(dst),
                dscp,
                ecn,
                hop_limit,
                next_header,
                flow_label,
            },
            IPV6_HEADER_LEN,
        ))
    }
}

/// Either an IPv4 or an IPv6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IpHeader {
    /// IPv4.
    V4(Ipv4Header),
    /// IPv6.
    V6(Ipv6Header),
}

impl IpHeader {
    /// Source address.
    pub fn src(&self) -> IpAddr {
        match self {
            IpHeader::V4(h) => IpAddr::V4(h.src),
            IpHeader::V6(h) => IpAddr::V6(h.src),
        }
    }

    /// Destination address.
    pub fn dst(&self) -> IpAddr {
        match self {
            IpHeader::V4(h) => IpAddr::V4(h.dst),
            IpHeader::V6(h) => IpAddr::V6(h.dst),
        }
    }

    /// ECN codepoint.
    pub fn ecn(&self) -> EcnCodepoint {
        match self {
            IpHeader::V4(h) => h.ecn,
            IpHeader::V6(h) => h.ecn,
        }
    }

    /// Overwrite the ECN codepoint (router re-marking / clearing).
    pub fn set_ecn(&mut self, ecn: EcnCodepoint) {
        match self {
            IpHeader::V4(h) => h.ecn = ecn,
            IpHeader::V6(h) => h.ecn = ecn,
        }
    }

    /// DSCP value.
    pub fn dscp(&self) -> Dscp {
        match self {
            IpHeader::V4(h) => h.dscp,
            IpHeader::V6(h) => h.dscp,
        }
    }

    /// Overwrite the DSCP value (router bleaching).
    pub fn set_dscp(&mut self, dscp: Dscp) {
        match self {
            IpHeader::V4(h) => h.dscp = dscp,
            IpHeader::V6(h) => h.dscp = dscp,
        }
    }

    /// Remaining TTL / hop limit.
    pub fn ttl(&self) -> u8 {
        match self {
            IpHeader::V4(h) => h.ttl,
            IpHeader::V6(h) => h.hop_limit,
        }
    }

    /// Set the TTL / hop limit.
    pub fn set_ttl(&mut self, ttl: u8) {
        match self {
            IpHeader::V4(h) => h.ttl = ttl,
            IpHeader::V6(h) => h.hop_limit = ttl,
        }
    }

    /// Decrement the TTL, returning the new value.
    pub fn decrement_ttl(&mut self) -> u8 {
        let new = self.ttl().saturating_sub(1);
        self.set_ttl(new);
        new
    }

    /// Payload protocol.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            IpHeader::V4(h) => h.protocol,
            IpHeader::V6(h) => h.next_header,
        }
    }

    /// Whether this is an IPv6 header.
    pub fn is_v6(&self) -> bool {
        matches!(self, IpHeader::V6(_))
    }

    /// Encode header plus payload length metadata.
    pub fn encode(&self, payload_len: usize) -> Vec<u8> {
        match self {
            IpHeader::V4(h) => h.encode(payload_len),
            IpHeader::V6(h) => h.encode(payload_len),
        }
    }

    /// Decode either header variant based on the version nibble.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        if buf.is_empty() {
            return Err(PacketError::Truncated {
                what: "ip header",
                needed: 1,
                available: 0,
            });
        }
        match buf[0] >> 4 {
            4 => Ipv4Header::decode(buf).map(|(h, l)| (IpHeader::V4(h), l)),
            6 => Ipv6Header::decode(buf).map(|(h, l)| (IpHeader::V6(h), l)),
            v => Err(PacketError::UnsupportedVersion {
                what: "ip header",
                value: v as u32,
            }),
        }
    }
}

/// A full IP datagram: header plus transport payload bytes.
///
/// This is the unit the path simulator forwards hop by hop.  The payload is
/// opaque to routers except for the ICMP quotation logic, which re-encodes
/// the datagram via [`IpDatagram::to_bytes`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpDatagram {
    /// The network-layer header.
    pub header: IpHeader,
    /// Transport-layer payload (UDP / TCP / ICMP bytes).
    pub payload: Vec<u8>,
}

impl IpDatagram {
    /// Construct a datagram.
    pub fn new(header: IpHeader, payload: Vec<u8>) -> Self {
        IpDatagram { header, payload }
    }

    /// Serialise header and payload into one byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = self.header.encode(self.payload.len());
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Parse a datagram from bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let (header, hdr_len) = IpHeader::decode(buf)?;
        Ok(IpDatagram {
            header,
            payload: buf[hdr_len..].to_vec(),
        })
    }

    /// Total on-the-wire size in bytes.
    pub fn wire_len(&self) -> usize {
        let hdr = if self.header.is_v6() {
            IPV6_HEADER_LEN
        } else {
            IPV4_HEADER_LEN
        };
        hdr + self.payload.len()
    }
}

/// RFC 1071 Internet checksum over `data` (used by IPv4, ICMP, UDP, TCP).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Compute the transport checksum (UDP / TCP / ICMPv6) including the
/// pseudo-header for the given source/destination pair.
pub fn pseudo_header_checksum(
    src: IpAddr,
    dst: IpAddr,
    protocol: IpProtocol,
    transport_bytes: &[u8],
) -> u16 {
    let mut pseudo = Vec::with_capacity(40 + transport_bytes.len());
    match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            pseudo.extend_from_slice(&s.octets());
            pseudo.extend_from_slice(&d.octets());
            pseudo.push(0);
            pseudo.push(protocol.number());
            pseudo.extend_from_slice(&(transport_bytes.len() as u16).to_be_bytes());
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            pseudo.extend_from_slice(&s.octets());
            pseudo.extend_from_slice(&d.octets());
            pseudo.extend_from_slice(&(transport_bytes.len() as u32).to_be_bytes());
            pseudo.extend_from_slice(&[0, 0, 0, protocol.number()]);
        }
        _ => {
            // Mixed address families cannot occur on a real path; fall back to
            // a checksum over the transport bytes only so the caller still
            // gets a deterministic value.
        }
    }
    pseudo.extend_from_slice(transport_bytes);
    internet_checksum(&pseudo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(93, 184, 216, 34),
            IpProtocol::Udp,
            64,
        )
        .with_ecn(EcnCodepoint::Ect0)
        .with_dscp(Dscp::new(12))
    }

    #[test]
    fn ipv4_round_trip() {
        let hdr = v4();
        let bytes = hdr.encode(100);
        let (decoded, len) = Ipv4Header::decode(&bytes).unwrap();
        assert_eq!(len, IPV4_HEADER_LEN);
        assert_eq!(decoded, hdr);
    }

    #[test]
    fn ipv4_total_length_and_checksum() {
        let bytes = v4().encode(80);
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 100);
        assert_eq!(internet_checksum(&bytes), 0);
    }

    #[test]
    fn ipv4_detects_corruption() {
        let mut bytes = v4().encode(0);
        bytes[8] ^= 0xff; // flip TTL without fixing the checksum
        assert_eq!(
            Ipv4Header::decode(&bytes),
            Err(PacketError::BadChecksum {
                what: "ipv4 header"
            })
        );
    }

    #[test]
    fn ipv4_truncated() {
        let bytes = v4().encode(0);
        assert!(matches!(
            Ipv4Header::decode(&bytes[..10]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn ipv6_round_trip() {
        let hdr = Ipv6Header::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            IpProtocol::Udp,
            64,
        )
        .with_ecn(EcnCodepoint::Ect1);
        let bytes = hdr.encode(42);
        let (decoded, len) = Ipv6Header::decode(&bytes).unwrap();
        assert_eq!(len, IPV6_HEADER_LEN);
        assert_eq!(decoded, hdr);
        assert_eq!(u16::from_be_bytes([bytes[4], bytes[5]]), 42);
    }

    #[test]
    fn ip_header_enum_dispatch() {
        let mut hdr = IpHeader::V4(v4());
        assert_eq!(hdr.ecn(), EcnCodepoint::Ect0);
        hdr.set_ecn(EcnCodepoint::Ce);
        assert_eq!(hdr.ecn(), EcnCodepoint::Ce);
        assert_eq!(hdr.ttl(), 64);
        assert_eq!(hdr.decrement_ttl(), 63);
        assert_eq!(hdr.protocol(), IpProtocol::Udp);
        assert!(!hdr.is_v6());
    }

    #[test]
    fn datagram_round_trip() {
        let dgram = IpDatagram::new(IpHeader::V4(v4()), vec![1, 2, 3, 4, 5]);
        let bytes = dgram.to_bytes();
        let parsed = IpDatagram::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, dgram);
        assert_eq!(dgram.wire_len(), IPV4_HEADER_LEN + 5);
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_odd_length() {
        assert_eq!(internet_checksum(&[0xff]), !0xff00);
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(IpProtocol::Udp.number(), 17);
        assert_eq!(IpProtocol::from_u8(6).unwrap(), IpProtocol::Tcp);
        assert!(IpProtocol::from_u8(89).is_err());
    }

    #[test]
    fn ttl_decrement_saturates_at_zero() {
        let mut hdr = IpHeader::V4(v4());
        hdr.set_ttl(0);
        assert_eq!(hdr.decrement_ttl(), 0);
    }
}
