//! QUIC packet headers: long headers (Initial / Handshake), short headers,
//! and version negotiation packets.
//!
//! Packet numbers are carried in the clear with an explicit length (1–4
//! bytes, encoded in the two low bits of the first byte exactly as RFC 9000
//! specifies) because header protection is deliberately not implemented
//! (see the crate-level documentation).

use crate::error::PacketError;
use crate::quic::varint::{decode_varint, encode_varint};
use crate::quic::version::QuicVersion;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A QUIC connection ID (0–20 bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ConnectionId(Vec<u8>);

impl ConnectionId {
    /// Maximum connection-ID length permitted by RFC 9000.
    pub const MAX_LEN: usize = 20;

    /// Build a connection ID, truncating to [`ConnectionId::MAX_LEN`] bytes.
    pub fn new(bytes: &[u8]) -> Self {
        ConnectionId(bytes[..bytes.len().min(Self::MAX_LEN)].to_vec())
    }

    /// Build a connection ID from a `u64`, as the endpoints in this
    /// reproduction do (8-byte IDs).
    pub fn from_u64(value: u64) -> Self {
        ConnectionId(value.to_be_bytes().to_vec())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the connection ID is zero length.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Long-header packet types (RFC 9000 §17.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum LongPacketType {
    /// Initial packet (carries a token length field).
    Initial = 0b00,
    /// 0-RTT packet (unused by the measurement client but decodable).
    ZeroRtt = 0b01,
    /// Handshake packet.
    Handshake = 0b10,
    /// Retry packet.
    Retry = 0b11,
}

impl LongPacketType {
    fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => LongPacketType::Initial,
            0b01 => LongPacketType::ZeroRtt,
            0b10 => LongPacketType::Handshake,
            _ => LongPacketType::Retry,
        }
    }
}

/// A decoded QUIC packet header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketHeader {
    /// A long-header packet (Initial, Handshake, …).
    Long {
        /// Packet type.
        ty: LongPacketType,
        /// Protocol version.
        version: QuicVersion,
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Source connection ID.
        scid: ConnectionId,
        /// Token (Initial packets only; empty otherwise).
        token: Vec<u8>,
        /// Packet number.
        packet_number: u64,
    },
    /// A short-header (1-RTT) packet.
    Short {
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Packet number.
        packet_number: u64,
    },
    /// A version negotiation packet listing the server's supported versions.
    VersionNegotiation {
        /// Destination connection ID (the client's source connection ID).
        dcid: ConnectionId,
        /// Source connection ID (the client's destination connection ID).
        scid: ConnectionId,
        /// Versions the server supports.
        supported: Vec<QuicVersion>,
    },
}

impl PacketHeader {
    /// The packet number, if this header type carries one.
    pub fn packet_number(&self) -> Option<u64> {
        match self {
            PacketHeader::Long { packet_number, .. }
            | PacketHeader::Short { packet_number, .. } => Some(*packet_number),
            PacketHeader::VersionNegotiation { .. } => None,
        }
    }

    /// The version of a long-header packet.
    pub fn version(&self) -> Option<QuicVersion> {
        match self {
            PacketHeader::Long { version, .. } => Some(*version),
            _ => None,
        }
    }

    /// True for Initial long-header packets.
    pub fn is_initial(&self) -> bool {
        matches!(
            self,
            PacketHeader::Long {
                ty: LongPacketType::Initial,
                ..
            }
        )
    }
}

/// A full (plaintext) QUIC packet: header plus frame payload bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuicPacket {
    /// The packet header.
    pub header: PacketHeader,
    /// Encoded frames.
    pub payload: Vec<u8>,
}

/// Number of bytes used to encode packet numbers on the wire.
const PN_LEN: usize = 4;

impl QuicPacket {
    /// Construct a packet.
    pub fn new(header: PacketHeader, payload: Vec<u8>) -> Self {
        QuicPacket { header, payload }
    }

    /// Encode the packet.  Initial packets are *not* padded here; datagram
    /// padding to [`crate::quic::MIN_INITIAL_SIZE`] is the sender's job.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.payload.len());
        match &self.header {
            PacketHeader::Long {
                ty,
                version,
                dcid,
                scid,
                token,
                packet_number,
            } => {
                // form=1, fixed=1, type, reserved=0, pn_len-1
                let first = 0b1100_0000 | ((*ty as u8) << 4) | ((PN_LEN - 1) as u8);
                buf.push(first);
                buf.extend_from_slice(&version.to_u32().to_be_bytes());
                buf.push(dcid.len() as u8);
                buf.extend_from_slice(dcid.as_bytes());
                buf.push(scid.len() as u8);
                buf.extend_from_slice(scid.as_bytes());
                if *ty == LongPacketType::Initial {
                    encode_varint(&mut buf, token.len() as u64);
                    buf.extend_from_slice(token);
                }
                // Length field: packet number + payload.
                encode_varint(&mut buf, (PN_LEN + self.payload.len()) as u64);
                buf.extend_from_slice(&(*packet_number as u32).to_be_bytes());
                buf.extend_from_slice(&self.payload);
            }
            PacketHeader::Short {
                dcid,
                packet_number,
            } => {
                let first = 0b0100_0000 | ((PN_LEN - 1) as u8);
                buf.push(first);
                buf.extend_from_slice(dcid.as_bytes());
                buf.extend_from_slice(&(*packet_number as u32).to_be_bytes());
                buf.extend_from_slice(&self.payload);
            }
            PacketHeader::VersionNegotiation {
                dcid,
                scid,
                supported,
            } => {
                buf.push(0b1000_0000);
                buf.extend_from_slice(&0u32.to_be_bytes());
                buf.push(dcid.len() as u8);
                buf.extend_from_slice(dcid.as_bytes());
                buf.push(scid.len() as u8);
                buf.extend_from_slice(scid.as_bytes());
                for v in supported {
                    buf.extend_from_slice(&v.to_u32().to_be_bytes());
                }
            }
        }
        buf
    }

    /// Decode one packet from the front of `buf`.
    ///
    /// `local_cid_len` is the length of connection IDs this endpoint issues;
    /// it is needed to delimit short headers.  Returns the packet and the
    /// number of bytes consumed, so coalesced datagrams can be processed by
    /// calling this in a loop.
    pub fn decode(buf: &[u8], local_cid_len: usize) -> Result<(Self, usize)> {
        if buf.is_empty() {
            return Err(PacketError::Truncated {
                what: "quic packet",
                needed: 1,
                available: 0,
            });
        }
        let first = buf[0];
        if first & 0b1000_0000 != 0 {
            Self::decode_long(buf)
        } else {
            Self::decode_short(buf, local_cid_len, first)
        }
    }

    fn decode_long(buf: &[u8]) -> Result<(Self, usize)> {
        let mut at = 1usize;
        let need = |n: usize, at: usize, buf: &[u8]| -> Result<()> {
            if buf.len() < at + n {
                Err(PacketError::Truncated {
                    what: "quic long header",
                    needed: at + n,
                    available: buf.len(),
                })
            } else {
                Ok(())
            }
        };
        need(4, at, buf)?;
        let version_raw = u32::from_be_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
        at += 4;
        need(1, at, buf)?;
        let dcid_len = buf[at] as usize;
        at += 1;
        if dcid_len > ConnectionId::MAX_LEN {
            return Err(PacketError::InvalidField {
                what: "quic long header",
                reason: "destination connection id too long",
            });
        }
        need(dcid_len, at, buf)?;
        let dcid = ConnectionId::new(&buf[at..at + dcid_len]);
        at += dcid_len;
        need(1, at, buf)?;
        let scid_len = buf[at] as usize;
        at += 1;
        if scid_len > ConnectionId::MAX_LEN {
            return Err(PacketError::InvalidField {
                what: "quic long header",
                reason: "source connection id too long",
            });
        }
        need(scid_len, at, buf)?;
        let scid = ConnectionId::new(&buf[at..at + scid_len]);
        at += scid_len;

        if version_raw == 0 {
            // Version negotiation: the rest of the packet is a version list.
            let mut supported = Vec::new();
            let mut rest = &buf[at..];
            while rest.len() >= 4 {
                supported.push(QuicVersion::from_u32(u32::from_be_bytes([
                    rest[0], rest[1], rest[2], rest[3],
                ])));
                rest = &rest[4..];
            }
            let consumed = buf.len() - rest.len();
            return Ok((
                QuicPacket {
                    header: PacketHeader::VersionNegotiation {
                        dcid,
                        scid,
                        supported,
                    },
                    payload: Vec::new(),
                },
                consumed,
            ));
        }

        let version = QuicVersion::from_u32(version_raw);
        let first = buf[0];
        let ty = LongPacketType::from_bits((first >> 4) & 0b11);
        let pn_len = ((first & 0b11) as usize) + 1;

        let mut token = Vec::new();
        if ty == LongPacketType::Initial {
            let (token_len, consumed) = decode_varint(&buf[at..])?;
            at += consumed;
            let token_len = token_len as usize;
            need(token_len, at, buf)?;
            token = buf[at..at + token_len].to_vec();
            at += token_len;
        }
        let (length, consumed) = decode_varint(&buf[at..])?;
        at += consumed;
        let length = length as usize;
        need(length, at, buf)?;
        if length < pn_len {
            return Err(PacketError::InvalidField {
                what: "quic long header",
                reason: "length field shorter than packet number",
            });
        }
        let mut pn = 0u64;
        for b in &buf[at..at + pn_len] {
            pn = (pn << 8) | u64::from(*b);
        }
        let payload = buf[at + pn_len..at + length].to_vec();
        let consumed_total = at + length;
        Ok((
            QuicPacket {
                header: PacketHeader::Long {
                    ty,
                    version,
                    dcid,
                    scid,
                    token,
                    packet_number: pn,
                },
                payload,
            },
            consumed_total,
        ))
    }

    fn decode_short(buf: &[u8], local_cid_len: usize, first: u8) -> Result<(Self, usize)> {
        let pn_len = ((first & 0b11) as usize) + 1;
        let needed = 1 + local_cid_len + pn_len;
        if buf.len() < needed {
            return Err(PacketError::Truncated {
                what: "quic short header",
                needed,
                available: buf.len(),
            });
        }
        let dcid = ConnectionId::new(&buf[1..1 + local_cid_len]);
        let mut pn = 0u64;
        for b in &buf[1 + local_cid_len..1 + local_cid_len + pn_len] {
            pn = (pn << 8) | u64::from(*b);
        }
        // A short-header packet extends to the end of the datagram.
        let payload = buf[needed..].to_vec();
        Ok((
            QuicPacket {
                header: PacketHeader::Short {
                    dcid,
                    packet_number: pn,
                },
                payload,
            },
            buf.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(v: u64) -> ConnectionId {
        ConnectionId::from_u64(v)
    }

    #[test]
    fn connection_id_basics() {
        let id = cid(0x1122_3344_5566_7788);
        assert_eq!(id.len(), 8);
        assert!(!id.is_empty());
        assert_eq!(id.to_string(), "1122334455667788");
        assert_eq!(ConnectionId::new(&[0u8; 40]).len(), ConnectionId::MAX_LEN);
    }

    #[test]
    fn initial_round_trip() {
        let pkt = QuicPacket::new(
            PacketHeader::Long {
                ty: LongPacketType::Initial,
                version: QuicVersion::V1,
                dcid: cid(1),
                scid: cid(2),
                token: vec![0xaa, 0xbb],
                packet_number: 7,
            },
            vec![0x01, 0x00, 0x00],
        );
        let bytes = pkt.encode();
        let (decoded, consumed) = QuicPacket::decode(&bytes, 8).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, pkt);
        assert!(decoded.header.is_initial());
        assert_eq!(decoded.header.version(), Some(QuicVersion::V1));
    }

    #[test]
    fn handshake_round_trip_draft_version() {
        let pkt = QuicPacket::new(
            PacketHeader::Long {
                ty: LongPacketType::Handshake,
                version: QuicVersion::DRAFT_27,
                dcid: cid(3),
                scid: cid(4),
                token: vec![],
                packet_number: 1,
            },
            vec![0x06, 0x00, 0x05, 1, 2, 3, 4, 5],
        );
        let bytes = pkt.encode();
        let (decoded, _) = QuicPacket::decode(&bytes, 8).unwrap();
        assert_eq!(decoded, pkt);
    }

    #[test]
    fn short_header_round_trip() {
        let pkt = QuicPacket::new(
            PacketHeader::Short {
                dcid: cid(9),
                packet_number: 42,
            },
            vec![1, 2, 3, 4],
        );
        let bytes = pkt.encode();
        let (decoded, consumed) = QuicPacket::decode(&bytes, 8).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, pkt);
        assert_eq!(decoded.header.packet_number(), Some(42));
    }

    #[test]
    fn version_negotiation_round_trip() {
        let pkt = QuicPacket::new(
            PacketHeader::VersionNegotiation {
                dcid: cid(1),
                scid: cid(2),
                supported: vec![QuicVersion::V1, QuicVersion::DRAFT_29],
            },
            vec![],
        );
        let bytes = pkt.encode();
        let (decoded, _) = QuicPacket::decode(&bytes, 8).unwrap();
        assert_eq!(decoded, pkt);
        assert_eq!(decoded.header.packet_number(), None);
    }

    #[test]
    fn coalesced_packets_decode_in_sequence() {
        let first = QuicPacket::new(
            PacketHeader::Long {
                ty: LongPacketType::Initial,
                version: QuicVersion::V1,
                dcid: cid(1),
                scid: cid(2),
                token: vec![],
                packet_number: 0,
            },
            vec![0x01],
        );
        let second = QuicPacket::new(
            PacketHeader::Long {
                ty: LongPacketType::Handshake,
                version: QuicVersion::V1,
                dcid: cid(1),
                scid: cid(2),
                token: vec![],
                packet_number: 0,
            },
            vec![0x01, 0x01],
        );
        let mut datagram = first.encode();
        datagram.extend_from_slice(&second.encode());
        let (d1, used1) = QuicPacket::decode(&datagram, 8).unwrap();
        let (d2, used2) = QuicPacket::decode(&datagram[used1..], 8).unwrap();
        assert_eq!(d1, first);
        assert_eq!(d2, second);
        assert_eq!(used1 + used2, datagram.len());
    }

    #[test]
    fn truncated_inputs_rejected() {
        let pkt = QuicPacket::new(
            PacketHeader::Long {
                ty: LongPacketType::Initial,
                version: QuicVersion::V1,
                dcid: cid(1),
                scid: cid(2),
                token: vec![],
                packet_number: 0,
            },
            vec![0u8; 64],
        );
        let bytes = pkt.encode();
        for cut in [0, 1, 5, 10, bytes.len() - 1] {
            assert!(QuicPacket::decode(&bytes[..cut], 8).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn oversized_cid_rejected() {
        // Hand-craft a long header claiming a 21-byte DCID.
        let mut bytes = vec![0b1100_0011];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.push(21);
        bytes.extend_from_slice(&[0u8; 21]);
        bytes.push(0);
        assert!(matches!(
            QuicPacket::decode(&bytes, 8),
            Err(PacketError::InvalidField { .. })
        ));
    }
}
