//! RFC 9000 §16 variable-length integer encoding.
//!
//! The two most significant bits of the first byte select the total length
//! (1, 2, 4 or 8 bytes); the remaining bits carry the value in network order.

use crate::error::PacketError;
use crate::Result;

/// Largest value representable as a QUIC varint (2^62 - 1).
pub const VARINT_MAX: u64 = (1 << 62) - 1;

/// Number of bytes [`encode_varint`] will use for `value`.
///
/// Returns 8 for values that exceed [`VARINT_MAX`] (they are clamped on
/// encode; callers that care should validate beforehand).
pub fn varint_len(value: u64) -> usize {
    if value < 1 << 6 {
        1
    } else if value < 1 << 14 {
        2
    } else if value < 1 << 30 {
        4
    } else {
        8
    }
}

/// Append the varint encoding of `value` to `buf`.
///
/// Values above [`VARINT_MAX`] are clamped to it; QUIC cannot represent them.
pub fn encode_varint(buf: &mut Vec<u8>, value: u64) {
    let value = value.min(VARINT_MAX);
    match varint_len(value) {
        1 => buf.push(value as u8),
        2 => {
            let v = (value as u16) | 0x4000;
            buf.extend_from_slice(&v.to_be_bytes());
        }
        4 => {
            let v = (value as u32) | 0x8000_0000;
            buf.extend_from_slice(&v.to_be_bytes());
        }
        _ => {
            let v = value | 0xc000_0000_0000_0000;
            buf.extend_from_slice(&v.to_be_bytes());
        }
    }
}

/// Decode a varint from the front of `buf`, returning the value and the
/// number of bytes consumed.
pub fn decode_varint(buf: &[u8]) -> Result<(u64, usize)> {
    let first = *buf.first().ok_or(PacketError::InvalidVarint)?;
    let len = 1usize << (first >> 6);
    if buf.len() < len {
        return Err(PacketError::InvalidVarint);
    }
    let mut value = u64::from(first & 0x3f);
    for byte in &buf[1..len] {
        value = (value << 8) | u64::from(*byte);
    }
    Ok((value, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> (u64, usize) {
        let mut buf = Vec::new();
        encode_varint(&mut buf, v);
        decode_varint(&buf).unwrap()
    }

    #[test]
    fn rfc_9000_appendix_a_examples() {
        // Examples from RFC 9000 Appendix A.1.
        assert_eq!(decode_varint(&[0x25]).unwrap(), (37, 1));
        assert_eq!(decode_varint(&[0x7b, 0xbd]).unwrap(), (15293, 2));
        assert_eq!(
            decode_varint(&[0x9d, 0x7f, 0x3e, 0x7d]).unwrap(),
            (494_878_333, 4)
        );
        assert_eq!(
            decode_varint(&[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c]).unwrap(),
            (151_288_809_941_952_652, 8)
        );
    }

    #[test]
    fn boundaries_round_trip() {
        for v in [
            0,
            63,
            64,
            16_383,
            16_384,
            (1 << 30) - 1,
            1 << 30,
            VARINT_MAX,
        ] {
            let (decoded, len) = round_trip(v);
            assert_eq!(decoded, v);
            assert_eq!(len, varint_len(v));
        }
    }

    #[test]
    fn values_above_max_are_clamped() {
        let (decoded, _) = round_trip(u64::MAX);
        assert_eq!(decoded, VARINT_MAX);
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(decode_varint(&[]), Err(PacketError::InvalidVarint));
        assert_eq!(decode_varint(&[0x40]), Err(PacketError::InvalidVarint));
        assert_eq!(
            decode_varint(&[0xc0, 0, 0]),
            Err(PacketError::InvalidVarint)
        );
    }
}
