//! QUIC frames (RFC 9000 §19), restricted to the set the study exercises.
//!
//! The frame that matters most here is `ACK` with ECN counts (type `0x03`):
//! this is the mechanism by which a QUIC receiver *mirrors* the ECN
//! codepoints it observed on the IP layer back to the sender, and it is the
//! input to the sender-side ECN validation the paper analyses.

use crate::ecn::EcnCounts;
use crate::error::PacketError;
use crate::quic::varint::{decode_varint, encode_varint};
use crate::Result;
use serde::{Deserialize, Serialize};

/// An ACK frame: the largest acknowledged packet number, the ranges of
/// acknowledged packet numbers below it, and optionally the ECN counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckFrame {
    /// Largest packet number being acknowledged.
    pub largest_acked: u64,
    /// Acknowledgment delay in microseconds (already scaled; the study's
    /// endpoints use an `ack_delay_exponent` of 0 for simplicity).
    pub ack_delay: u64,
    /// Acknowledged ranges as inclusive `(start, end)` pairs, highest first.
    /// The first range must end at `largest_acked`.
    pub ranges: Vec<(u64, u64)>,
    /// ECN counters, present only in `ACK_ECN` (type 0x03) frames.
    pub ecn: Option<EcnCounts>,
}

impl AckFrame {
    /// Build an ACK for a single contiguous range `[start, end]`.
    pub fn contiguous(start: u64, end: u64, ecn: Option<EcnCounts>) -> Self {
        AckFrame {
            largest_acked: end,
            ack_delay: 0,
            ranges: vec![(start, end)],
            ecn,
        }
    }

    /// Total number of packet numbers covered by the ranges.
    pub fn acked_count(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s + 1).sum()
    }

    /// Whether `pn` is covered by one of the ranges.
    pub fn acknowledges(&self, pn: u64) -> bool {
        self.ranges.iter().any(|(s, e)| pn >= *s && pn <= *e)
    }
}

/// The QUIC frames supported by this reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Frame {
    /// PADDING (type 0x00); `size` consecutive padding bytes.
    Padding {
        /// Number of padding bytes this entry represents.
        size: usize,
    },
    /// PING (type 0x01).
    Ping,
    /// ACK / ACK_ECN (types 0x02 / 0x03).
    Ack(AckFrame),
    /// CRYPTO (type 0x06) — carries the plaintext handshake messages.
    Crypto {
        /// Offset in the crypto stream.
        offset: u64,
        /// Crypto stream bytes.
        data: Vec<u8>,
    },
    /// STREAM with offset and length (type 0x0e) — carries the HTTP exchange.
    Stream {
        /// Stream identifier.
        stream_id: u64,
        /// Offset of `data` in the stream.
        offset: u64,
        /// Whether this frame ends the stream.
        fin: bool,
        /// Stream payload bytes.
        data: Vec<u8>,
    },
    /// CONNECTION_CLOSE (type 0x1c).
    ConnectionClose {
        /// Transport error code.
        error_code: u64,
        /// Human-readable reason phrase.
        reason: String,
    },
    /// HANDSHAKE_DONE (type 0x1e).
    HandshakeDone,
}

const FRAME_PADDING: u64 = 0x00;
const FRAME_PING: u64 = 0x01;
const FRAME_ACK: u64 = 0x02;
const FRAME_ACK_ECN: u64 = 0x03;
const FRAME_CRYPTO: u64 = 0x06;
const FRAME_STREAM_OFF_LEN: u64 = 0x0e;
const FRAME_STREAM_OFF_LEN_FIN: u64 = 0x0f;
const FRAME_CONNECTION_CLOSE: u64 = 0x1c;
const FRAME_HANDSHAKE_DONE: u64 = 0x1e;

impl Frame {
    /// Whether loss of this frame must be repaired (ack-eliciting and
    /// retransmittable content).
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(
            self,
            Frame::Ack(_) | Frame::Padding { .. } | Frame::ConnectionClose { .. }
        )
    }

    /// Append the wire encoding of this frame to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Padding { size } => {
                buf.extend(std::iter::repeat(0u8).take(*size));
            }
            Frame::Ping => encode_varint(buf, FRAME_PING),
            Frame::Ack(ack) => {
                let ty = if ack.ecn.is_some() {
                    FRAME_ACK_ECN
                } else {
                    FRAME_ACK
                };
                encode_varint(buf, ty);
                encode_varint(buf, ack.largest_acked);
                encode_varint(buf, ack.ack_delay);
                let range_count = ack.ranges.len().saturating_sub(1) as u64;
                encode_varint(buf, range_count);
                // First range: number of packets below largest_acked, inclusive.
                let (first_start, first_end) = ack
                    .ranges
                    .first()
                    .copied()
                    .unwrap_or((ack.largest_acked, ack.largest_acked));
                encode_varint(buf, first_end - first_start);
                let mut prev_start = first_start;
                for (start, end) in ack.ranges.iter().skip(1) {
                    // Gap: packets between this range and the previous one, minus 2.
                    let gap = prev_start - end - 2;
                    encode_varint(buf, gap);
                    encode_varint(buf, end - start);
                    prev_start = *start;
                }
                if let Some(ecn) = &ack.ecn {
                    encode_varint(buf, ecn.ect0);
                    encode_varint(buf, ecn.ect1);
                    encode_varint(buf, ecn.ce);
                }
            }
            Frame::Crypto { offset, data } => {
                encode_varint(buf, FRAME_CRYPTO);
                encode_varint(buf, *offset);
                encode_varint(buf, data.len() as u64);
                buf.extend_from_slice(data);
            }
            Frame::Stream {
                stream_id,
                offset,
                fin,
                data,
            } => {
                let ty = if *fin {
                    FRAME_STREAM_OFF_LEN_FIN
                } else {
                    FRAME_STREAM_OFF_LEN
                };
                encode_varint(buf, ty);
                encode_varint(buf, *stream_id);
                encode_varint(buf, *offset);
                encode_varint(buf, data.len() as u64);
                buf.extend_from_slice(data);
            }
            Frame::ConnectionClose { error_code, reason } => {
                encode_varint(buf, FRAME_CONNECTION_CLOSE);
                encode_varint(buf, *error_code);
                encode_varint(buf, 0); // triggering frame type
                encode_varint(buf, reason.len() as u64);
                buf.extend_from_slice(reason.as_bytes());
            }
            Frame::HandshakeDone => encode_varint(buf, FRAME_HANDSHAKE_DONE),
        }
    }

    /// Encode a sequence of frames into a payload buffer.
    pub fn encode_all(frames: &[Frame]) -> Vec<u8> {
        let mut buf = Vec::new();
        for frame in frames {
            frame.encode(&mut buf);
        }
        buf
    }

    /// Decode all frames in `buf`.  Runs of padding are collapsed into a
    /// single [`Frame::Padding`] entry.
    pub fn decode_all(buf: &[u8]) -> Result<Vec<Frame>> {
        let mut frames = Vec::new();
        let mut at = 0usize;
        while at < buf.len() {
            let (frame, consumed) = Self::decode_one(&buf[at..])?;
            at += consumed;
            // Merge consecutive padding entries.
            if let (Some(Frame::Padding { size }), Frame::Padding { size: add }) =
                (frames.last_mut(), &frame)
            {
                *size += add;
            } else {
                frames.push(frame);
            }
        }
        Ok(frames)
    }

    fn decode_one(buf: &[u8]) -> Result<(Frame, usize)> {
        let (ty, mut at) = decode_varint(buf)?;
        let need = |n: usize, at: usize| -> Result<()> {
            if buf.len() < at + n {
                Err(PacketError::Truncated {
                    what: "quic frame",
                    needed: at + n,
                    available: buf.len(),
                })
            } else {
                Ok(())
            }
        };
        match ty {
            FRAME_PADDING => Ok((Frame::Padding { size: 1 }, at)),
            FRAME_PING => Ok((Frame::Ping, at)),
            FRAME_ACK | FRAME_ACK_ECN => {
                let (largest_acked, c) = decode_varint(&buf[at..])?;
                at += c;
                let (ack_delay, c) = decode_varint(&buf[at..])?;
                at += c;
                let (range_count, c) = decode_varint(&buf[at..])?;
                at += c;
                let (first_range, c) = decode_varint(&buf[at..])?;
                at += c;
                if first_range > largest_acked {
                    return Err(PacketError::InvalidField {
                        what: "ack frame",
                        reason: "first range exceeds largest acknowledged",
                    });
                }
                let mut ranges = vec![(largest_acked - first_range, largest_acked)];
                let mut prev_start = largest_acked - first_range;
                for _ in 0..range_count {
                    let (gap, c) = decode_varint(&buf[at..])?;
                    at += c;
                    let (len, c) = decode_varint(&buf[at..])?;
                    at += c;
                    let end = prev_start
                        .checked_sub(gap + 2)
                        .ok_or(PacketError::InvalidField {
                            what: "ack frame",
                            reason: "gap underflows packet number space",
                        })?;
                    let start = end.checked_sub(len).ok_or(PacketError::InvalidField {
                        what: "ack frame",
                        reason: "range length underflows packet number space",
                    })?;
                    ranges.push((start, end));
                    prev_start = start;
                }
                let ecn = if ty == FRAME_ACK_ECN {
                    let (ect0, c) = decode_varint(&buf[at..])?;
                    at += c;
                    let (ect1, c) = decode_varint(&buf[at..])?;
                    at += c;
                    let (ce, c) = decode_varint(&buf[at..])?;
                    at += c;
                    Some(EcnCounts { ect0, ect1, ce })
                } else {
                    None
                };
                Ok((
                    Frame::Ack(AckFrame {
                        largest_acked,
                        ack_delay,
                        ranges,
                        ecn,
                    }),
                    at,
                ))
            }
            FRAME_CRYPTO => {
                let (offset, c) = decode_varint(&buf[at..])?;
                at += c;
                let (len, c) = decode_varint(&buf[at..])?;
                at += c;
                let len = len as usize;
                need(len, at)?;
                let data = buf[at..at + len].to_vec();
                Ok((Frame::Crypto { offset, data }, at + len))
            }
            FRAME_STREAM_OFF_LEN | FRAME_STREAM_OFF_LEN_FIN => {
                let (stream_id, c) = decode_varint(&buf[at..])?;
                at += c;
                let (offset, c) = decode_varint(&buf[at..])?;
                at += c;
                let (len, c) = decode_varint(&buf[at..])?;
                at += c;
                let len = len as usize;
                need(len, at)?;
                let data = buf[at..at + len].to_vec();
                Ok((
                    Frame::Stream {
                        stream_id,
                        offset,
                        fin: ty == FRAME_STREAM_OFF_LEN_FIN,
                        data,
                    },
                    at + len,
                ))
            }
            FRAME_CONNECTION_CLOSE => {
                let (error_code, c) = decode_varint(&buf[at..])?;
                at += c;
                let (_frame_type, c) = decode_varint(&buf[at..])?;
                at += c;
                let (len, c) = decode_varint(&buf[at..])?;
                at += c;
                let len = len as usize;
                need(len, at)?;
                let reason = String::from_utf8_lossy(&buf[at..at + len]).into_owned();
                Ok((Frame::ConnectionClose { error_code, reason }, at + len))
            }
            FRAME_HANDSHAKE_DONE => Ok((Frame::HandshakeDone, at)),
            other => Err(PacketError::UnknownFrameType(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frames: &[Frame]) -> Vec<Frame> {
        Frame::decode_all(&Frame::encode_all(frames)).unwrap()
    }

    #[test]
    fn ping_and_handshake_done() {
        let frames = vec![Frame::Ping, Frame::HandshakeDone];
        assert_eq!(round_trip(&frames), frames);
    }

    #[test]
    fn padding_is_collapsed() {
        let frames = vec![Frame::Padding { size: 37 }, Frame::Ping];
        let decoded = round_trip(&frames);
        assert_eq!(decoded, frames);
    }

    #[test]
    fn ack_without_ecn() {
        let frames = vec![Frame::Ack(AckFrame::contiguous(0, 9, None))];
        assert_eq!(round_trip(&frames), frames);
    }

    #[test]
    fn ack_with_ecn_counts() {
        let ecn = EcnCounts {
            ect0: 5,
            ect1: 0,
            ce: 2,
        };
        let frames = vec![Frame::Ack(AckFrame::contiguous(3, 11, Some(ecn)))];
        let decoded = round_trip(&frames);
        match &decoded[0] {
            Frame::Ack(a) => assert_eq!(a.ecn, Some(ecn)),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn ack_with_multiple_ranges() {
        let ack = AckFrame {
            largest_acked: 20,
            ack_delay: 11,
            ranges: vec![(18, 20), (10, 14), (2, 5)],
            ecn: None,
        };
        assert_eq!(ack.acked_count(), 3 + 5 + 4);
        assert!(ack.acknowledges(12));
        assert!(!ack.acknowledges(8));
        let frames = vec![Frame::Ack(ack)];
        assert_eq!(round_trip(&frames), frames);
    }

    #[test]
    fn crypto_and_stream_frames() {
        let frames = vec![
            Frame::Crypto {
                offset: 0,
                data: b"client hello".to_vec(),
            },
            Frame::Stream {
                stream_id: 0,
                offset: 100,
                fin: true,
                data: b"GET /".to_vec(),
            },
        ];
        assert_eq!(round_trip(&frames), frames);
    }

    #[test]
    fn connection_close_round_trip() {
        let frames = vec![Frame::ConnectionClose {
            error_code: 0x0a,
            reason: "protocol violation".to_string(),
        }];
        assert_eq!(round_trip(&frames), frames);
    }

    #[test]
    fn ack_eliciting_classification() {
        assert!(Frame::Ping.is_ack_eliciting());
        assert!(Frame::Crypto {
            offset: 0,
            data: vec![]
        }
        .is_ack_eliciting());
        assert!(!Frame::Ack(AckFrame::contiguous(0, 0, None)).is_ack_eliciting());
        assert!(!Frame::Padding { size: 1 }.is_ack_eliciting());
    }

    #[test]
    fn unknown_frame_type_rejected() {
        let buf = vec![0x21u8, 0, 0];
        assert!(matches!(
            Frame::decode_all(&buf),
            Err(PacketError::UnknownFrameType(0x21))
        ));
    }

    #[test]
    fn malformed_ack_rejected() {
        // largest_acked = 1 but first range claims 5 packets below it.
        let mut buf = Vec::new();
        encode_varint(&mut buf, FRAME_ACK);
        encode_varint(&mut buf, 1);
        encode_varint(&mut buf, 0);
        encode_varint(&mut buf, 0);
        encode_varint(&mut buf, 5);
        assert!(Frame::decode_all(&buf).is_err());
    }

    #[test]
    fn truncated_crypto_rejected() {
        let mut buf = Vec::new();
        Frame::Crypto {
            offset: 0,
            data: vec![1, 2, 3, 4, 5, 6],
        }
        .encode(&mut buf);
        assert!(Frame::decode_all(&buf[..buf.len() - 2]).is_err());
    }
}
