//! QUIC protocol versions observed by the study.
//!
//! The longitudinal analysis (paper §5.3, Figures 3/4/8) tracks which QUIC
//! version a domain speaks because the LiteSpeed draft-27 → v1 transition is
//! what made ECN mirroring collapse in 2022 and reappear in March 2023.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A QUIC version number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QuicVersion {
    /// QUIC version 1 (RFC 9000), wire value `0x00000001`.
    V1,
    /// An IETF draft version, wire value `0xff0000xx`.
    Draft(u8),
    /// Any other value (treated as unsupported and triggering version negotiation).
    Other(u32),
}

impl QuicVersion {
    /// Draft 27, the version the 2022 LiteSpeed deployments spoke.
    pub const DRAFT_27: QuicVersion = QuicVersion::Draft(27);
    /// Draft 29.
    pub const DRAFT_29: QuicVersion = QuicVersion::Draft(29);
    /// Draft 32.
    pub const DRAFT_32: QuicVersion = QuicVersion::Draft(32);
    /// Draft 34 (wire-identical to v1 apart from the version number).
    pub const DRAFT_34: QuicVersion = QuicVersion::Draft(34);

    /// The versions the measurement client supports, mirroring the paper's
    /// adapted quic-go (§4.1): v1 plus drafts 27, 29, 32 and 34.
    pub const CLIENT_SUPPORTED: [QuicVersion; 5] = [
        QuicVersion::V1,
        QuicVersion::DRAFT_27,
        QuicVersion::DRAFT_29,
        QuicVersion::DRAFT_32,
        QuicVersion::DRAFT_34,
    ];

    /// Wire encoding of the version field.
    pub fn to_u32(self) -> u32 {
        match self {
            QuicVersion::V1 => 0x0000_0001,
            QuicVersion::Draft(n) => 0xff00_0000 | u32::from(n),
            QuicVersion::Other(v) => v,
        }
    }

    /// Decode a version field.
    pub fn from_u32(value: u32) -> Self {
        match value {
            0x0000_0001 => QuicVersion::V1,
            v if v & 0xffff_ff00 == 0xff00_0000 => QuicVersion::Draft((v & 0xff) as u8),
            v => QuicVersion::Other(v),
        }
    }

    /// Whether this crate knows how to encode packets of this version.
    pub fn is_supported(self) -> bool {
        matches!(
            self,
            QuicVersion::V1 | QuicVersion::Draft(27 | 29 | 32 | 34)
        )
    }

    /// Short label used in reports ("v1", "d27", …), matching the paper's figures.
    pub fn label(self) -> String {
        match self {
            QuicVersion::V1 => "v1".to_string(),
            QuicVersion::Draft(n) => format!("d{n}"),
            QuicVersion::Other(v) => format!("0x{v:08x}"),
        }
    }
}

impl fmt::Display for QuicVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_values() {
        assert_eq!(QuicVersion::V1.to_u32(), 1);
        assert_eq!(QuicVersion::DRAFT_27.to_u32(), 0xff00_001b);
        assert_eq!(QuicVersion::DRAFT_29.to_u32(), 0xff00_001d);
    }

    #[test]
    fn round_trip() {
        for v in [
            QuicVersion::V1,
            QuicVersion::DRAFT_27,
            QuicVersion::DRAFT_34,
            QuicVersion::Other(0x5a5a_5a5a),
        ] {
            assert_eq!(QuicVersion::from_u32(v.to_u32()), v);
        }
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(QuicVersion::V1.label(), "v1");
        assert_eq!(QuicVersion::DRAFT_27.label(), "d27");
    }

    #[test]
    fn support_matrix() {
        assert!(QuicVersion::V1.is_supported());
        assert!(QuicVersion::DRAFT_32.is_supported());
        assert!(!QuicVersion::Draft(13).is_supported());
        assert!(!QuicVersion::Other(0xdead_beef).is_supported());
    }

    #[test]
    fn client_supports_five_versions() {
        assert_eq!(QuicVersion::CLIENT_SUPPORTED.len(), 5);
        assert!(QuicVersion::CLIENT_SUPPORTED
            .iter()
            .all(|v| v.is_supported()));
    }
}
