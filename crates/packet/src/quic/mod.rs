//! A simplified but RFC-shaped QUIC wire image.
//!
//! The measurement study needs QUIC packets that
//!
//! * carry a version field distinguishing QUIC v1 from drafts 27/29/32/34
//!   (Figure 4 / Figure 8 track ECN support per version),
//! * have an Initial long header large enough to be used as a tracebox probe,
//! * carry ACK frames with and without ECN counts (`ACK_ECN` is how servers
//!   mirror codepoints back to the client),
//! * and carry CRYPTO / STREAM frames for the handshake and the HTTP exchange.
//!
//! Header protection, AEAD encryption and retry integrity tags are **not**
//! implemented (see DESIGN.md §2): ECN lives in the IP header and in ACK
//! frames, so confidentiality is orthogonal to everything the study measures,
//! and omitting it keeps the simulation deterministic and fast.  Apart from
//! that omission the encodings follow RFC 9000 (variable-length integers,
//! long/short header layout, frame layouts).

pub mod frame;
pub mod header;
pub mod varint;
pub mod version;

pub use frame::{AckFrame, Frame};
pub use header::{ConnectionId, LongPacketType, PacketHeader, QuicPacket};
pub use varint::{decode_varint, encode_varint, varint_len};
pub use version::QuicVersion;

/// The UDP port HTTP/3 servers listen on.
pub const QUIC_PORT: u16 = 443;

/// Minimum size of a client Initial datagram (RFC 9000 §14.1).
pub const MIN_INITIAL_SIZE: usize = 1200;
