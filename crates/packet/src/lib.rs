//! Wire formats used throughout the ECN-with-QUIC measurement reproduction.
//!
//! This crate implements byte-accurate encoders and decoders for every header
//! the study ("ECN with QUIC: Challenges in the Wild", IMC '23) touches:
//!
//! * IPv4 and IPv6 headers including the DSCP / ECN split of the former
//!   ToS / traffic-class octet ([`ip`], [`ecn`]),
//! * UDP and TCP (with the ECN-relevant `ECE` / `CWR` flags) ([`udp`], [`tcp`]),
//! * ICMPv4 / ICMPv6 *time exceeded* messages carrying a quotation of the
//!   original datagram, as used by the tracebox methodology ([`icmp`]),
//! * a simplified but RFC-shaped QUIC wire image: variable-length integers,
//!   long and short headers for QUIC v1 and drafts 27/29/32/34, version
//!   negotiation, and the frames required for the measurements — most
//!   importantly `ACK_ECN` ([`quic`]).
//!
//! The crate is `#![forbid(unsafe_code)]`, has no I/O, and never allocates
//! behind the caller's back except for the payload buffers it returns.  All
//! parsers are total: malformed input yields a [`PacketError`], never a panic.
//!
//! # Example
//!
//! ```
//! use qem_packet::ecn::EcnCodepoint;
//! use qem_packet::ip::{IpProtocol, Ipv4Header};
//! use std::net::Ipv4Addr;
//!
//! let hdr = Ipv4Header::new(
//!     Ipv4Addr::new(192, 0, 2, 1),
//!     Ipv4Addr::new(198, 51, 100, 7),
//!     IpProtocol::Udp,
//!     64,
//! )
//! .with_ecn(EcnCodepoint::Ect0);
//!
//! let bytes = hdr.encode(1200);
//! let (decoded, _hdr_len) = Ipv4Header::decode(&bytes).unwrap();
//! assert_eq!(decoded.ecn, EcnCodepoint::Ect0);
//! assert_eq!(decoded.ttl, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecn;
pub mod error;
pub mod icmp;
pub mod ip;
pub mod quic;
pub mod tcp;
pub mod udp;

pub use ecn::{Dscp, EcnCodepoint};
pub use error::PacketError;
pub use ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header, Ipv6Header};

/// Result alias used by all decoders in this crate.
pub type Result<T> = std::result::Result<T, PacketError>;
