//! Property-based tests for the wire formats.

use proptest::prelude::*;
use qem_packet::ecn::{split_traffic_class, traffic_class, Dscp, EcnCodepoint, EcnCounts};
use qem_packet::ip::{internet_checksum, IpProtocol, Ipv4Header, Ipv6Header};
use qem_packet::quic::{
    decode_varint, encode_varint, varint_len, AckFrame, ConnectionId, Frame, LongPacketType,
    PacketHeader, QuicPacket, QuicVersion,
};
use qem_packet::tcp::{TcpFlags, TcpHeader};
use qem_packet::udp::UdpHeader;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_ecn() -> impl Strategy<Value = EcnCodepoint> {
    prop_oneof![
        Just(EcnCodepoint::NotEct),
        Just(EcnCodepoint::Ect0),
        Just(EcnCodepoint::Ect1),
        Just(EcnCodepoint::Ce),
    ]
}

proptest! {
    #[test]
    fn traffic_class_round_trips(dscp in 0u8..64, ecn in arb_ecn()) {
        let tc = traffic_class(Dscp::new(dscp), ecn);
        let (d, e) = split_traffic_class(tc);
        prop_assert_eq!(d.value(), dscp);
        prop_assert_eq!(e, ecn);
    }

    #[test]
    fn varint_round_trips(value in 0u64..(1u64 << 62)) {
        let mut buf = Vec::new();
        encode_varint(&mut buf, value);
        prop_assert_eq!(buf.len(), varint_len(value));
        let (decoded, consumed) = decode_varint(&buf).unwrap();
        prop_assert_eq!(decoded, value);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn varint_decoding_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..12)) {
        let _ = decode_varint(&bytes);
    }

    #[test]
    fn ipv4_header_round_trips(
        src in any::<u32>(),
        dst in any::<u32>(),
        dscp in 0u8..64,
        ecn in arb_ecn(),
        ttl in 1u8..=255,
        ident in any::<u16>(),
        payload_len in 0usize..1500,
    ) {
        let mut hdr = Ipv4Header::new(
            Ipv4Addr::from(src),
            Ipv4Addr::from(dst),
            IpProtocol::Udp,
            ttl,
        ).with_ecn(ecn).with_dscp(Dscp::new(dscp));
        hdr.identification = ident;
        let bytes = hdr.encode(payload_len);
        prop_assert_eq!(internet_checksum(&bytes), 0);
        let (decoded, len) = Ipv4Header::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, hdr);
        prop_assert_eq!(len, 20);
    }

    #[test]
    fn ipv6_header_round_trips(
        src in any::<u128>(),
        dst in any::<u128>(),
        ecn in arb_ecn(),
        hop_limit in 1u8..=255,
        flow in 0u32..(1 << 20),
    ) {
        let mut hdr = Ipv6Header::new(
            Ipv6Addr::from(src),
            Ipv6Addr::from(dst),
            IpProtocol::Udp,
            hop_limit,
        ).with_ecn(ecn);
        hdr.flow_label = flow;
        let bytes = hdr.encode(64);
        let (decoded, _) = Ipv6Header::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, hdr);
    }

    #[test]
    fn ip_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = qem_packet::ip::IpHeader::decode(&bytes);
    }

    #[test]
    fn udp_round_trips(sport in any::<u16>(), dport in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1));
        let dst = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
        let hdr = UdpHeader::new(sport, dport);
        let seg = hdr.encode(src, dst, &payload);
        prop_assert!(UdpHeader::verify_checksum(src, dst, &seg));
        let (decoded, body) = UdpHeader::decode(&seg).unwrap();
        prop_assert_eq!(decoded, hdr);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn tcp_flags_round_trip(byte in any::<u8>()) {
        prop_assert_eq!(TcpFlags::from_byte(byte).to_byte(), byte);
    }

    #[test]
    fn tcp_round_trips(
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let src = IpAddr::V4(Ipv4Addr::new(10, 1, 0, 1));
        let dst = IpAddr::V4(Ipv4Addr::new(10, 1, 0, 2));
        let hdr = TcpHeader::new(sport, dport, seq, ack, TcpFlags::from_byte(flags));
        let seg = hdr.encode(src, dst, &payload);
        prop_assert!(TcpHeader::verify_checksum(src, dst, &seg));
        let (decoded, body) = TcpHeader::decode(&seg).unwrap();
        prop_assert_eq!(decoded, hdr);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn quic_initial_round_trips(
        dcid in any::<u64>(),
        scid in any::<u64>(),
        pn in 0u64..u32::MAX as u64,
        token in proptest::collection::vec(any::<u8>(), 0..32),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let pkt = QuicPacket::new(
            PacketHeader::Long {
                ty: LongPacketType::Initial,
                version: QuicVersion::V1,
                dcid: ConnectionId::from_u64(dcid),
                scid: ConnectionId::from_u64(scid),
                token,
                packet_number: pn,
            },
            payload,
        );
        let bytes = pkt.encode();
        let (decoded, consumed) = QuicPacket::decode(&bytes, 8).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn quic_packet_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = QuicPacket::decode(&bytes, 8);
    }

    #[test]
    fn frame_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Frame::decode_all(&bytes);
    }

    #[test]
    fn ack_ecn_frame_round_trips(
        largest in 0u64..10_000,
        below in 0u64..100,
        ect0 in 0u64..1_000,
        ect1 in 0u64..1_000,
        ce in 0u64..1_000,
    ) {
        let first = largest.saturating_sub(below);
        let ack = AckFrame::contiguous(first, largest, Some(EcnCounts { ect0, ect1, ce }));
        let frames = vec![Frame::Ack(ack)];
        let decoded = Frame::decode_all(&Frame::encode_all(&frames)).unwrap();
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn ecn_counts_record_is_monotone(codes in proptest::collection::vec(arb_ecn(), 0..200)) {
        let mut counts = EcnCounts::ZERO;
        let mut prev = counts;
        for c in codes {
            counts.record(c);
            prop_assert!(counts.dominates(&prev));
            prev = counts;
        }
    }
}
