//! Application-data sourcing for TCP flows: the segment-building half of the
//! workload layer's bulk-transfer apps.
//!
//! Mirrors `qem_quic::app` for the TCP side: workload flows pull
//! `AppChunk`s from an `AppDataSource` (both defined in the QUIC crate,
//! which owns the shared sourcing vocabulary) and hand them to a
//! [`SegmentPacketizer`], which emits real `ACK|PSH` data segments with
//! monotonically advancing sequence numbers.  Sans-IO and deterministic, like
//! everything below the engine: no sockets, no clocks, no randomness.

use qem_packet::tcp::{TcpFlags, TcpHeader};
use std::net::IpAddr;

/// Builds (and parses) the `ACK|PSH` data segments that carry application
/// bytes for a TCP workload flow, tracking the next sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPacketizer {
    src_port: u16,
    dst_port: u16,
    next_seq: u32,
}

impl SegmentPacketizer {
    /// A packetizer for the `src_port` → `dst_port` direction of an
    /// established connection, starting at sequence number `isn`.
    pub fn new(src_port: u16, dst_port: u16, isn: u32) -> Self {
        SegmentPacketizer {
            src_port,
            dst_port,
            next_seq: isn,
        }
    }

    /// Encode the next `len` application bytes as one `ACK|PSH` segment
    /// between `src` and `dst`.  The payload is zeroed — workloads measure
    /// delivery, not content — and the sequence number advances by `len`.
    pub fn packetize(&mut self, src: IpAddr, dst: IpAddr, len: usize) -> Vec<u8> {
        let flags = TcpFlags {
            ack: true,
            psh: true,
            ..TcpFlags::default()
        };
        let header = TcpHeader::new(self.src_port, self.dst_port, self.next_seq, 0, flags);
        let segment = header.encode(src, dst, &vec![0u8; len]);
        self.next_seq = self.next_seq.wrapping_add(len as u32);
        segment
    }

    /// The sequence number the next segment will carry.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Parse a data segment back into `(seq, payload_len)`, for the
    /// receiving side of a workload flow.  Returns `None` for anything that
    /// does not decode as a TCP segment.
    pub fn parse(segment: &[u8]) -> Option<(u32, usize)> {
        let (header, payload) = TcpHeader::decode(segment).ok()?;
        Some((header.seq, payload.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(198, 18, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(198, 19, 0, 1)),
        )
    }

    #[test]
    fn sequence_numbers_advance_by_payload_length() {
        let (src, dst) = addrs();
        let mut packetizer = SegmentPacketizer::new(443, 50_000, 1_000);
        let first = packetizer.packetize(src, dst, 1_200);
        let second = packetizer.packetize(src, dst, 600);
        assert_eq!(packetizer.next_seq(), 1_000 + 1_200 + 600);
        assert_eq!(SegmentPacketizer::parse(&first), Some((1_000, 1_200)));
        assert_eq!(SegmentPacketizer::parse(&second), Some((2_200, 600)));
    }

    #[test]
    fn segments_carry_ack_and_psh() {
        let (src, dst) = addrs();
        let mut packetizer = SegmentPacketizer::new(443, 50_000, 0);
        let wire = packetizer.packetize(src, dst, 64);
        let (header, payload) = TcpHeader::decode(&wire).expect("valid segment");
        assert!(header.flags.ack && header.flags.psh);
        assert!(!header.flags.syn && !header.flags.fin);
        assert_eq!(payload.len(), 64);
    }
}
