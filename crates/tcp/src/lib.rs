//! A minimal TCP endpoint pair with RFC 3168 ECN support.
//!
//! The paper compares ECN support via QUIC against ECN support via TCP for
//! the same domains (§4.1, §6.3, Figure 6).  Its TCP instrumentation consists
//! of three pieces, all reproduced here:
//!
//! * Linux's `tcpinfo`, from which the scanner reads whether ECN was
//!   *negotiated* (the ECN-setup SYN / SYN-ACK exchange succeeded) —
//!   [`TcpReport::negotiated`];
//! * an eBPF program counting the ECN codepoints seen on incoming segments —
//!   [`TcpReport::received_ecn`] and [`TcpReport::server_observed_ecn`];
//! * the TCP flags of the segments themselves, showing whether a `CE` mark
//!   was echoed back via the `ECE` flag — [`TcpReport::ce_mirrored`].
//!
//! The implementation is a compact, deterministic connection simulation (not
//! a full retransmitting TCP): the paper's TCP findings depend only on the
//! handshake flags and the ECE echo, both of which are faithfully modelled,
//! including the CWR handshake that clears the echo.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod behavior;
pub mod connection;

pub use app::SegmentPacketizer;
pub use behavior::TcpServerBehavior;
#[allow(deprecated)]
pub use connection::{run_tcp_connection, run_tcp_connection_under_load};
pub use connection::{TcpClientConfig, TcpConnectionRun, TcpFlow, TcpReport, TcpRunOutcome};
