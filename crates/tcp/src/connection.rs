//! A deterministic TCP connection simulation over a [`DuplexPath`].
//!
//! The exchange mirrors what the study's zgrab-based scanner produces for
//! each domain: an ECN-setup handshake, an HTTP request, a handful of probe
//! segments carrying the configured codepoint (`ECT(0)` normally, `CE` in the
//! §6.3 experiment), the server's response, and a FIN.  Every segment is a
//! real [`TcpHeader`]-encoded packet pushed through the path simulator, so
//! path-level ECN impairments act on TCP exactly as they do on QUIC.
//!
//! The exchange is modelled as a sans-IO [`TcpFlow`] state machine for the
//! discrete-event engine, driven through the [`TcpConnectionRun`] builder —
//! the mirror of `qem_quic`'s `ConnectionRun`.  Without cross traffic it is
//! a one-flow engine with no shared queues (bit-identical to the historical
//! straight-line script); with [`TcpConnectionRun::cross_traffic`] the flow
//! runs next to background load through a shared bottleneck queue, where CE
//! marks — and therefore ECE echoes — emerge from combined occupancy.  The
//! legacy `run_tcp_connection*` functions survive as thin deprecated
//! wrappers.

use crate::behavior::TcpServerBehavior;
use qem_netsim::engine::{CrossTraffic, Engine, EngineTelemetry, Flow, FlowStatus, SharedQueues};
use qem_netsim::{DuplexPath, SimDuration, SimInstant, TransitOutcome};
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header, Ipv6Header};
use qem_packet::tcp::{TcpFlags, TcpHeader};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Client-side configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpClientConfig {
    /// Whether the client requests ECN (sends an ECN-setup SYN).
    pub ecn_enabled: bool,
    /// The codepoint set on data segments once ECN is negotiated.  The
    /// paper's §6.3 run replaces `ECT(0)` with `CE` to force the ECE echo.
    pub probe_codepoint: EcnCodepoint,
    /// Number of probe data segments sent after the request.
    pub probe_segments: u32,
}

impl TcpClientConfig {
    /// Standard ECN probing with ECT(0).
    pub fn ect0() -> Self {
        TcpClientConfig {
            ecn_enabled: true,
            probe_codepoint: EcnCodepoint::Ect0,
            probe_segments: 5,
        }
    }

    /// The §6.3 configuration: probe with CE to trigger the ECE echo.
    pub fn force_ce() -> Self {
        TcpClientConfig {
            probe_codepoint: EcnCodepoint::Ce,
            ..TcpClientConfig::ect0()
        }
    }

    /// ECN disabled entirely.
    pub fn disabled() -> Self {
        TcpClientConfig {
            ecn_enabled: false,
            probe_codepoint: EcnCodepoint::NotEct,
            probe_segments: 5,
        }
    }
}

impl Default for TcpClientConfig {
    fn default() -> Self {
        TcpClientConfig::ect0()
    }
}

/// The observations the scanner records for one TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpReport {
    /// Whether the handshake completed (SYN-ACK received and acknowledged).
    pub connected: bool,
    /// Whether ECN was negotiated (tcpinfo's view).
    pub negotiated: bool,
    /// Whether the server echoed a CE mark via the ECE flag.
    pub ce_mirrored: bool,
    /// Whether the client's CWR was answered (the echo stopped afterwards).
    pub cwr_acknowledged: bool,
    /// Codepoints observed on segments arriving at the client
    /// (the eBPF counter; reveals whether the server *uses* ECN).
    pub received_ecn: EcnCounts,
    /// Codepoints observed on segments arriving at the server (ground truth
    /// about the forward path; a real scan cannot see this).
    pub server_observed_ecn: EcnCounts,
    /// Whether any segment from the server carried ECT or CE.
    pub server_used_ecn: bool,
    /// Whether an HTTP response arrived.
    pub response_received: bool,
    /// Client segments lost on the forward path.
    pub forward_losses: u32,
}

struct Wire<'a> {
    client: IpAddr,
    server: IpAddr,
    path: &'a DuplexPath,
}

impl<'a> Wire<'a> {
    fn send_forward<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        now: SimInstant,
        net: &mut SharedQueues,
        ecn: EcnCodepoint,
        header: TcpHeader,
        payload: &[u8],
    ) -> Option<IpDatagram> {
        let segment = header.encode(self.client, self.server, payload);
        let datagram = encapsulate(self.client, self.server, ecn, segment);
        match self.path.forward.transit_shared(&datagram, now, rng, net) {
            TransitOutcome::Delivered { datagram, .. } => Some(datagram),
            _ => None,
        }
    }

    fn send_reverse<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        now: SimInstant,
        net: &mut SharedQueues,
        ecn: EcnCodepoint,
        header: TcpHeader,
        payload: &[u8],
    ) -> Option<IpDatagram> {
        let segment = header.encode(self.server, self.client, payload);
        let datagram = encapsulate(self.server, self.client, ecn, segment);
        match self.path.reverse.transit_shared(&datagram, now, rng, net) {
            TransitOutcome::Delivered { datagram, .. } => Some(datagram),
            _ => None,
        }
    }
}

fn encapsulate(src: IpAddr, dst: IpAddr, ecn: EcnCodepoint, payload: Vec<u8>) -> IpDatagram {
    let header = match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            IpHeader::V4(Ipv4Header::new(s, d, IpProtocol::Tcp, 64).with_ecn(ecn))
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            IpHeader::V6(Ipv6Header::new(s, d, IpProtocol::Tcp, 64).with_ecn(ecn))
        }
        _ => IpHeader::V4(
            Ipv4Header::new(
                std::net::Ipv4Addr::UNSPECIFIED,
                std::net::Ipv4Addr::UNSPECIFIED,
                IpProtocol::Tcp,
                64,
            )
            .with_ecn(ecn),
        ),
    };
    IpDatagram::new(header, payload)
}

fn decode(datagram: &IpDatagram) -> Option<(TcpHeader, Vec<u8>)> {
    if datagram.header.protocol() != IpProtocol::Tcp {
        return None;
    }
    TcpHeader::decode(&datagram.payload)
        .ok()
        .map(|(h, p)| (h, p.to_vec()))
}

const CLIENT_PORT: u16 = 52_000;
const SERVER_PORT: u16 = 443;

/// Where the sans-IO TCP exchange currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpFlowState {
    /// SYN / SYN-ACK not yet exchanged.
    Handshake,
    /// Request / probe segment `index` is next.
    Data { index: usize },
    /// The exchange is over (successfully or not).
    Finished,
}

/// One TCP measurement connection as a sans-IO flow for the discrete-event
/// engine.
///
/// Without pacing the whole exchange happens at the flow's first wake —
/// exactly the historical straight-line script, transit for transit and RNG
/// draw for RNG draw.  With [`TcpFlow::with_pacing`] the client spreads its
/// data segments over virtual time, which lets background-flow scenarios
/// shape the bottleneck occupancy each segment encounters.
pub struct TcpFlow<'a, R: Rng + ?Sized> {
    config: TcpClientConfig,
    behavior: TcpServerBehavior,
    wire: Wire<'a>,
    rng: &'a mut R,
    report: TcpReport,
    state: TcpFlowState,
    pacing: SimDuration,
    segments: Vec<Vec<u8>>,
    server_ecn: bool,
    server_saw_ce: bool,
    client_seq: u32,
    client_data_ecn: EcnCodepoint,
    server_data_ecn: EcnCodepoint,
}

impl<'a, R: Rng + ?Sized> TcpFlow<'a, R> {
    /// Wrap a client configuration and a server behaviour into a flow over
    /// `path`.
    pub fn new(
        config: TcpClientConfig,
        behavior: TcpServerBehavior,
        client_addr: IpAddr,
        server_addr: IpAddr,
        path: &'a DuplexPath,
        rng: &'a mut R,
    ) -> Self {
        TcpFlow {
            config,
            behavior,
            wire: Wire {
                client: client_addr,
                server: server_addr,
                path,
            },
            rng,
            report: TcpReport::default(),
            state: TcpFlowState::Handshake,
            pacing: SimDuration::ZERO,
            segments: Vec::new(),
            server_ecn: false,
            server_saw_ce: false,
            client_seq: 1_001,
            client_data_ecn: EcnCodepoint::NotEct,
            server_data_ecn: EcnCodepoint::NotEct,
        }
    }

    /// Space the data segments `interval` apart in virtual time instead of
    /// sending them back to back at the first wake.
    pub fn with_pacing(mut self, interval: SimDuration) -> Self {
        self.pacing = interval;
        self
    }

    /// Whether the exchange has finished.
    pub fn is_done(&self) -> bool {
        self.state == TcpFlowState::Finished
    }

    /// Consume the flow and return the scanner's observations.
    pub fn into_report(self) -> TcpReport {
        self.report
    }

    /// SYN / SYN-ACK exchange; returns whether the data phase should run.
    fn handshake(&mut self, now: SimInstant, net: &mut SharedQueues) -> bool {
        let syn_flags = if self.config.ecn_enabled {
            TcpFlags::ECN_SETUP_SYN
        } else {
            TcpFlags {
                syn: true,
                ..TcpFlags::default()
            }
        };
        // The SYN itself is never ECT-marked (RFC 3168 §6.1.1).
        let syn = TcpHeader::new(CLIENT_PORT, SERVER_PORT, 1_000, 0, syn_flags);
        let Some(at_server) =
            self.wire
                .send_forward(self.rng, now, net, EcnCodepoint::NotEct, syn, &[])
        else {
            self.report.forward_losses += 1;
            return false;
        };
        let Some((syn_seen, _)) = decode(&at_server) else {
            return false;
        };
        self.report
            .server_observed_ecn
            .record(at_server.header.ecn());

        // The server accepts ECN only if the SYN still looks like an ECN setup
        // (middleboxes clearing TCP flags are out of scope — the paper found
        // the relevant impairments on the IP layer).
        self.server_ecn = self.behavior.negotiate_ecn && syn_seen.flags.is_ecn_setup_syn();
        let syn_ack_flags = TcpFlags {
            syn: true,
            ack: true,
            ece: self.server_ecn,
            ..TcpFlags::default()
        };
        let syn_ack = TcpHeader::new(SERVER_PORT, CLIENT_PORT, 5_000, 1_001, syn_ack_flags);
        let Some(at_client) =
            self.wire
                .send_reverse(self.rng, now, net, EcnCodepoint::NotEct, syn_ack, &[])
        else {
            return false;
        };
        let Some((syn_ack_seen, _)) = decode(&at_client) else {
            return false;
        };
        self.report.received_ecn.record(at_client.header.ecn());
        self.report.connected = true;
        self.report.negotiated =
            self.config.ecn_enabled && syn_ack_seen.flags.is_ecn_setup_syn_ack();

        // Client data codepoint: only marked if ECN was negotiated.
        self.client_data_ecn = if self.report.negotiated {
            self.config.probe_codepoint
        } else {
            EcnCodepoint::NotEct
        };
        self.server_data_ecn = if self.server_ecn {
            self.behavior.egress_ecn
        } else {
            EcnCodepoint::NotEct
        };

        let request = b"GET / HTTP/1.1\r\nhost: probe\r\n\r\n".to_vec();
        self.segments = vec![request];
        for i in 0..self.config.probe_segments {
            self.segments.push(format!("probe-{i}").into_bytes());
        }
        true
    }

    /// One data segment plus the server's ACK (and, for the request, the
    /// HTTP response).
    fn exchange_segment(&mut self, index: usize, now: SimInstant, net: &mut SharedQueues) {
        let payload = std::mem::take(&mut self.segments[index]);
        let flags = TcpFlags {
            ack: true,
            psh: true,
            // Acknowledge a previously echoed CE with CWR exactly once.
            cwr: self.report.ce_mirrored && !self.report.cwr_acknowledged,
            ..TcpFlags::default()
        };
        if flags.cwr {
            self.report.cwr_acknowledged = true;
        }
        let header = TcpHeader::new(CLIENT_PORT, SERVER_PORT, self.client_seq, 5_001, flags);
        self.client_seq = self.client_seq.wrapping_add(payload.len() as u32);
        let Some(at_server) =
            self.wire
                .send_forward(self.rng, now, net, self.client_data_ecn, header, &payload)
        else {
            self.report.forward_losses += 1;
            return;
        };
        self.report
            .server_observed_ecn
            .record(at_server.header.ecn());
        if at_server.header.ecn() == EcnCodepoint::Ce {
            self.server_saw_ce = true;
        }

        // The server acknowledges each segment; it echoes ECE while it has an
        // unacknowledged CE (RFC 3168 §6.1.3) if it mirrors at all.
        let echo = self.server_ecn
            && self.behavior.mirror_ce
            && self.server_saw_ce
            && !self.report.cwr_acknowledged;
        let ack_flags = TcpFlags {
            ack: true,
            ece: echo,
            ..TcpFlags::default()
        };
        let ack = TcpHeader::new(SERVER_PORT, CLIENT_PORT, 5_001, self.client_seq, ack_flags);
        if let Some(at_client) =
            self.wire
                .send_reverse(self.rng, now, net, self.server_data_ecn, ack, &[])
        {
            self.report.received_ecn.record(at_client.header.ecn());
            if let Some((ack_seen, _)) = decode(&at_client) {
                if ack_seen.flags.ece {
                    self.report.ce_mirrored = true;
                }
            }
        }

        // Serve the HTTP response right after the request segment.
        if index == 0 && self.behavior.serves_http {
            let body = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok".to_vec();
            let resp_flags = TcpFlags {
                ack: true,
                psh: true,
                ..TcpFlags::default()
            };
            let resp = TcpHeader::new(SERVER_PORT, CLIENT_PORT, 5_001, self.client_seq, resp_flags);
            if let Some(at_client) =
                self.wire
                    .send_reverse(self.rng, now, net, self.server_data_ecn, resp, &body)
            {
                self.report.received_ecn.record(at_client.header.ecn());
                self.report.response_received = true;
            }
        }
    }

    fn finish(&mut self) -> FlowStatus {
        self.report.server_used_ecn = self.report.received_ecn.total() > 0;
        self.state = TcpFlowState::Finished;
        FlowStatus::Done
    }
}

impl<R: Rng + ?Sized> Flow for TcpFlow<'_, R> {
    fn on_wake(&mut self, now: SimInstant, net: &mut SharedQueues) -> FlowStatus {
        loop {
            match self.state {
                TcpFlowState::Handshake => {
                    if !self.handshake(now, net) {
                        // Early abort: the legacy script returns the report
                        // as-is, without deriving `server_used_ecn`.
                        self.state = TcpFlowState::Finished;
                        return FlowStatus::Done;
                    }
                    self.state = TcpFlowState::Data { index: 0 };
                }
                TcpFlowState::Data { index } => {
                    if index >= self.segments.len() {
                        return self.finish();
                    }
                    self.exchange_segment(index, now, net);
                    self.state = TcpFlowState::Data { index: index + 1 };
                    if self.pacing > SimDuration::ZERO && index + 1 < self.segments.len() {
                        return FlowStatus::Sleep(now + self.pacing);
                    }
                }
                TcpFlowState::Finished => return FlowStatus::Done,
            }
        }
    }
}

/// A complete TCP run: the scanner's [`TcpReport`] plus, when requested via
/// [`TcpConnectionRun::telemetry`], the engine's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpRunOutcome {
    /// The scanner's observations.
    pub report: TcpReport,
    /// Engine telemetry, `Some` iff requested.
    pub telemetry: Option<EngineTelemetry>,
}

/// Builder for one TCP measurement connection — the mirror of `qem_quic`'s
/// `ConnectionRun`, replacing the `run_tcp_connection` /
/// `run_tcp_connection_under_load` pair.
///
/// Defaults mirror the paper's methodology: no cross traffic, no telemetry.
/// Each combination is bit-identical to the legacy function it replaces,
/// and — new with the builder — TCP runs can now capture engine telemetry
/// just like QUIC runs.
#[derive(Debug)]
pub struct TcpConnectionRun<'a> {
    config: TcpClientConfig,
    behavior: TcpServerBehavior,
    client_addr: IpAddr,
    server_addr: IpAddr,
    path: &'a DuplexPath,
    cross: CrossTraffic,
    telemetry: bool,
}

impl<'a> TcpConnectionRun<'a> {
    /// A run of `config` against a `behavior` server between the given
    /// addresses over `path`, with no cross traffic and no telemetry.
    pub fn new(
        config: TcpClientConfig,
        behavior: TcpServerBehavior,
        client_addr: IpAddr,
        server_addr: IpAddr,
        path: &'a DuplexPath,
    ) -> Self {
        TcpConnectionRun {
            config,
            behavior,
            client_addr,
            server_addr,
            path,
            cross: CrossTraffic::none(),
            telemetry: false,
        }
    }

    /// Race `cross` background flows through the forward path's bottleneck
    /// router (its last hop).  CE marks on the probe segments — and
    /// therefore the server's ECE echo — then depend on the combined queue
    /// occupancy rather than the probe codepoint alone.
    /// [`CrossTraffic::none`] (the default) is the single-flow exchange,
    /// bit for bit.
    pub fn cross_traffic(mut self, cross: CrossTraffic) -> Self {
        self.cross = cross;
        self
    }

    /// Whether to capture the engine's telemetry.  Purely observational:
    /// the report is bit-identical either way.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Drive the exchange to completion.
    pub fn execute<R: Rng + ?Sized>(self, rng: &mut R) -> TcpRunOutcome {
        let TcpConnectionRun {
            config,
            behavior,
            client_addr,
            server_addr,
            path,
            cross,
            telemetry: want_telemetry,
        } = self;
        // No scenario — or nothing to attach it to (a hop-less path has no
        // bottleneck): run the plain single-flow exchange with an untouched
        // RNG stream so the fallback really is bit-identical.
        if !cross.is_enabled() || CrossTraffic::bottleneck_of(&path.forward).is_none() {
            let mut flow = TcpFlow::new(config, behavior, client_addr, server_addr, path, rng);
            let mut engine = Engine::new(SharedQueues::new());
            engine.add_flow(&mut flow);
            engine.run();
            let telemetry = want_telemetry.then(|| engine.telemetry());
            drop(engine);
            return TcpRunOutcome {
                report: flow.into_report(),
                telemetry,
            };
        }
        let (queues, mut loads) = cross
            .instantiate(&path.forward, rng.gen())
            // Unreachable: the guard above returned unless the scenario is
            // enabled and the path has a bottleneck, and restructuring into
            // a fallback would reorder the RNG draws the golden reports pin.
            // lint: allow(panic-policy) guard-checked precondition
            .expect("enabled scenario with a bottleneck");
        let mut engine = Engine::new(queues);
        for load in loads.iter_mut() {
            engine.add_flow(load);
        }
        // Pace the probes across the background burst so each segment
        // samples the queue, rather than the whole exchange landing on one
        // instant.
        let mut flow = TcpFlow::new(config, behavior, client_addr, server_addr, path, rng)
            .with_pacing(SimDuration::from_millis(1));
        engine.add_flow(&mut flow);
        engine.run();
        let telemetry = want_telemetry.then(|| engine.telemetry());
        drop(engine);
        TcpRunOutcome {
            report: flow.into_report(),
            telemetry,
        }
    }
}

/// Run one TCP connection between a client at `client_addr` and a server at
/// `server_addr` over `path`, returning the scanner's observations.
#[deprecated(note = "use the TcpConnectionRun builder: \
                     TcpConnectionRun::new(..).execute(rng).report")]
pub fn run_tcp_connection<R: Rng + ?Sized>(
    config: TcpClientConfig,
    behavior: TcpServerBehavior,
    client_addr: IpAddr,
    server_addr: IpAddr,
    path: &DuplexPath,
    rng: &mut R,
) -> TcpReport {
    TcpConnectionRun::new(config, behavior, client_addr, server_addr, path)
        .execute(rng)
        .report
}

/// Run one TCP connection while `cross` background flows push packets
/// through the forward path's bottleneck router (its last hop).
#[deprecated(note = "use the TcpConnectionRun builder with .cross_traffic(cross)")]
pub fn run_tcp_connection_under_load<R: Rng + ?Sized>(
    config: TcpClientConfig,
    behavior: TcpServerBehavior,
    client_addr: IpAddr,
    server_addr: IpAddr,
    path: &DuplexPath,
    cross: &CrossTraffic,
    rng: &mut R,
) -> TcpReport {
    TcpConnectionRun::new(config, behavior, client_addr, server_addr, path)
        .cross_traffic(*cross)
        .execute(rng)
        .report
}

#[cfg(test)]
// The legacy wrappers are exercised deliberately: these tests are the proof
// that each deprecated function stays equivalent to its builder form.
#[allow(deprecated)]
mod tests {
    use super::*;
    use qem_netsim::{build_transit_path, Asn, TransitProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 20)),
        )
    }

    fn clean() -> DuplexPath {
        DuplexPath::symmetric_clean_reverse(build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Clean,
            false,
        ))
    }

    fn run(config: TcpClientConfig, behavior: TcpServerBehavior, path: &DuplexPath) -> TcpReport {
        let (c, s) = addrs();
        let mut rng = StdRng::seed_from_u64(42);
        TcpConnectionRun::new(config, behavior, c, s, path)
            .execute(&mut rng)
            .report
    }

    #[test]
    fn ce_probe_against_full_ecn_server_is_mirrored() {
        let report = run(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::full_ecn(),
            &clean(),
        );
        assert!(report.connected);
        assert!(report.negotiated);
        assert!(report.ce_mirrored);
        assert!(report.cwr_acknowledged);
        assert!(report.response_received);
        assert!(report.server_used_ecn);
        assert!(report.server_observed_ecn.ce >= 1);
    }

    #[test]
    fn ect0_probe_is_not_echoed_as_ece() {
        let report = run(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            &clean(),
        );
        assert!(report.negotiated);
        assert!(!report.ce_mirrored);
        assert!(report.server_observed_ecn.ect0 >= 5);
    }

    #[test]
    fn non_ecn_server_refuses_negotiation() {
        let report = run(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::no_ecn(),
            &clean(),
        );
        assert!(report.connected);
        assert!(!report.negotiated);
        assert!(!report.ce_mirrored);
        // Without negotiation the client never marks its segments.
        assert_eq!(report.server_observed_ecn.ce, 0);
    }

    #[test]
    fn disabled_client_never_negotiates() {
        let report = run(
            TcpClientConfig::disabled(),
            TcpServerBehavior::full_ecn(),
            &clean(),
        );
        assert!(report.connected);
        assert!(!report.negotiated);
        assert_eq!(report.server_observed_ecn.total(), 0);
    }

    #[test]
    fn negotiating_server_without_mirroring_shows_no_echo() {
        let report = run(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::negotiate_without_mirroring(),
            &clean(),
        );
        assert!(report.negotiated);
        assert!(!report.ce_mirrored);
    }

    #[test]
    fn mirror_only_server_does_not_use_ecn() {
        let report = run(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::mirror_only(),
            &clean(),
        );
        assert!(report.ce_mirrored);
        assert!(!report.server_used_ecn);
    }

    #[test]
    fn clearing_path_defeats_ce_mirroring_for_tcp_too() {
        let forward = build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Clearing { asn: Asn::ARELION },
            false,
        );
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let report = run(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::full_ecn(),
            &path,
        );
        assert!(report.negotiated, "negotiation is flag-based and survives");
        assert!(!report.ce_mirrored, "the CE mark never reaches the server");
        assert_eq!(report.server_observed_ecn.ce, 0);
    }

    #[test]
    fn remarking_path_does_not_disturb_tcp() {
        // The paper's §9 point: ECT(0)→ECT(1) re-marking is invisible to
        // classic TCP; CE still gets through and is echoed.
        let forward = build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Remarking { asn: Asn::ARELION },
            false,
        );
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let report = run(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::full_ecn(),
            &path,
        );
        assert!(report.negotiated);
        assert!(report.ce_mirrored);
    }

    #[test]
    fn total_loss_reports_unconnected() {
        use qem_netsim::{Hop, Path, Router};
        let lossy = Path::new(vec![
            Hop::new(Router::transparent(1, Asn::DFN)).with_loss(1.0)
        ]);
        let path = DuplexPath::new(lossy, Path::empty());
        let report = run(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            &path,
        );
        assert!(!report.connected);
        assert!(report.forward_losses >= 1);
    }

    #[test]
    fn cross_traffic_triggers_ece_echo_for_ect0_probes() {
        use qem_netsim::CrossTraffic;
        let (c, s) = addrs();
        let path = clean();

        // ECT(0) probing alone never produces an ECE echo on a clean path…
        let mut rng = StdRng::seed_from_u64(99);
        let solo = run_tcp_connection(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            c,
            s,
            &path,
            &mut rng,
        );
        assert!(solo.negotiated);
        assert!(!solo.ce_mirrored);
        assert_eq!(solo.server_observed_ecn.ce, 0);

        // …but behind a congested shared bottleneck the probes arrive CE and
        // the server echoes ECE.
        let mut rng = StdRng::seed_from_u64(99);
        let loaded = run_tcp_connection_under_load(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            c,
            s,
            &path,
            &CrossTraffic::congested(),
            &mut rng,
        );
        assert!(loaded.negotiated);
        assert!(
            loaded.server_observed_ecn.ce > 0,
            "combined occupancy must CE-mark TCP probes"
        );
        assert!(loaded.ce_mirrored, "the server must echo the marks via ECE");

        // A disabled scenario is the single-flow run, bit for bit.
        let mut rng = StdRng::seed_from_u64(99);
        let off = run_tcp_connection_under_load(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            c,
            s,
            &path,
            &CrossTraffic::none(),
            &mut rng,
        );
        assert_eq!(off, solo);
    }

    #[test]
    fn builder_is_equivalent_to_every_legacy_wrapper() {
        use qem_netsim::CrossTraffic;
        let (c, s) = addrs();
        let path = clean();

        // Plain run: builder == run_tcp_connection, with no telemetry
        // captured unless asked for.
        let mut rng = StdRng::seed_from_u64(91);
        let legacy = run_tcp_connection(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            c,
            s,
            &path,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(91);
        let built = TcpConnectionRun::new(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            c,
            s,
            &path,
        )
        .execute(&mut rng);
        assert_eq!(built.report, legacy);
        assert!(built.telemetry.is_none());

        // Loaded run: builder with cross traffic == the under-load wrapper,
        // and telemetry capture does not perturb the report.
        let cross = CrossTraffic::congested();
        let mut rng = StdRng::seed_from_u64(91);
        let legacy = run_tcp_connection_under_load(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            c,
            s,
            &path,
            &cross,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(91);
        let built = TcpConnectionRun::new(
            TcpClientConfig::ect0(),
            TcpServerBehavior::full_ecn(),
            c,
            s,
            &path,
        )
        .cross_traffic(cross)
        .telemetry(true)
        .execute(&mut rng);
        assert_eq!(built.report, legacy);
        assert!(built.telemetry.is_some());
    }

    #[test]
    fn ipv6_tcp_connection_works() {
        let forward = build_transit_path(Asn::DFN, Asn(13335), TransitProfile::Clean, true);
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let mut rng = StdRng::seed_from_u64(7);
        let report = run_tcp_connection(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::full_ecn(),
            "2001:db8::1".parse().unwrap(),
            "2001:db8:2::9".parse().unwrap(),
            &path,
            &mut rng,
        );
        assert!(report.connected);
        assert!(report.ce_mirrored);
    }
}
