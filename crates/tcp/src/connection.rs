//! A deterministic TCP connection simulation over a [`DuplexPath`].
//!
//! The exchange mirrors what the study's zgrab-based scanner produces for
//! each domain: an ECN-setup handshake, an HTTP request, a handful of probe
//! segments carrying the configured codepoint (`ECT(0)` normally, `CE` in the
//! §6.3 experiment), the server's response, and a FIN.  Every segment is a
//! real [`TcpHeader`]-encoded packet pushed through the path simulator, so
//! path-level ECN impairments act on TCP exactly as they do on QUIC.

use crate::behavior::TcpServerBehavior;
use qem_netsim::{DuplexPath, TransitOutcome};
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header, Ipv6Header};
use qem_packet::tcp::{TcpFlags, TcpHeader};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Client-side configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpClientConfig {
    /// Whether the client requests ECN (sends an ECN-setup SYN).
    pub ecn_enabled: bool,
    /// The codepoint set on data segments once ECN is negotiated.  The
    /// paper's §6.3 run replaces `ECT(0)` with `CE` to force the ECE echo.
    pub probe_codepoint: EcnCodepoint,
    /// Number of probe data segments sent after the request.
    pub probe_segments: u32,
}

impl TcpClientConfig {
    /// Standard ECN probing with ECT(0).
    pub fn ect0() -> Self {
        TcpClientConfig {
            ecn_enabled: true,
            probe_codepoint: EcnCodepoint::Ect0,
            probe_segments: 5,
        }
    }

    /// The §6.3 configuration: probe with CE to trigger the ECE echo.
    pub fn force_ce() -> Self {
        TcpClientConfig {
            probe_codepoint: EcnCodepoint::Ce,
            ..TcpClientConfig::ect0()
        }
    }

    /// ECN disabled entirely.
    pub fn disabled() -> Self {
        TcpClientConfig {
            ecn_enabled: false,
            probe_codepoint: EcnCodepoint::NotEct,
            probe_segments: 5,
        }
    }
}

impl Default for TcpClientConfig {
    fn default() -> Self {
        TcpClientConfig::ect0()
    }
}

/// The observations the scanner records for one TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpReport {
    /// Whether the handshake completed (SYN-ACK received and acknowledged).
    pub connected: bool,
    /// Whether ECN was negotiated (tcpinfo's view).
    pub negotiated: bool,
    /// Whether the server echoed a CE mark via the ECE flag.
    pub ce_mirrored: bool,
    /// Whether the client's CWR was answered (the echo stopped afterwards).
    pub cwr_acknowledged: bool,
    /// Codepoints observed on segments arriving at the client
    /// (the eBPF counter; reveals whether the server *uses* ECN).
    pub received_ecn: EcnCounts,
    /// Codepoints observed on segments arriving at the server (ground truth
    /// about the forward path; a real scan cannot see this).
    pub server_observed_ecn: EcnCounts,
    /// Whether any segment from the server carried ECT or CE.
    pub server_used_ecn: bool,
    /// Whether an HTTP response arrived.
    pub response_received: bool,
    /// Client segments lost on the forward path.
    pub forward_losses: u32,
}

struct Wire<'a> {
    client: IpAddr,
    server: IpAddr,
    path: &'a DuplexPath,
}

impl<'a> Wire<'a> {
    fn send_forward<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ecn: EcnCodepoint,
        header: TcpHeader,
        payload: &[u8],
    ) -> Option<IpDatagram> {
        let segment = header.encode(self.client, self.server, payload);
        let datagram = encapsulate(self.client, self.server, ecn, segment);
        match self.path.forward.transit(&datagram, rng) {
            TransitOutcome::Delivered { datagram, .. } => Some(datagram),
            _ => None,
        }
    }

    fn send_reverse<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ecn: EcnCodepoint,
        header: TcpHeader,
        payload: &[u8],
    ) -> Option<IpDatagram> {
        let segment = header.encode(self.server, self.client, payload);
        let datagram = encapsulate(self.server, self.client, ecn, segment);
        match self.path.reverse.transit(&datagram, rng) {
            TransitOutcome::Delivered { datagram, .. } => Some(datagram),
            _ => None,
        }
    }
}

fn encapsulate(src: IpAddr, dst: IpAddr, ecn: EcnCodepoint, payload: Vec<u8>) -> IpDatagram {
    let header = match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            IpHeader::V4(Ipv4Header::new(s, d, IpProtocol::Tcp, 64).with_ecn(ecn))
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            IpHeader::V6(Ipv6Header::new(s, d, IpProtocol::Tcp, 64).with_ecn(ecn))
        }
        _ => IpHeader::V4(
            Ipv4Header::new(
                std::net::Ipv4Addr::UNSPECIFIED,
                std::net::Ipv4Addr::UNSPECIFIED,
                IpProtocol::Tcp,
                64,
            )
            .with_ecn(ecn),
        ),
    };
    IpDatagram::new(header, payload)
}

fn decode(datagram: &IpDatagram) -> Option<(TcpHeader, Vec<u8>)> {
    if datagram.header.protocol() != IpProtocol::Tcp {
        return None;
    }
    TcpHeader::decode(&datagram.payload)
        .ok()
        .map(|(h, p)| (h, p.to_vec()))
}

/// Run one TCP connection between a client at `client_addr` and a server at
/// `server_addr` over `path`, returning the scanner's observations.
pub fn run_tcp_connection<R: Rng + ?Sized>(
    config: TcpClientConfig,
    behavior: TcpServerBehavior,
    client_addr: IpAddr,
    server_addr: IpAddr,
    path: &DuplexPath,
    rng: &mut R,
) -> TcpReport {
    let wire = Wire {
        client: client_addr,
        server: server_addr,
        path,
    };
    let mut report = TcpReport::default();
    let client_port = 52_000u16;
    let server_port = 443u16;

    // --- Handshake -------------------------------------------------------
    let syn_flags = if config.ecn_enabled {
        TcpFlags::ECN_SETUP_SYN
    } else {
        TcpFlags {
            syn: true,
            ..TcpFlags::default()
        }
    };
    // The SYN itself is never ECT-marked (RFC 3168 §6.1.1).
    let syn = TcpHeader::new(client_port, server_port, 1_000, 0, syn_flags);
    let Some(at_server) = wire.send_forward(rng, EcnCodepoint::NotEct, syn, &[]) else {
        report.forward_losses += 1;
        return report;
    };
    let Some((syn_seen, _)) = decode(&at_server) else {
        return report;
    };
    report.server_observed_ecn.record(at_server.header.ecn());

    // The server accepts ECN only if the SYN still looks like an ECN setup
    // (middleboxes clearing TCP flags are out of scope — the paper found the
    // relevant impairments on the IP layer).
    let server_ecn = behavior.negotiate_ecn && syn_seen.flags.is_ecn_setup_syn();
    let syn_ack_flags = TcpFlags {
        syn: true,
        ack: true,
        ece: server_ecn,
        ..TcpFlags::default()
    };
    let syn_ack = TcpHeader::new(server_port, client_port, 5_000, 1_001, syn_ack_flags);
    let Some(at_client) = wire.send_reverse(rng, EcnCodepoint::NotEct, syn_ack, &[]) else {
        return report;
    };
    let Some((syn_ack_seen, _)) = decode(&at_client) else {
        return report;
    };
    report.received_ecn.record(at_client.header.ecn());
    report.connected = true;
    report.negotiated = config.ecn_enabled && syn_ack_seen.flags.is_ecn_setup_syn_ack();

    // Client data codepoint: only marked if ECN was negotiated.
    let client_data_ecn = if report.negotiated {
        config.probe_codepoint
    } else {
        EcnCodepoint::NotEct
    };
    let server_data_ecn = if server_ecn {
        behavior.egress_ecn
    } else {
        EcnCodepoint::NotEct
    };

    // --- Request + probe segments ----------------------------------------
    let mut server_saw_ce = false;
    let mut client_seq = 1_001u32;
    let request = b"GET / HTTP/1.1\r\nhost: probe\r\n\r\n".to_vec();
    let mut segments: Vec<Vec<u8>> = vec![request];
    for i in 0..config.probe_segments {
        segments.push(format!("probe-{i}").into_bytes());
    }

    for (index, payload) in segments.iter().enumerate() {
        let flags = TcpFlags {
            ack: true,
            psh: true,
            // Acknowledge a previously echoed CE with CWR exactly once.
            cwr: report.ce_mirrored && !report.cwr_acknowledged,
            ..TcpFlags::default()
        };
        if flags.cwr {
            report.cwr_acknowledged = true;
        }
        let header = TcpHeader::new(client_port, server_port, client_seq, 5_001, flags);
        client_seq = client_seq.wrapping_add(payload.len() as u32);
        let Some(at_server) = wire.send_forward(rng, client_data_ecn, header, payload) else {
            report.forward_losses += 1;
            continue;
        };
        report.server_observed_ecn.record(at_server.header.ecn());
        if at_server.header.ecn() == EcnCodepoint::Ce {
            server_saw_ce = true;
        }

        // The server acknowledges each segment; it echoes ECE while it has an
        // unacknowledged CE (RFC 3168 §6.1.3) if it mirrors at all.
        let echo = server_ecn && behavior.mirror_ce && server_saw_ce && !report.cwr_acknowledged;
        let ack_flags = TcpFlags {
            ack: true,
            ece: echo,
            ..TcpFlags::default()
        };
        let ack = TcpHeader::new(server_port, client_port, 5_001, client_seq, ack_flags);
        if let Some(at_client) = wire.send_reverse(rng, server_data_ecn, ack, &[]) {
            report.received_ecn.record(at_client.header.ecn());
            if let Some((ack_seen, _)) = decode(&at_client) {
                if ack_seen.flags.ece {
                    report.ce_mirrored = true;
                }
            }
        }

        // Serve the HTTP response right after the request segment.
        if index == 0 && behavior.serves_http {
            let body = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok".to_vec();
            let resp_flags = TcpFlags {
                ack: true,
                psh: true,
                ..TcpFlags::default()
            };
            let resp = TcpHeader::new(server_port, client_port, 5_001, client_seq, resp_flags);
            if let Some(at_client) = wire.send_reverse(rng, server_data_ecn, resp, &body) {
                report.received_ecn.record(at_client.header.ecn());
                report.response_received = true;
            }
        }
    }

    report.server_used_ecn = report.received_ecn.total() > 0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qem_netsim::{build_transit_path, Asn, TransitProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 20)),
        )
    }

    fn clean() -> DuplexPath {
        DuplexPath::symmetric_clean_reverse(build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Clean,
            false,
        ))
    }

    fn run(config: TcpClientConfig, behavior: TcpServerBehavior, path: &DuplexPath) -> TcpReport {
        let (c, s) = addrs();
        let mut rng = StdRng::seed_from_u64(42);
        run_tcp_connection(config, behavior, c, s, path, &mut rng)
    }

    #[test]
    fn ce_probe_against_full_ecn_server_is_mirrored() {
        let report = run(TcpClientConfig::force_ce(), TcpServerBehavior::full_ecn(), &clean());
        assert!(report.connected);
        assert!(report.negotiated);
        assert!(report.ce_mirrored);
        assert!(report.cwr_acknowledged);
        assert!(report.response_received);
        assert!(report.server_used_ecn);
        assert!(report.server_observed_ecn.ce >= 1);
    }

    #[test]
    fn ect0_probe_is_not_echoed_as_ece() {
        let report = run(TcpClientConfig::ect0(), TcpServerBehavior::full_ecn(), &clean());
        assert!(report.negotiated);
        assert!(!report.ce_mirrored);
        assert!(report.server_observed_ecn.ect0 >= 5);
    }

    #[test]
    fn non_ecn_server_refuses_negotiation() {
        let report = run(TcpClientConfig::force_ce(), TcpServerBehavior::no_ecn(), &clean());
        assert!(report.connected);
        assert!(!report.negotiated);
        assert!(!report.ce_mirrored);
        // Without negotiation the client never marks its segments.
        assert_eq!(report.server_observed_ecn.ce, 0);
    }

    #[test]
    fn disabled_client_never_negotiates() {
        let report = run(TcpClientConfig::disabled(), TcpServerBehavior::full_ecn(), &clean());
        assert!(report.connected);
        assert!(!report.negotiated);
        assert_eq!(report.server_observed_ecn.total(), 0);
    }

    #[test]
    fn negotiating_server_without_mirroring_shows_no_echo() {
        let report = run(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::negotiate_without_mirroring(),
            &clean(),
        );
        assert!(report.negotiated);
        assert!(!report.ce_mirrored);
    }

    #[test]
    fn mirror_only_server_does_not_use_ecn() {
        let report = run(TcpClientConfig::force_ce(), TcpServerBehavior::mirror_only(), &clean());
        assert!(report.ce_mirrored);
        assert!(!report.server_used_ecn);
    }

    #[test]
    fn clearing_path_defeats_ce_mirroring_for_tcp_too() {
        let forward = build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Clearing { asn: Asn::ARELION },
            false,
        );
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let report = run(TcpClientConfig::force_ce(), TcpServerBehavior::full_ecn(), &path);
        assert!(report.negotiated, "negotiation is flag-based and survives");
        assert!(!report.ce_mirrored, "the CE mark never reaches the server");
        assert_eq!(report.server_observed_ecn.ce, 0);
    }

    #[test]
    fn remarking_path_does_not_disturb_tcp() {
        // The paper's §9 point: ECT(0)→ECT(1) re-marking is invisible to
        // classic TCP; CE still gets through and is echoed.
        let forward = build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Remarking { asn: Asn::ARELION },
            false,
        );
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let report = run(TcpClientConfig::force_ce(), TcpServerBehavior::full_ecn(), &path);
        assert!(report.negotiated);
        assert!(report.ce_mirrored);
    }

    #[test]
    fn total_loss_reports_unconnected() {
        use qem_netsim::{Hop, Path, Router};
        let lossy = Path::new(vec![Hop::new(Router::transparent(1, Asn::DFN)).with_loss(1.0)]);
        let path = DuplexPath::new(lossy, Path::empty());
        let report = run(TcpClientConfig::ect0(), TcpServerBehavior::full_ecn(), &path);
        assert!(!report.connected);
        assert!(report.forward_losses >= 1);
    }

    #[test]
    fn ipv6_tcp_connection_works() {
        let forward = build_transit_path(Asn::DFN, Asn(13335), TransitProfile::Clean, true);
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let mut rng = StdRng::seed_from_u64(7);
        let report = run_tcp_connection(
            TcpClientConfig::force_ce(),
            TcpServerBehavior::full_ecn(),
            "2001:db8::1".parse().unwrap(),
            "2001:db8:2::9".parse().unwrap(),
            &path,
            &mut rng,
        );
        assert!(report.connected);
        assert!(report.ce_mirrored);
    }
}
