//! Server-side TCP ECN behaviour profiles.

use qem_packet::ecn::EcnCodepoint;
use serde::{Deserialize, Serialize};

/// How a simulated TCP server treats ECN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpServerBehavior {
    /// Whether the server accepts ECN negotiation (answers an ECN-setup SYN
    /// with an ECN-setup SYN-ACK).  Large providers almost universally do
    /// (Figure 6 finds ~70 % of domains negotiating), but some operators
    /// disable it, which the paper reads as a deliberate decision against ECN.
    pub negotiate_ecn: bool,
    /// Whether the server echoes received CE marks via the ECE flag.  A
    /// server can negotiate ECN but fail to echo (the "No CE Mirroring,
    /// Negotiation" group of Figure 6), e.g. because a middlebox in front of
    /// it strips the marks.
    pub mirror_ce: bool,
    /// The ECN codepoint the server sets on its own data segments
    /// (`NotEct` if it does not *use* ECN).
    pub egress_ecn: EcnCodepoint,
    /// Whether an HTTP response is served at all.
    pub serves_http: bool,
}

impl TcpServerBehavior {
    /// A server with full, correct ECN support that also uses ECN itself —
    /// the dominant behaviour Figure 6 observes for large CDNs via TCP.
    pub fn full_ecn() -> Self {
        TcpServerBehavior {
            negotiate_ecn: true,
            mirror_ce: true,
            egress_ecn: EcnCodepoint::Ect0,
            serves_http: true,
        }
    }

    /// A server that negotiates and mirrors but never sets codepoints itself.
    pub fn mirror_only() -> Self {
        TcpServerBehavior {
            egress_ecn: EcnCodepoint::NotEct,
            ..TcpServerBehavior::full_ecn()
        }
    }

    /// A server with ECN disabled (plain SYN-ACK, no ECE echo).
    pub fn no_ecn() -> Self {
        TcpServerBehavior {
            negotiate_ecn: false,
            mirror_ce: false,
            egress_ecn: EcnCodepoint::NotEct,
            serves_http: true,
        }
    }

    /// A server that negotiates ECN but never echoes CE (broken echo path).
    pub fn negotiate_without_mirroring() -> Self {
        TcpServerBehavior {
            negotiate_ecn: true,
            mirror_ce: false,
            egress_ecn: EcnCodepoint::Ect0,
            serves_http: true,
        }
    }
}

impl Default for TcpServerBehavior {
    fn default() -> Self {
        TcpServerBehavior::full_ecn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        assert!(TcpServerBehavior::full_ecn().negotiate_ecn);
        assert!(TcpServerBehavior::full_ecn().mirror_ce);
        assert_eq!(TcpServerBehavior::full_ecn().egress_ecn, EcnCodepoint::Ect0);
        assert!(!TcpServerBehavior::no_ecn().negotiate_ecn);
        assert_eq!(
            TcpServerBehavior::mirror_only().egress_ecn,
            EcnCodepoint::NotEct
        );
        assert!(!TcpServerBehavior::negotiate_without_mirroring().mirror_ce);
    }
}
