//! Property-based tests for the ECN validation machine and the endpoints.

use proptest::prelude::*;
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_quic::behavior::EcnMirroringBehavior;
use qem_quic::ecn::{EcnConfig, EcnValidationFailure, EcnValidationState, EcnValidator};
use qem_quic::http::{HttpRequest, HttpResponse};
use qem_quic::transport_params::TransportParameters;

fn arb_config() -> impl Strategy<Value = EcnConfig> {
    prop_oneof![
        Just(EcnConfig::paper_default()),
        Just(EcnConfig::rfc_default()),
    ]
}

proptest! {
    /// Honest mirroring (possibly with CE marks applied by a congested but
    /// compliant network) always validates, regardless of how the ACKs are
    /// batched.
    #[test]
    fn honest_mirroring_always_validates(
        config in arb_config(),
        batches in proptest::collection::vec(1u64..4, 1..8),
        ce_marked in 0u64..3,
    ) {
        let mut validator = EcnValidator::new(config);
        let mut sent_marked = 0u64;
        // Send the full testing budget.
        while sent_marked < config.testing_packets {
            let cp = validator.codepoint_for_next_packet();
            validator.on_packet_sent(cp);
            if cp != EcnCodepoint::NotEct {
                sent_marked += 1;
            } else {
                break;
            }
        }
        // Acknowledge it in arbitrary batches with accurate cumulative counts.
        let mut acked = 0u64;
        let mut cumulative = EcnCounts::ZERO;
        let mut ce_budget = ce_marked.min(sent_marked.saturating_sub(1));
        for batch in batches {
            let batch = batch.min(sent_marked - acked);
            if batch == 0 {
                break;
            }
            acked += batch;
            // A compliant router may have turned *some* (not all) ECT(0)
            // packets into CE; marking every single one is the "All CE"
            // failure class and is tested separately.
            let ce_now = ce_budget.min(batch.saturating_sub(1));
            ce_budget -= ce_now;
            cumulative.ect0 += batch - ce_now;
            cumulative.ce += ce_now;
            validator.on_ack_received(batch, batch, Some(cumulative));
            prop_assert!(!matches!(
                validator.state(),
                EcnValidationState::Failed(_)
            ), "honest feedback must never fail validation");
        }
        if acked == sent_marked && acked > 0 {
            prop_assert_eq!(validator.state(), EcnValidationState::Capable);
        }
    }

    /// Reporting fewer marks than were acknowledged always ends in a failure
    /// (undercount or no-mirroring), never in Capable.
    #[test]
    fn underreporting_never_validates(
        config in arb_config(),
        missing in 1u64..5,
    ) {
        let mut validator = EcnValidator::new(config);
        for _ in 0..config.testing_packets {
            let cp = validator.codepoint_for_next_packet();
            validator.on_packet_sent(cp);
        }
        let sent = config.testing_packets;
        let reported = sent.saturating_sub(missing);
        validator.on_ack_received(
            sent,
            sent,
            Some(EcnCounts { ect0: reported, ect1: 0, ce: 0 }),
        );
        prop_assert!(matches!(
            validator.state(),
            EcnValidationState::Failed(EcnValidationFailure::Undercount)
                | EcnValidationState::Failed(EcnValidationFailure::NoMirroring)
        ));
    }

    /// The validator's sent counters always dominate what any honest peer
    /// could report, and marking stops as soon as the state machine reaches a
    /// failure state.
    #[test]
    fn marking_stops_after_failure(config in arb_config()) {
        let mut validator = EcnValidator::new(config);
        for _ in 0..config.testing_packets {
            let cp = validator.codepoint_for_next_packet();
            validator.on_packet_sent(cp);
        }
        validator.on_ack_received(config.testing_packets, config.testing_packets, None);
        prop_assert!(matches!(validator.state(), EcnValidationState::Failed(_)));
        prop_assert_eq!(validator.codepoint_for_next_packet(), EcnCodepoint::NotEct);
    }

    /// The mirroring behaviour profiles never report more total marks than
    /// they observed (they can only lose or re-label information), except for
    /// the deliberately dishonest AlwaysCe profile which relabels everything.
    #[test]
    fn mirroring_profiles_never_invent_marks(
        ect0 in 0u64..100,
        ect1 in 0u64..100,
        ce in 0u64..100,
        app_space in any::<bool>(),
    ) {
        let observed = EcnCounts { ect0, ect1, ce };
        for behavior in [
            EcnMirroringBehavior::None,
            EcnMirroringBehavior::Accurate,
            EcnMirroringBehavior::MirrorOnlyHandshake,
            EcnMirroringBehavior::MirrorAsEct1,
            EcnMirroringBehavior::AlwaysCe,
        ] {
            if let Some(reported) = behavior.report(observed, app_space) {
                prop_assert!(reported.total() <= observed.total());
            }
        }
    }

    /// Transport parameters and HTTP messages round-trip for arbitrary values
    /// (the fingerprint clustering relies on byte-exact re-encoding).
    #[test]
    fn transport_params_round_trip(
        idle in 0u64..1_000_000,
        max_data in 0u64..(1 << 40),
        streams in 0u64..10_000,
        ack_exp in 0u64..20,
    ) {
        let params = TransportParameters {
            max_idle_timeout_ms: idle,
            initial_max_data: max_data,
            initial_max_streams_bidi: streams,
            ack_delay_exponent: ack_exp,
            ..TransportParameters::client_default()
        };
        let decoded = TransportParameters::decode(&params.encode()).unwrap();
        prop_assert_eq!(decoded, params);
        prop_assert_eq!(decoded.fingerprint(), params.fingerprint());
    }

    /// The plaintext HTTP layer survives arbitrary authorities and server
    /// header values.
    #[test]
    fn http_round_trips(
        authority in "[a-z0-9.-]{1,40}",
        server in proptest::option::of("[A-Za-z0-9/. -]{1,24}"),
        status in 100u16..600,
    ) {
        let request = HttpRequest::get(&authority);
        let parsed = HttpRequest::decode(&request.encode()).unwrap();
        prop_assert_eq!(parsed.authority, authority);

        let mut response = HttpResponse::ok();
        response.status = status;
        if let Some(server) = &server {
            response = response.with_server(server);
        }
        let parsed = HttpResponse::decode(&response.encode()).unwrap();
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(parsed.server, server.map(|s| s.trim().to_string()));
    }
}
