//! The measurement client: a sans-IO QUIC connection that performs an
//! HTTP/3-style request while using and validating ECN.
//!
//! This models the paper's adapted `quic-go` stack (§4.1): it supports QUIC
//! v1 plus drafts 27/29/32/34, retransmits lost packets only once to limit
//! network stress, applies a 10 s overall timeout and runs the ECN
//! validation algorithm with a reduced budget of 5 testing packets and 2
//! timeouts.  After the handshake it tops the connection up with PING
//! packets so that the full testing budget is exercised even for a single
//! small HTTP exchange.

use crate::ecn::{EcnConfig, EcnValidationState, EcnValidator};
use crate::handshake::HandshakeMessage;
use crate::http::{HttpRequest, HttpResponse};
use crate::spaces::{PacketSpace, SentPacket, SpaceId};
use crate::transport_params::TransportParameters;
use crate::CID_LEN;
use qem_netsim::{SimDuration, SimInstant};
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::quic::{
    ConnectionId, Frame, LongPacketType, PacketHeader, QuicPacket, QuicVersion, MIN_INITIAL_SIZE,
};
use serde::{Deserialize, Serialize};

/// Whether and how the client uses ECN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientEcnMode {
    /// Never set ECN codepoints (the unmodified quic-go behaviour).
    Disabled,
    /// Set codepoints and run ECN validation with the given configuration.
    Validate(EcnConfig),
}

impl ClientEcnMode {
    /// The paper's default: validate with 5 packets / 2 timeouts, ECT(0).
    pub fn paper_default() -> Self {
        ClientEcnMode::Validate(EcnConfig::paper_default())
    }
}

/// Client configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// The domain name being probed (SNI and HTTP authority).
    pub sni: String,
    /// The QUIC version offered first.
    pub preferred_version: QuicVersion,
    /// ECN mode.
    pub ecn: ClientEcnMode,
    /// Client transport parameters.
    pub transport_params: TransportParameters,
    /// Overall connection deadline (the paper uses 10 s per request).
    pub idle_timeout: SimDuration,
    /// Probe timeout before retransmitting.
    pub pto: SimDuration,
    /// Maximum number of retransmissions per packet (the paper reduces this
    /// to 1 to limit network stress).
    pub max_retransmissions: u32,
    /// Additional PING packets sent after the request so the ECN testing
    /// budget is fully exercised.
    pub extra_pings: u64,
}

impl ClientConfig {
    /// Configuration matching the paper's methodology for `sni`.
    pub fn paper_default(sni: &str) -> Self {
        ClientConfig {
            sni: sni.to_string(),
            preferred_version: QuicVersion::V1,
            ecn: ClientEcnMode::paper_default(),
            transport_params: TransportParameters::client_default(),
            idle_timeout: SimDuration::from_secs(10),
            pto: SimDuration::from_millis(600),
            max_retransmissions: 1,
            extra_pings: 3,
        }
    }

    /// Same as [`paper_default`](ClientConfig::paper_default) but sending CE
    /// instead of ECT(0) — the §6.3 TCP-comparison experiment.
    pub fn force_ce(sni: &str) -> Self {
        ClientConfig {
            ecn: ClientEcnMode::Validate(EcnConfig::force_ce()),
            ..ClientConfig::paper_default(sni)
        }
    }
}

/// A UDP datagram the connection wants to send, with the ECN codepoint to be
/// set on the enclosing IP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmit {
    /// UDP payload (one or more QUIC packets).
    pub payload: Vec<u8>,
    /// ECN codepoint for the IP header.
    pub ecn: EcnCodepoint,
}

/// Summary of a finished (or failed) client connection, consumed by the
/// measurement pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientReport {
    /// Whether the QUIC handshake completed.
    pub connected: bool,
    /// Whether an HTTP response was received.
    pub response: Option<HttpResponse>,
    /// The QUIC version in use when the connection finished.
    pub version: QuicVersion,
    /// The server's transport parameters, if the handshake got far enough.
    pub server_transport_params: Option<TransportParameters>,
    /// Fingerprint of the server's transport parameters.
    pub transport_fingerprint: Option<u64>,
    /// Final state of ECN validation.
    pub ecn_state: EcnValidationState,
    /// Whether the server mirrored any ECN counters at all ("Mirroring").
    pub peer_mirrored: bool,
    /// The last cumulative mirrored counters (aggregated over spaces).
    pub mirrored_counts: EcnCounts,
    /// Codepoints this client set on its own packets.
    pub sent_counts: EcnCounts,
    /// Codepoints observed on packets arriving from the server ("Use" by the
    /// server, as seen through the reverse path).
    pub received_ecn: EcnCounts,
    /// Whether any arriving packet carried an ECT or CE mark.
    pub server_used_ecn: bool,
    /// Terminal error, if the connection failed.
    pub error: Option<String>,
}

/// A sans-IO QUIC client connection.
#[derive(Debug, Clone)]
pub struct ClientConnection {
    config: ClientConfig,
    version: QuicVersion,
    local_cid: ConnectionId,
    remote_cid: ConnectionId,
    spaces: [PacketSpace; 3],
    validator: EcnValidator,
    ecn_enabled: bool,
    /// Last cumulative ECN counters reported by the peer, per space.
    peer_counts: [Option<EcnCounts>; 3],
    /// Aggregate of `peer_counts` fed to the validator.
    aggregate_counts: EcnCounts,
    received_ecn: EcnCounts,
    outbox: Vec<Transmit>,

    hello_sent: bool,
    server_hello: Option<HandshakeMessage>,
    server_params: Option<TransportParameters>,
    finished_sent: bool,
    handshake_done: bool,
    request_sent: bool,
    pings_sent: u64,
    response_buf: Vec<u8>,
    response_fin: bool,
    response: Option<HttpResponse>,
    close_sent: bool,
    closed: bool,
    error: Option<String>,
    version_negotiated: bool,

    start_time: SimInstant,
    last_activity: SimInstant,
    pto_deadline: Option<SimInstant>,
    pto_count: u32,
}

impl ClientConnection {
    /// Create a connection; `cid_seed` makes connection IDs deterministic.
    pub fn new(config: ClientConfig, now: SimInstant, cid_seed: u64) -> Self {
        let validator = match config.ecn {
            ClientEcnMode::Disabled => EcnValidator::disabled(),
            ClientEcnMode::Validate(ecn_config) => EcnValidator::new(ecn_config),
        };
        let ecn_enabled = matches!(config.ecn, ClientEcnMode::Validate(_));
        let version = config.preferred_version;
        ClientConnection {
            config,
            version,
            local_cid: ConnectionId::from_u64(cid_seed),
            remote_cid: ConnectionId::from_u64(cid_seed.wrapping_add(1)),
            spaces: Default::default(),
            validator,
            ecn_enabled,
            peer_counts: [None; 3],
            aggregate_counts: EcnCounts::ZERO,
            received_ecn: EcnCounts::ZERO,
            outbox: Vec::new(),
            hello_sent: false,
            server_hello: None,
            server_params: None,
            finished_sent: false,
            handshake_done: false,
            request_sent: false,
            pings_sent: 0,
            response_buf: Vec::new(),
            response_fin: false,
            response: None,
            close_sent: false,
            closed: false,
            error: None,
            version_negotiated: false,
            start_time: now,
            last_activity: now,
            pto_deadline: None,
            pto_count: 0,
        }
    }

    /// The connection ID this client expects on incoming short-header packets.
    pub fn local_cid(&self) -> &ConnectionId {
        &self.local_cid
    }

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.finished_sent && self.server_hello.is_some()
    }

    /// Whether the connection is finished (successfully or not).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether the client has everything it came for: a response, and every
    /// ack-eliciting packet acknowledged so the full ECN feedback is in.
    pub fn is_done(&self) -> bool {
        self.closed || (self.response.is_some() && self.all_acked())
    }

    fn all_acked(&self) -> bool {
        !self.spaces.iter().any(|s| s.has_unacked())
    }

    /// Produce the measurement report.
    pub fn report(&self) -> ClientReport {
        ClientReport {
            connected: self.is_established(),
            response: self.response.clone(),
            version: self.version,
            server_transport_params: self.server_params,
            transport_fingerprint: self.server_params.map(|p| p.fingerprint()),
            ecn_state: self.validator.state(),
            peer_mirrored: self.validator.peer_mirrored(),
            mirrored_counts: self.aggregate_counts,
            sent_counts: self.validator.sent_counts(),
            received_ecn: self.received_ecn,
            server_used_ecn: self.received_ecn.total() > 0,
            error: self.error.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Sans-IO interface
    // ------------------------------------------------------------------

    /// Feed an incoming UDP payload (with the ECN codepoint of its IP header).
    pub fn handle_datagram(&mut self, now: SimInstant, ecn: EcnCodepoint, payload: &[u8]) {
        if self.closed {
            return;
        }
        self.last_activity = now;
        let mut at = 0usize;
        while at < payload.len() {
            match QuicPacket::decode(&payload[at..], CID_LEN) {
                Ok((packet, consumed)) => {
                    at += consumed;
                    self.handle_packet(now, ecn, packet);
                }
                Err(_) => break,
            }
        }
        self.drive(now);
    }

    /// Next datagram to send, if any.
    pub fn poll_transmit(&mut self, now: SimInstant) -> Option<Transmit> {
        if !self.hello_sent {
            self.drive(now);
        }
        if self.outbox.is_empty() {
            None
        } else {
            Some(self.outbox.remove(0))
        }
    }

    /// The next instant at which [`handle_timeout`](Self::handle_timeout)
    /// must be called, if any.
    pub fn poll_timeout(&self) -> Option<SimInstant> {
        if self.closed {
            return None;
        }
        let idle = self.start_time + self.config.idle_timeout;
        match self.pto_deadline {
            Some(pto) if self.has_unacked() => Some(pto.min(idle)),
            _ => Some(idle),
        }
    }

    fn has_unacked(&self) -> bool {
        self.spaces.iter().any(|s| s.has_unacked())
    }

    /// Handle the expiry of the timer returned by [`poll_timeout`](Self::poll_timeout).
    pub fn handle_timeout(&mut self, now: SimInstant) {
        if self.closed {
            return;
        }
        let idle = self.start_time + self.config.idle_timeout;
        if now >= idle {
            if self.response.is_none() {
                self.error = Some(if self.is_established() {
                    "request timed out".to_string()
                } else {
                    "handshake timed out".to_string()
                });
            }
            self.closed = true;
            return;
        }
        if let Some(pto) = self.pto_deadline {
            if now >= pto && self.has_unacked() {
                self.on_pto(now);
            }
        }
        self.drive(now);
    }

    // ------------------------------------------------------------------
    // Internal machinery
    // ------------------------------------------------------------------

    fn on_pto(&mut self, now: SimInstant) {
        self.pto_count += 1;
        if self.ecn_enabled {
            self.validator.on_timeout();
        }
        // Retransmit unacknowledged ack-eliciting data, respecting the
        // retransmission budget (1 by default, per the paper).
        for space_id in SpaceId::ALL {
            let to_resend: Vec<SentPacket> =
                self.spaces[space_id.index()].retransmittable(self.config.max_retransmissions);
            for packet in to_resend {
                let frames: Vec<Frame> = packet
                    .frames
                    .iter()
                    .filter(|f| f.is_ack_eliciting())
                    .cloned()
                    .collect();
                if frames.is_empty() {
                    continue;
                }
                self.send_packet(space_id, frames, now, packet.retransmissions + 1);
            }
        }
        // Exponential backoff for the next PTO.
        let backoff = self.config.pto * (1 << self.pto_count.min(6));
        self.pto_deadline = Some(now + backoff);
    }

    fn handle_packet(&mut self, now: SimInstant, ecn: EcnCodepoint, packet: QuicPacket) {
        match &packet.header {
            PacketHeader::VersionNegotiation { supported, .. } => {
                self.on_version_negotiation(now, supported.clone());
            }
            PacketHeader::Long {
                ty,
                version,
                scid,
                packet_number,
                ..
            } => {
                if *version != self.version {
                    return;
                }
                let Some(space_id) = SpaceId::for_long_type(*ty) else {
                    return;
                };
                // Learn the server's connection ID from its first packet.
                if *ty == LongPacketType::Initial {
                    self.remote_cid = scid.clone();
                }
                self.receive_in_space(now, space_id, *packet_number, ecn, &packet.payload);
            }
            PacketHeader::Short { packet_number, .. } => {
                self.receive_in_space(
                    now,
                    SpaceId::Application,
                    *packet_number,
                    ecn,
                    &packet.payload,
                );
            }
        }
    }

    fn receive_in_space(
        &mut self,
        now: SimInstant,
        space_id: SpaceId,
        pn: u64,
        ecn: EcnCodepoint,
        payload: &[u8],
    ) {
        let Ok(frames) = Frame::decode_all(payload) else {
            return;
        };
        let ack_eliciting = frames.iter().any(Frame::is_ack_eliciting);
        let is_new = self.spaces[space_id.index()].on_packet_received(pn, ecn, ack_eliciting);
        self.received_ecn.record(ecn);
        if !is_new {
            return;
        }
        for frame in frames {
            self.handle_frame(now, space_id, frame);
        }
    }

    fn handle_frame(&mut self, _now: SimInstant, space_id: SpaceId, frame: Frame) {
        match frame {
            Frame::Ack(ack) => {
                let result = self.spaces[space_id.index()].on_ack_received(&ack);
                if result.count() > 0 {
                    self.pto_count = 0;
                    self.pto_deadline = None;
                }
                if self.ecn_enabled {
                    // Aggregate per-space cumulative counters into a single
                    // connection-level cumulative series for the validator.
                    let aggregate = match ack.ecn {
                        Some(counts) => {
                            let prev =
                                self.peer_counts[space_id.index()].unwrap_or(EcnCounts::ZERO);
                            if counts.dominates(&prev) {
                                let delta = counts.saturating_sub(&prev);
                                self.peer_counts[space_id.index()] = Some(counts);
                                self.aggregate_counts = self.aggregate_counts.plus(&delta);
                            } else {
                                // Per-space regression; surface it to the
                                // validator as a non-monotonic aggregate.
                                self.peer_counts[space_id.index()] = Some(counts);
                                self.aggregate_counts = EcnCounts {
                                    ect0: self.aggregate_counts.ect0.saturating_sub(1),
                                    ..self.aggregate_counts
                                };
                            }
                            Some(self.aggregate_counts)
                        }
                        None => None,
                    };
                    self.validator.on_ack_received(
                        result.marked_count(),
                        result.count(),
                        aggregate,
                    );
                }
            }
            Frame::Crypto { data, .. } => {
                if let Ok(message) = HandshakeMessage::decode(&data) {
                    match message {
                        HandshakeMessage::ServerHello {
                            transport_params, ..
                        } => {
                            self.server_params = Some(transport_params);
                            self.server_hello = Some(HandshakeMessage::ServerHello {
                                transport_params,
                                alpn: "h3".to_string(),
                            });
                        }
                        HandshakeMessage::Finished => {}
                        HandshakeMessage::ClientHello { .. } => {}
                    }
                }
            }
            Frame::HandshakeDone => {
                self.handshake_done = true;
            }
            Frame::Stream { data, fin, .. } => {
                self.response_buf.extend_from_slice(&data);
                if fin {
                    self.response_fin = true;
                    self.response = HttpResponse::decode(&self.response_buf);
                }
            }
            Frame::ConnectionClose { reason, .. } => {
                if self.response.is_none() && self.error.is_none() {
                    self.error = Some(format!("closed by peer: {reason}"));
                }
                self.closed = true;
            }
            Frame::Ping | Frame::Padding { .. } => {}
        }
    }

    fn on_version_negotiation(&mut self, now: SimInstant, supported: Vec<QuicVersion>) {
        if self.version_negotiated {
            return;
        }
        self.version_negotiated = true;
        // Preference order: v1 first, then the newest supported draft.
        let preference = [
            QuicVersion::V1,
            QuicVersion::DRAFT_34,
            QuicVersion::DRAFT_32,
            QuicVersion::DRAFT_29,
            QuicVersion::DRAFT_27,
        ];
        let chosen = preference.into_iter().find(|v| supported.contains(v));
        match chosen {
            Some(version) => {
                self.version = version;
                // Restart the connection state with the new version.
                self.spaces = Default::default();
                self.peer_counts = [None; 3];
                self.aggregate_counts = EcnCounts::ZERO;
                self.hello_sent = false;
                self.finished_sent = false;
                self.request_sent = false;
                self.pings_sent = 0;
                self.server_hello = None;
                self.server_params = None;
                self.validator = match self.config.ecn {
                    ClientEcnMode::Disabled => EcnValidator::disabled(),
                    ClientEcnMode::Validate(cfg) => EcnValidator::new(cfg),
                };
                self.pto_deadline = None;
                self.pto_count = 0;
                self.drive(now);
            }
            None => {
                self.error = Some("no common QUIC version".to_string());
                self.closed = true;
            }
        }
    }

    /// Advance the connection state machine and queue any packets that have
    /// become sendable.
    fn drive(&mut self, now: SimInstant) {
        if self.closed {
            return;
        }
        // 1. Client Initial with the ClientHello.
        if !self.hello_sent {
            let hello = HandshakeMessage::ClientHello {
                sni: self.config.sni.clone(),
                alpn: "h3".to_string(),
                transport_params: self.config.transport_params,
            };
            self.send_packet(
                SpaceId::Initial,
                vec![Frame::Crypto {
                    offset: 0,
                    data: hello.encode(),
                }],
                now,
                0,
            );
            self.hello_sent = true;
        }
        // 2. Client Finished once the ServerHello has arrived.
        if self.server_hello.is_some() && !self.finished_sent {
            self.send_packet(
                SpaceId::Handshake,
                vec![Frame::Crypto {
                    offset: 0,
                    data: HandshakeMessage::Finished.encode(),
                }],
                now,
                0,
            );
            self.finished_sent = true;
        }
        // 3. The HTTP request.
        if self.finished_sent && !self.request_sent {
            let request = HttpRequest::get(&self.config.sni);
            self.send_packet(
                SpaceId::Application,
                vec![Frame::Stream {
                    stream_id: 0,
                    offset: 0,
                    fin: true,
                    data: request.encode(),
                }],
                now,
                0,
            );
            self.request_sent = true;
        }
        // 4. Top-up PINGs so the ECN testing budget is exercised.
        if self.request_sent && self.pings_sent < self.config.extra_pings {
            while self.pings_sent < self.config.extra_pings {
                self.send_packet(SpaceId::Application, vec![Frame::Ping], now, 0);
                self.pings_sent += 1;
            }
        }
        // 5. Acknowledge whatever is pending (accurate ECN counts — the
        //    client is the measurement instrument).
        for space_id in SpaceId::ALL {
            if self.spaces[space_id.index()].ack_pending() {
                let counts = self.spaces[space_id.index()].ecn_received();
                let ecn = if counts.total() > 0 {
                    Some(counts)
                } else {
                    None
                };
                if let Some(ack) = self.spaces[space_id.index()].build_ack(ecn) {
                    self.send_packet(space_id, vec![Frame::Ack(ack)], now, 0);
                }
            }
        }
        // 6. Close once everything we came for has arrived: the HTTP
        //    response plus acknowledgments (and thus ECN feedback) for every
        //    ack-eliciting packet we sent.
        if self.response.is_some() && !self.close_sent && self.all_acked() {
            self.send_packet(
                SpaceId::Application,
                vec![Frame::ConnectionClose {
                    error_code: 0,
                    reason: "done".to_string(),
                }],
                now,
                0,
            );
            self.close_sent = true;
            self.closed = true;
        }
    }

    fn send_packet(
        &mut self,
        space_id: SpaceId,
        frames: Vec<Frame>,
        now: SimInstant,
        retransmissions: u32,
    ) {
        let ecn = if self.ecn_enabled {
            self.validator.codepoint_for_next_packet()
        } else {
            EcnCodepoint::NotEct
        };
        let pn = self.spaces[space_id.index()].next_pn();
        let mut payload = Frame::encode_all(&frames);
        let header = match space_id {
            SpaceId::Initial => {
                // Pad client Initials to the RFC minimum datagram size.
                let overhead = 48; // generous estimate of header bytes
                if payload.len() + overhead < MIN_INITIAL_SIZE {
                    Frame::Padding {
                        size: MIN_INITIAL_SIZE - overhead - payload.len(),
                    }
                    .encode(&mut payload);
                }
                PacketHeader::Long {
                    ty: LongPacketType::Initial,
                    version: self.version,
                    dcid: self.remote_cid.clone(),
                    scid: self.local_cid.clone(),
                    token: Vec::new(),
                    packet_number: pn,
                }
            }
            SpaceId::Handshake => PacketHeader::Long {
                ty: LongPacketType::Handshake,
                version: self.version,
                dcid: self.remote_cid.clone(),
                scid: self.local_cid.clone(),
                token: Vec::new(),
                packet_number: pn,
            },
            SpaceId::Application => PacketHeader::Short {
                dcid: self.remote_cid.clone(),
                packet_number: pn,
            },
        };
        let ack_eliciting = frames.iter().any(Frame::is_ack_eliciting);
        let packet = QuicPacket::new(header, payload);
        self.outbox.push(Transmit {
            payload: packet.encode(),
            ecn,
        });
        if self.ecn_enabled {
            self.validator.on_packet_sent(ecn);
        }
        self.spaces[space_id.index()].on_packet_sent(SentPacket {
            packet_number: pn,
            frames,
            ecn,
            ack_eliciting,
            time_sent: now,
            retransmissions,
        });
        if ack_eliciting && self.pto_deadline.is_none() {
            self.pto_deadline = Some(now + self.config.pto);
        }
        self.last_activity = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new_client() -> ClientConnection {
        ClientConnection::new(
            ClientConfig::paper_default("www.example.org"),
            SimInstant::EPOCH,
            0x1000,
        )
    }

    #[test]
    fn first_transmit_is_a_padded_marked_initial() {
        let mut client = new_client();
        let transmit = client.poll_transmit(SimInstant::EPOCH).unwrap();
        assert!(transmit.payload.len() >= MIN_INITIAL_SIZE - 60);
        assert_eq!(transmit.ecn, EcnCodepoint::Ect0);
        let (packet, _) = QuicPacket::decode(&transmit.payload, CID_LEN).unwrap();
        assert!(packet.header.is_initial());
        assert_eq!(packet.header.version(), Some(QuicVersion::V1));
    }

    #[test]
    fn disabled_ecn_sends_not_ect() {
        let config = ClientConfig {
            ecn: ClientEcnMode::Disabled,
            ..ClientConfig::paper_default("example.com")
        };
        let mut client = ClientConnection::new(config, SimInstant::EPOCH, 1);
        let transmit = client.poll_transmit(SimInstant::EPOCH).unwrap();
        assert_eq!(transmit.ecn, EcnCodepoint::NotEct);
    }

    #[test]
    fn force_ce_mode_marks_ce() {
        let mut client =
            ClientConnection::new(ClientConfig::force_ce("example.com"), SimInstant::EPOCH, 1);
        let transmit = client.poll_transmit(SimInstant::EPOCH).unwrap();
        assert_eq!(transmit.ecn, EcnCodepoint::Ce);
    }

    #[test]
    fn version_negotiation_restarts_with_common_version() {
        let mut client = new_client();
        let first = client.poll_transmit(SimInstant::EPOCH).unwrap();
        let (initial, _) = QuicPacket::decode(&first.payload, CID_LEN).unwrap();
        let (dcid, scid) = match &initial.header {
            PacketHeader::Long { dcid, scid, .. } => (dcid.clone(), scid.clone()),
            _ => unreachable!(),
        };
        let vn = QuicPacket::new(
            PacketHeader::VersionNegotiation {
                dcid: scid,
                scid: dcid,
                supported: vec![QuicVersion::DRAFT_27],
            },
            Vec::new(),
        );
        client.handle_datagram(SimInstant::EPOCH, EcnCodepoint::NotEct, &vn.encode());
        let retry = client.poll_transmit(SimInstant::EPOCH).unwrap();
        let (packet, _) = QuicPacket::decode(&retry.payload, CID_LEN).unwrap();
        assert_eq!(packet.header.version(), Some(QuicVersion::DRAFT_27));
        assert!(!client.is_closed());
    }

    #[test]
    fn version_negotiation_without_common_version_fails() {
        let mut client = new_client();
        let first = client.poll_transmit(SimInstant::EPOCH).unwrap();
        let (initial, _) = QuicPacket::decode(&first.payload, CID_LEN).unwrap();
        let (dcid, scid) = match &initial.header {
            PacketHeader::Long { dcid, scid, .. } => (dcid.clone(), scid.clone()),
            _ => unreachable!(),
        };
        let vn = QuicPacket::new(
            PacketHeader::VersionNegotiation {
                dcid: scid,
                scid: dcid,
                supported: vec![QuicVersion::Other(0xbabababa)],
            },
            Vec::new(),
        );
        client.handle_datagram(SimInstant::EPOCH, EcnCodepoint::NotEct, &vn.encode());
        assert!(client.is_closed());
        assert!(client.report().error.unwrap().contains("version"));
    }

    #[test]
    fn idle_timeout_closes_with_error() {
        let mut client = new_client();
        let _ = client.poll_transmit(SimInstant::EPOCH);
        let deadline = client.poll_timeout().unwrap();
        assert_eq!(deadline, SimInstant::EPOCH + SimDuration::from_millis(600));
        let idle = SimInstant::EPOCH + SimDuration::from_secs(10);
        client.handle_timeout(idle);
        assert!(client.is_closed());
        let report = client.report();
        assert!(!report.connected);
        assert!(report.error.unwrap().contains("handshake timed out"));
    }

    #[test]
    fn pto_retransmits_initial_once() {
        let mut client = new_client();
        let _ = client.poll_transmit(SimInstant::EPOCH).unwrap();
        assert!(client.poll_transmit(SimInstant::EPOCH).is_none());
        // First PTO: the Initial is retransmitted.
        let pto1 = SimInstant::EPOCH + SimDuration::from_millis(600);
        client.handle_timeout(pto1);
        let retransmit = client.poll_transmit(pto1);
        assert!(retransmit.is_some());
        // Second PTO: the retransmission budget (1) is exhausted.
        let pto2 = pto1 + SimDuration::from_secs(2);
        client.handle_timeout(pto2);
        assert!(client.poll_transmit(pto2).is_none());
    }

    #[test]
    fn report_before_any_progress_is_unconnected() {
        let client = new_client();
        let report = client.report();
        assert!(!report.connected);
        assert_eq!(report.ecn_state, EcnValidationState::Testing);
        assert!(report.response.is_none());
        assert!(!report.server_used_ecn);
    }
}
