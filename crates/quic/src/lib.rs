//! A sans-IO QUIC endpoint built for measuring ECN support.
//!
//! This crate is the reproduction of the paper's primary methodological
//! contribution: a QUIC client that
//!
//! * sets ECN codepoints on its outgoing packets ("uses" ECN),
//! * counts the codepoints it receives,
//! * reads the ECN counters mirrored back by the server in `ACK_ECN` frames,
//! * and runs the RFC 9000 §13.4.2 **ECN validation** algorithm (Figure 1 of
//!   the paper) to decide whether ECN can actually be used on the path —
//!   with the paper's reduced budget of 5 testing packets and 2 timeouts
//!   (§4.1/§4.4) or the RFC defaults.
//!
//! It also contains a QUIC **server** whose ECN behaviour is configurable via
//! [`behavior::ServerBehavior`] so that the deployed stacks the paper
//! encounters in the wild (LiteSpeed lsquic, Google quiche, Cloudflare
//! quiche, Amazon s2n-quic, …) can be modelled faithfully, including their
//! bugs (undercounting after the handshake, mirroring `ECT(0)` arrivals in
//! the `ECT(1)` counter, not mirroring at all).
//!
//! Both endpoints follow the quinn-proto style sans-IO interface:
//! [`handle_datagram`](client::ClientConnection::handle_datagram),
//! [`poll_transmit`](client::ClientConnection::poll_transmit),
//! [`poll_timeout`](client::ClientConnection::poll_timeout) and
//! [`handle_timeout`](client::ClientConnection::handle_timeout); the
//! [`driver`] module couples a client, a server and a
//! [`DuplexPath`](qem_netsim::DuplexPath) into a complete simulated
//! connection.
//!
//! Cryptography (TLS, header protection, AEAD) is intentionally not
//! implemented — see `DESIGN.md` for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod behavior;
pub mod client;
pub mod driver;
pub mod ecn;
pub mod handshake;
pub mod http;
pub mod server;
pub mod spaces;
pub mod transport_params;

pub use app::{AppChunk, AppDataSource, BulkObject, FrameSource, StreamPacketizer};
pub use behavior::{EcnMirroringBehavior, ServerBehavior};
pub use client::{ClientConfig, ClientConnection, ClientEcnMode, ClientReport};
#[allow(deprecated)]
pub use driver::{
    run_connection, run_connection_under_load, run_connection_under_load_with_telemetry,
    run_connection_with_telemetry, run_with_endpoints,
};
pub use driver::{ConnectionOutcome, ConnectionRun, DriverConfig, QuicFlow, RunOutcome};
pub use ecn::{EcnConfig, EcnValidationFailure, EcnValidationState, EcnValidator};
pub use server::ServerConnection;
pub use transport_params::TransportParameters;

/// Connection-ID length used by every endpoint in this reproduction.
pub const CID_LEN: usize = 8;
