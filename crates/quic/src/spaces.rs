//! Packet number spaces: per-space packet numbering, receive tracking, ECN
//! accounting and unacknowledged-packet bookkeeping.
//!
//! RFC 9000 keeps Initial, Handshake and 1-RTT (application) packets in
//! separate packet number spaces and also keeps the *receiver-side ECN
//! counters* separate per space.  That separation is load-bearing for this
//! study: the LiteSpeed undercounting bug the paper diagnoses in §7.3 is a
//! failure to carry ECN accounting across the handshake → 1-RTT transition,
//! which can only be modelled if the spaces are real.

use qem_netsim::SimInstant;
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::quic::{AckFrame, Frame, LongPacketType};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifier of a packet number space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpaceId {
    /// Initial packets.
    Initial = 0,
    /// Handshake packets.
    Handshake = 1,
    /// 1-RTT / application packets.
    Application = 2,
}

impl SpaceId {
    /// All spaces in ascending order.
    pub const ALL: [SpaceId; 3] = [SpaceId::Initial, SpaceId::Handshake, SpaceId::Application];

    /// Index into per-space arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The space a long-header packet type belongs to (`None` for Retry).
    pub fn for_long_type(ty: LongPacketType) -> Option<SpaceId> {
        match ty {
            LongPacketType::Initial => Some(SpaceId::Initial),
            LongPacketType::Handshake => Some(SpaceId::Handshake),
            LongPacketType::ZeroRtt => Some(SpaceId::Application),
            LongPacketType::Retry => None,
        }
    }
}

/// A packet this endpoint sent and has not yet seen acknowledged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentPacket {
    /// Packet number.
    pub packet_number: u64,
    /// Frames carried (kept for PTO retransmission).
    pub frames: Vec<Frame>,
    /// ECN codepoint the packet was sent with.
    pub ecn: EcnCodepoint,
    /// Whether the packet elicits an acknowledgment.
    pub ack_eliciting: bool,
    /// When it was sent.
    pub time_sent: SimInstant,
    /// How many times this payload has been retransmitted already.
    pub retransmissions: u32,
}

/// Result of processing an ACK frame against a space.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AckResult {
    /// Packets that were newly acknowledged.
    pub newly_acked: Vec<SentPacket>,
}

impl AckResult {
    /// Number of newly acknowledged packets.
    pub fn count(&self) -> u64 {
        self.newly_acked.len() as u64
    }

    /// Number of newly acknowledged packets that carried an ECT/CE mark.
    pub fn marked_count(&self) -> u64 {
        self.newly_acked
            .iter()
            .filter(|p| p.ecn != EcnCodepoint::NotEct)
            .count() as u64
    }
}

/// One packet number space of a connection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PacketSpace {
    next_packet_number: u64,
    /// Packet numbers received but not yet covered by a sent ACK.
    pending_ack: BTreeSet<u64>,
    /// All packet numbers ever received (for duplicate suppression).
    received: BTreeSet<u64>,
    /// ECN codepoints observed on packets received in this space.
    ecn_received: EcnCounts,
    /// Packets sent and not yet acknowledged.
    sent: Vec<SentPacket>,
    /// Whether an ACK should be sent.
    ack_pending: bool,
    /// Largest packet number acknowledged by the peer.
    largest_acked: Option<u64>,
}

impl PacketSpace {
    /// Allocate the next packet number.
    pub fn next_pn(&mut self) -> u64 {
        let pn = self.next_packet_number;
        self.next_packet_number += 1;
        pn
    }

    /// Number of packets sent in this space so far.
    pub fn sent_count(&self) -> u64 {
        self.next_packet_number
    }

    /// Record a sent packet for possible retransmission.
    pub fn on_packet_sent(&mut self, packet: SentPacket) {
        self.sent.push(packet);
    }

    /// Record a received packet.  Returns `false` for duplicates.
    pub fn on_packet_received(&mut self, pn: u64, ecn: EcnCodepoint, ack_eliciting: bool) -> bool {
        if !self.received.insert(pn) {
            return false;
        }
        self.ecn_received.record(ecn);
        self.pending_ack.insert(pn);
        if ack_eliciting {
            self.ack_pending = true;
        }
        true
    }

    /// ECN counters for packets received in this space.
    pub fn ecn_received(&self) -> EcnCounts {
        self.ecn_received
    }

    /// Whether an acknowledgment is owed.
    pub fn ack_pending(&self) -> bool {
        self.ack_pending && !self.pending_ack.is_empty()
    }

    /// Whether any sent, ack-eliciting packet is still unacknowledged.
    pub fn has_unacked(&self) -> bool {
        self.sent.iter().any(|p| p.ack_eliciting)
    }

    /// Unacknowledged ack-eliciting packets (oldest first), for PTO handling.
    pub fn unacked(&self) -> impl Iterator<Item = &SentPacket> {
        self.sent.iter().filter(|p| p.ack_eliciting)
    }

    /// Remove every unacknowledged packet and return them (used when a space
    /// is abandoned after the handshake completes).
    pub fn take_unacked(&mut self) -> Vec<SentPacket> {
        std::mem::take(&mut self.sent)
    }

    /// Return clones of the unacknowledged ack-eliciting packets that still
    /// have retransmission budget left, and charge one retransmission against
    /// each of them so the next PTO does not resend the same data again.
    pub fn retransmittable(&mut self, max_retransmissions: u32) -> Vec<SentPacket> {
        let mut out = Vec::new();
        for packet in &mut self.sent {
            if packet.ack_eliciting && packet.retransmissions < max_retransmissions {
                out.push(packet.clone());
                packet.retransmissions = max_retransmissions;
            }
        }
        out
    }

    /// Build an ACK frame covering everything received so far, with the given
    /// ECN counters (the counters are chosen by the caller because the
    /// server-behaviour profiles deliberately mis-report them).
    ///
    /// Returns `None` if nothing has been received yet.
    pub fn build_ack(&mut self, ecn: Option<EcnCounts>) -> Option<AckFrame> {
        let largest = *self.received.iter().next_back()?;
        // Collapse the received set into ranges, highest first.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &pn in self.received.iter().rev() {
            match ranges.last_mut() {
                Some((start, _)) if *start == pn + 1 => *start = pn,
                _ => ranges.push((pn, pn)),
            }
        }
        self.ack_pending = false;
        self.pending_ack.clear();
        Some(AckFrame {
            largest_acked: largest,
            ack_delay: 0,
            ranges,
            ecn,
        })
    }

    /// Process an ACK frame from the peer.
    pub fn on_ack_received(&mut self, ack: &AckFrame) -> AckResult {
        let mut newly_acked = Vec::new();
        let mut remaining = Vec::with_capacity(self.sent.len());
        for packet in self.sent.drain(..) {
            if ack.acknowledges(packet.packet_number) {
                newly_acked.push(packet);
            } else {
                remaining.push(packet);
            }
        }
        self.sent = remaining;
        if !newly_acked.is_empty() {
            let largest = newly_acked
                .iter()
                .map(|p| p.packet_number)
                .max()
                .unwrap_or(0);
            self.largest_acked = Some(self.largest_acked.map_or(largest, |l| l.max(largest)));
        }
        AckResult { newly_acked }
    }

    /// Largest packet number the peer has acknowledged.
    pub fn largest_acked(&self) -> Option<u64> {
        self.largest_acked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(pn: u64, ecn: EcnCodepoint) -> SentPacket {
        SentPacket {
            packet_number: pn,
            frames: vec![Frame::Ping],
            ecn,
            ack_eliciting: true,
            time_sent: SimInstant::EPOCH,
            retransmissions: 0,
        }
    }

    #[test]
    fn packet_numbers_are_sequential() {
        let mut space = PacketSpace::default();
        assert_eq!(space.next_pn(), 0);
        assert_eq!(space.next_pn(), 1);
        assert_eq!(space.sent_count(), 2);
    }

    #[test]
    fn duplicate_receive_is_ignored() {
        let mut space = PacketSpace::default();
        assert!(space.on_packet_received(3, EcnCodepoint::Ect0, true));
        assert!(!space.on_packet_received(3, EcnCodepoint::Ect0, true));
        assert_eq!(space.ecn_received().ect0, 1);
    }

    #[test]
    fn ack_ranges_cover_received_packets() {
        let mut space = PacketSpace::default();
        for pn in [0, 1, 2, 5, 6, 9] {
            space.on_packet_received(pn, EcnCodepoint::NotEct, true);
        }
        let ack = space.build_ack(None).unwrap();
        assert_eq!(ack.largest_acked, 9);
        assert_eq!(ack.ranges, vec![(9, 9), (5, 6), (0, 2)]);
        assert!(!space.ack_pending());
    }

    #[test]
    fn build_ack_requires_received_packets() {
        let mut space = PacketSpace::default();
        assert!(space.build_ack(None).is_none());
    }

    #[test]
    fn ack_processing_partitions_sent_packets() {
        let mut space = PacketSpace::default();
        for pn in 0..5 {
            space.on_packet_sent(sent(pn, EcnCodepoint::Ect0));
        }
        let ack = AckFrame::contiguous(0, 2, None);
        let result = space.on_ack_received(&ack);
        assert_eq!(result.count(), 3);
        assert_eq!(result.marked_count(), 3);
        assert!(space.has_unacked());
        assert_eq!(space.largest_acked(), Some(2));
        assert_eq!(space.unacked().count(), 2);
    }

    #[test]
    fn marked_count_distinguishes_codepoints() {
        let mut space = PacketSpace::default();
        space.on_packet_sent(sent(0, EcnCodepoint::Ect0));
        space.on_packet_sent(sent(1, EcnCodepoint::NotEct));
        let result = space.on_ack_received(&AckFrame::contiguous(0, 1, None));
        assert_eq!(result.count(), 2);
        assert_eq!(result.marked_count(), 1);
    }

    #[test]
    fn space_id_mapping() {
        assert_eq!(
            SpaceId::for_long_type(LongPacketType::Initial),
            Some(SpaceId::Initial)
        );
        assert_eq!(
            SpaceId::for_long_type(LongPacketType::Handshake),
            Some(SpaceId::Handshake)
        );
        assert_eq!(SpaceId::for_long_type(LongPacketType::Retry), None);
        assert_eq!(SpaceId::Application.index(), 2);
    }

    #[test]
    fn take_unacked_empties_the_space() {
        let mut space = PacketSpace::default();
        space.on_packet_sent(sent(0, EcnCodepoint::Ect0));
        assert_eq!(space.take_unacked().len(), 1);
        assert!(!space.has_unacked());
    }
}
