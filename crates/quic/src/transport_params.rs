//! QUIC transport parameters, reduced to the subset the study fingerprints.
//!
//! The paper identifies server stacks that do not set an HTTP `server`
//! header by comparing the transport parameters of their connections with
//! those of known deployments (§5.3: "we compared the transport parameters
//! of the QUIC connections and found that these were mostly equal to those
//! of requests identifying as LiteSpeed").  This module provides both the
//! wire encoding of the parameters (carried inside the handshake CRYPTO
//! exchange) and a stable fingerprint for that comparison.

use qem_packet::quic::{decode_varint, encode_varint};
use qem_packet::PacketError;
use serde::{Deserialize, Serialize};

/// A (simplified) set of QUIC transport parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransportParameters {
    /// `max_idle_timeout` in milliseconds.
    pub max_idle_timeout_ms: u64,
    /// `max_udp_payload_size`.
    pub max_udp_payload_size: u64,
    /// `initial_max_data`.
    pub initial_max_data: u64,
    /// `initial_max_stream_data_bidi_local`.
    pub initial_max_stream_data: u64,
    /// `initial_max_streams_bidi`.
    pub initial_max_streams_bidi: u64,
    /// `ack_delay_exponent`.
    pub ack_delay_exponent: u64,
    /// `max_ack_delay` in milliseconds.
    pub max_ack_delay_ms: u64,
    /// `active_connection_id_limit`.
    pub active_connection_id_limit: u64,
}

impl TransportParameters {
    /// Parameters used by the measurement client (adapted quic-go).
    pub fn client_default() -> Self {
        TransportParameters {
            max_idle_timeout_ms: 10_000,
            max_udp_payload_size: 1452,
            initial_max_data: 786_432,
            initial_max_stream_data: 524_288,
            initial_max_streams_bidi: 100,
            ack_delay_exponent: 0,
            max_ack_delay_ms: 25,
            active_connection_id_limit: 4,
        }
    }

    /// A stable 64-bit fingerprint of the parameter set (FNV-1a).
    ///
    /// Two servers running the same stack/configuration produce the same
    /// fingerprint, which is how the pipeline clusters "unknown" server
    /// headers with known stacks.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |value: u64| {
            for byte in value.to_be_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.max_idle_timeout_ms);
        mix(self.max_udp_payload_size);
        mix(self.initial_max_data);
        mix(self.initial_max_stream_data);
        mix(self.initial_max_streams_bidi);
        mix(self.ack_delay_exponent);
        mix(self.max_ack_delay_ms);
        mix(self.active_connection_id_limit);
        hash
    }

    /// Encode as a sequence of (id, length, value) triples like RFC 9000 §18.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        let mut put = |id: u64, value: u64| {
            encode_varint(&mut buf, id);
            let mut v = Vec::with_capacity(8);
            encode_varint(&mut v, value);
            encode_varint(&mut buf, v.len() as u64);
            buf.extend_from_slice(&v);
        };
        put(0x01, self.max_idle_timeout_ms);
        put(0x03, self.max_udp_payload_size);
        put(0x04, self.initial_max_data);
        put(0x05, self.initial_max_stream_data);
        put(0x08, self.initial_max_streams_bidi);
        put(0x0a, self.ack_delay_exponent);
        put(0x0b, self.max_ack_delay_ms);
        put(0x0e, self.active_connection_id_limit);
        buf
    }

    /// Decode from the wire representation; unknown parameter ids are skipped
    /// (as required for forward compatibility).
    pub fn decode(buf: &[u8]) -> Result<Self, PacketError> {
        let mut params = TransportParameters::client_default();
        let mut at = 0usize;
        while at < buf.len() {
            let (id, c) = decode_varint(&buf[at..])?;
            at += c;
            let (len, c) = decode_varint(&buf[at..])?;
            at += c;
            let len = len as usize;
            if at + len > buf.len() {
                return Err(PacketError::Truncated {
                    what: "transport parameters",
                    needed: at + len,
                    available: buf.len(),
                });
            }
            let value = if len == 0 {
                0
            } else {
                decode_varint(&buf[at..at + len])?.0
            };
            at += len;
            match id {
                0x01 => params.max_idle_timeout_ms = value,
                0x03 => params.max_udp_payload_size = value,
                0x04 => params.initial_max_data = value,
                0x05 => params.initial_max_stream_data = value,
                0x08 => params.initial_max_streams_bidi = value,
                0x0a => params.ack_delay_exponent = value,
                0x0b => params.max_ack_delay_ms = value,
                0x0e => params.active_connection_id_limit = value,
                _ => {}
            }
        }
        Ok(params)
    }
}

impl Default for TransportParameters {
    fn default() -> Self {
        TransportParameters::client_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let params = TransportParameters {
            max_idle_timeout_ms: 30_000,
            max_udp_payload_size: 1350,
            initial_max_data: 1_000_000,
            initial_max_stream_data: 250_000,
            initial_max_streams_bidi: 16,
            ack_delay_exponent: 3,
            max_ack_delay_ms: 26,
            active_connection_id_limit: 8,
        };
        let decoded = TransportParameters::decode(&params.encode()).unwrap();
        assert_eq!(decoded, params);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminates() {
        let a = TransportParameters::client_default();
        let b = TransportParameters {
            initial_max_data: a.initial_max_data + 1,
            ..a
        };
        assert_eq!(
            a.fingerprint(),
            TransportParameters::client_default().fingerprint()
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn unknown_parameters_are_skipped() {
        let mut buf = TransportParameters::client_default().encode();
        // Append an unknown parameter (id 0x7f, 2-byte value).
        encode_varint(&mut buf, 0x7f);
        encode_varint(&mut buf, 2);
        buf.extend_from_slice(&[0x40, 0x20]);
        let decoded = TransportParameters::decode(&buf).unwrap();
        assert_eq!(decoded, TransportParameters::client_default());
    }

    #[test]
    fn truncated_rejected() {
        let buf = TransportParameters::client_default().encode();
        assert!(TransportParameters::decode(&buf[..buf.len() - 1]).is_err());
    }
}
