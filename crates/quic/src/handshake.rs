//! The plaintext handshake messages carried in CRYPTO frames.
//!
//! Real QUIC embeds TLS 1.3; this reproduction replaces it with a minimal
//! plaintext exchange (ClientHello → ServerHello + Finished → ClientFinished)
//! that carries exactly the information the measurement pipeline consumes:
//! the SNI / authority, the ALPN, and the peers' transport parameters.
//! See DESIGN.md for why this substitution does not affect any measured
//! quantity.

use crate::transport_params::TransportParameters;
use qem_packet::quic::{decode_varint, encode_varint};
use qem_packet::PacketError;
use serde::{Deserialize, Serialize};

/// Handshake message tags.
const TAG_CLIENT_HELLO: u64 = 1;
const TAG_SERVER_HELLO: u64 = 2;
const TAG_FINISHED: u64 = 3;

/// A handshake ("crypto stream") message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandshakeMessage {
    /// Sent by the client in its Initial packet.
    ClientHello {
        /// Server name indication — the domain being measured.
        sni: String,
        /// Application protocol (the scanner sends `h3`).
        alpn: String,
        /// The client's transport parameters.
        transport_params: TransportParameters,
    },
    /// Sent by the server in its Initial packet.
    ServerHello {
        /// The server's transport parameters (fingerprinted by the pipeline).
        transport_params: TransportParameters,
        /// The negotiated application protocol.
        alpn: String,
    },
    /// Sent by both sides in the Handshake packet number space to conclude
    /// the handshake.
    Finished,
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    encode_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &[u8], at: &mut usize) -> Result<String, PacketError> {
    let (len, c) = decode_varint(&buf[*at..])?;
    *at += c;
    let len = len as usize;
    if *at + len > buf.len() {
        return Err(PacketError::Truncated {
            what: "handshake string",
            needed: *at + len,
            available: buf.len(),
        });
    }
    let s = String::from_utf8_lossy(&buf[*at..*at + len]).into_owned();
    *at += len;
    Ok(s)
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    encode_varint(buf, data.len() as u64);
    buf.extend_from_slice(data);
}

fn get_bytes<'a>(buf: &'a [u8], at: &mut usize) -> Result<&'a [u8], PacketError> {
    let (len, c) = decode_varint(&buf[*at..])?;
    *at += c;
    let len = len as usize;
    if *at + len > buf.len() {
        return Err(PacketError::Truncated {
            what: "handshake bytes",
            needed: *at + len,
            available: buf.len(),
        });
    }
    let out = &buf[*at..*at + len];
    *at += len;
    Ok(out)
}

impl HandshakeMessage {
    /// Encode to crypto-stream bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128);
        match self {
            HandshakeMessage::ClientHello {
                sni,
                alpn,
                transport_params,
            } => {
                encode_varint(&mut buf, TAG_CLIENT_HELLO);
                put_string(&mut buf, sni);
                put_string(&mut buf, alpn);
                put_bytes(&mut buf, &transport_params.encode());
            }
            HandshakeMessage::ServerHello {
                transport_params,
                alpn,
            } => {
                encode_varint(&mut buf, TAG_SERVER_HELLO);
                put_string(&mut buf, alpn);
                put_bytes(&mut buf, &transport_params.encode());
            }
            HandshakeMessage::Finished => {
                encode_varint(&mut buf, TAG_FINISHED);
            }
        }
        buf
    }

    /// Decode one message from crypto-stream bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, PacketError> {
        let mut at = 0usize;
        let (tag, c) = decode_varint(buf)?;
        at += c;
        match tag {
            TAG_CLIENT_HELLO => {
                let sni = get_string(buf, &mut at)?;
                let alpn = get_string(buf, &mut at)?;
                let params = TransportParameters::decode(get_bytes(buf, &mut at)?)?;
                Ok(HandshakeMessage::ClientHello {
                    sni,
                    alpn,
                    transport_params: params,
                })
            }
            TAG_SERVER_HELLO => {
                let alpn = get_string(buf, &mut at)?;
                let params = TransportParameters::decode(get_bytes(buf, &mut at)?)?;
                Ok(HandshakeMessage::ServerHello {
                    transport_params: params,
                    alpn,
                })
            }
            TAG_FINISHED => Ok(HandshakeMessage::Finished),
            other => Err(PacketError::UnknownFrameType(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_hello_round_trip() {
        let msg = HandshakeMessage::ClientHello {
            sni: "www.example.org".to_string(),
            alpn: "h3".to_string(),
            transport_params: TransportParameters::client_default(),
        };
        assert_eq!(HandshakeMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn server_hello_round_trip() {
        let msg = HandshakeMessage::ServerHello {
            transport_params: TransportParameters {
                initial_max_data: 42,
                ..TransportParameters::client_default()
            },
            alpn: "h3".to_string(),
        };
        assert_eq!(HandshakeMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn finished_round_trip() {
        let msg = HandshakeMessage::Finished;
        assert_eq!(HandshakeMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn truncated_rejected() {
        let msg = HandshakeMessage::ClientHello {
            sni: "www.example.org".to_string(),
            alpn: "h3".to_string(),
            transport_params: TransportParameters::client_default(),
        };
        let bytes = msg.encode();
        assert!(HandshakeMessage::decode(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(HandshakeMessage::decode(&[0x17]).is_err());
    }
}
