//! Couples a [`ClientConnection`] and a [`ServerConnection`] through a
//! simulated [`DuplexPath`], producing the observation the measurement
//! pipeline records for one domain.
//!
//! The connection is modelled as a sans-IO [`QuicFlow`] registered with the
//! discrete-event [`Engine`](qem_netsim::Engine): the flow wraps QUIC
//! datagrams into UDP and IP (setting the requested ECN codepoint), pushes
//! them through the forward or reverse path — consulting any **shared**
//! router egress queues the engine carries — and delivers whatever survives
//! to the other endpoint.  Time only advances when neither endpoint has
//! anything to send, in which case the flow sleeps until its next timer —
//! so lossy paths exercise the client's PTO/retransmission logic exactly as
//! real packet loss would.
//!
//! [`ConnectionRun`] is the one entrypoint: a builder selecting cross
//! traffic and telemetry instead of a function per combination —
//!
//! ```ignore
//! let outcome = ConnectionRun::new(client_config, behavior, &path, driver)
//!     .cross_traffic(CrossTraffic::congested())
//!     .telemetry(true)
//!     .execute(&mut rng);
//! ```
//!
//! Without cross traffic it drives a one-flow engine with no shared queues,
//! bit-identical to the historical per-connection loop; with it, the same
//! flow runs next to background [`LoadFlow`](qem_netsim::LoadFlow)s through
//! a shared bottleneck, which is where CE marking becomes load-dependent.
//! The legacy `run_connection*` function matrix survives as thin deprecated
//! wrappers, each proven equivalent by the existing tests.

use crate::behavior::ServerBehavior;
use crate::client::{ClientConfig, ClientConnection, ClientReport};
use crate::server::ServerConnection;
use qem_netsim::engine::{CrossTraffic, Engine, EngineTelemetry, Flow, FlowStatus, SharedQueues};
use qem_netsim::{DuplexPath, SimDuration, SimInstant};
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header, Ipv6Header};
use qem_packet::quic::QUIC_PORT;
use qem_packet::udp::UdpHeader;
use rand::Rng;
use std::net::IpAddr;

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Client source address.
    pub client_addr: IpAddr,
    /// Server address.
    pub server_addr: IpAddr,
    /// Client ephemeral UDP port.
    pub client_port: u16,
    /// Hard wall-clock cap on the simulated connection.
    pub max_duration: SimDuration,
    /// Safety cap on driver iterations (guards against livelock bugs).
    pub max_iterations: usize,
}

impl DriverConfig {
    /// Defaults for the given address pair.
    pub fn new(client_addr: IpAddr, server_addr: IpAddr) -> Self {
        DriverConfig {
            client_addr,
            server_addr,
            client_port: 48_000,
            max_duration: SimDuration::from_secs(30),
            max_iterations: 10_000,
        }
    }
}

/// Everything observed while driving one connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionOutcome {
    /// The client's measurement report.
    pub report: ClientReport,
    /// ECN codepoints of client packets as they *arrived at the server*
    /// (ground truth about the forward path, unavailable to a real
    /// measurement but useful for validating the pipeline itself).
    pub forward_arrival_ecn: EcnCounts,
    /// Number of client datagrams that never reached the server.
    pub forward_losses: u64,
    /// Number of server datagrams that never reached the client.
    pub reverse_losses: u64,
    /// Virtual time consumed by the connection.
    pub elapsed: SimDuration,
}

/// The QUIC measurement connection as a sans-IO flow for the discrete-event
/// engine: one client, one server, the duplex path between them and the
/// randomness driving that path.
///
/// The flow owns a *local* clock with the exact semantics of the historical
/// driver loop (time only moves at timer boundaries, and a timer that does
/// not advance time nudges the clock forward by one millisecond), so the
/// single-flow wrapper below reproduces the legacy results bit for bit.
pub struct QuicFlow<'a, R: Rng + ?Sized> {
    client: &'a mut ClientConnection,
    server: &'a mut ServerConnection,
    path: &'a DuplexPath,
    config: &'a DriverConfig,
    rng: &'a mut R,
    now: SimInstant,
    deadline: SimInstant,
    iterations: usize,
    pending_timer: Option<SimInstant>,
    forward_arrival_ecn: EcnCounts,
    forward_losses: u64,
    reverse_losses: u64,
    done: bool,
}

impl<'a, R: Rng + ?Sized> QuicFlow<'a, R> {
    /// Wrap prepared endpoints into a flow.
    pub fn new(
        client: &'a mut ClientConnection,
        server: &'a mut ServerConnection,
        path: &'a DuplexPath,
        config: &'a DriverConfig,
        rng: &'a mut R,
    ) -> Self {
        QuicFlow {
            client,
            server,
            path,
            config,
            rng,
            now: SimInstant::EPOCH,
            deadline: SimInstant::EPOCH + config.max_duration,
            iterations: 0,
            pending_timer: None,
            forward_arrival_ecn: EcnCounts::ZERO,
            forward_losses: 0,
            reverse_losses: 0,
            done: false,
        }
    }

    /// Whether the flow has finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Consume the flow and build the connection outcome.
    pub fn into_outcome(self) -> ConnectionOutcome {
        ConnectionOutcome {
            report: self.client.report(),
            forward_arrival_ecn: self.forward_arrival_ecn,
            forward_losses: self.forward_losses,
            reverse_losses: self.reverse_losses,
            elapsed: self.now - SimInstant::EPOCH,
        }
    }

    /// One bidirectional drain pass; returns whether anything moved.
    fn drain(&mut self, net: &mut SharedQueues) -> bool {
        let mut activity = false;

        // Client → server.
        while let Some(transmit) = self.client.poll_transmit(self.now) {
            activity = true;
            let datagram = encapsulate(
                self.config.client_addr,
                self.config.server_addr,
                self.config.client_port,
                QUIC_PORT,
                transmit.ecn,
                &transmit.payload,
            );
            match self
                .path
                .forward
                .transit_shared(&datagram, self.now, self.rng, net)
            {
                qem_netsim::TransitOutcome::Delivered { datagram, .. } => {
                    self.forward_arrival_ecn.record(datagram.header.ecn());
                    if let Some(payload) = decapsulate(&datagram) {
                        self.server
                            .handle_datagram(self.now, datagram.header.ecn(), &payload);
                    }
                }
                _ => self.forward_losses += 1,
            }
        }

        // Server → client.
        while let Some(transmit) = self.server.poll_transmit(self.now) {
            activity = true;
            let datagram = encapsulate(
                self.config.server_addr,
                self.config.client_addr,
                QUIC_PORT,
                self.config.client_port,
                transmit.ecn,
                &transmit.payload,
            );
            match self
                .path
                .reverse
                .transit_shared(&datagram, self.now, self.rng, net)
            {
                qem_netsim::TransitOutcome::Delivered { datagram, .. } => {
                    if let Some(payload) = decapsulate(&datagram) {
                        self.client
                            .handle_datagram(self.now, datagram.header.ecn(), &payload);
                    }
                }
                _ => self.reverse_losses += 1,
            }
        }

        activity
    }
}

impl<R: Rng + ?Sized> Flow for QuicFlow<'_, R> {
    fn on_wake(&mut self, _at: SimInstant, net: &mut SharedQueues) -> FlowStatus {
        // A wake with a pending timer services it first, with the legacy
        // clock-nudge semantics.
        if let Some(t) = self.pending_timer.take() {
            self.now = if t > self.now {
                t
            } else {
                self.now + SimDuration::from_millis(1)
            };
            self.client.handle_timeout(self.now);
            self.server.handle_timeout(self.now);
        }

        loop {
            if self.iterations >= self.config.max_iterations {
                self.done = true;
                return FlowStatus::Done;
            }
            self.iterations += 1;

            let activity = self.drain(net);

            if self.client.is_closed() {
                self.done = true;
                return FlowStatus::Done;
            }
            if activity {
                continue;
            }

            // Nothing in flight: sleep until the next timer.
            let next = match (self.client.poll_timeout(), self.server.poll_timeout()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            match next {
                Some(t) if t <= self.deadline => {
                    self.pending_timer = Some(t);
                    // If the timer does not advance the local clock, ask to
                    // be woken "now" — the engine clamps to the present.
                    return FlowStatus::Sleep(t.max(self.now));
                }
                _ => {
                    self.done = true;
                    return FlowStatus::Done;
                }
            }
        }
    }
}

/// A complete client↔server run: the measured [`ConnectionOutcome`] plus,
/// when requested via [`ConnectionRun::telemetry`], the engine's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// What the measured connection observed.
    pub connection: ConnectionOutcome,
    /// Engine telemetry, `Some` iff requested.  Under load it includes the
    /// shared bottleneck's per-router queue metrics (`queue.r<id>.*`: CE
    /// marks, tail drops, occupancy).
    pub telemetry: Option<EngineTelemetry>,
}

/// Builder for one QUIC measurement connection — the single entrypoint
/// replacing the old `run_connection` × `_under_load` × `_with_telemetry`
/// function matrix.
///
/// Defaults mirror the paper's methodology: no cross traffic (an otherwise
/// idle path) and no telemetry.  Every combination is bit-identical to the
/// legacy function it replaces; reading telemetry is side-effect free and
/// a disabled cross-traffic scenario leaves the RNG stream untouched.
#[derive(Debug)]
pub struct ConnectionRun<'a> {
    client_config: ClientConfig,
    behavior: ServerBehavior,
    path: &'a DuplexPath,
    driver: DriverConfig,
    cross: CrossTraffic,
    telemetry: bool,
}

impl<'a> ConnectionRun<'a> {
    /// A run of `client_config` against a `behavior` server over `path`,
    /// with no cross traffic and no telemetry.
    pub fn new(
        client_config: ClientConfig,
        behavior: ServerBehavior,
        path: &'a DuplexPath,
        driver: DriverConfig,
    ) -> Self {
        ConnectionRun {
            client_config,
            behavior,
            path,
            driver,
            cross: CrossTraffic::none(),
            telemetry: false,
        }
    }

    /// Race `cross` background flows through the forward path's bottleneck
    /// router (its last hop), which gets a shared egress queue.  The
    /// measured connection's packets then compete with the background load,
    /// and AQM CE marking emerges from the combined queue occupancy — the
    /// load-dependent regime of the paper's §6.2/§6.3 findings.
    /// [`CrossTraffic::none`] (the default) is the single-flow methodology,
    /// bit for bit.
    pub fn cross_traffic(mut self, cross: CrossTraffic) -> Self {
        self.cross = cross;
        self
    }

    /// Whether to capture the engine's telemetry (event counts, queue
    /// metrics, the virtual-time wake trace).  Purely observational: the
    /// connection outcome is bit-identical either way.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Drive the connection to completion.
    pub fn execute<R: Rng + ?Sized>(self, rng: &mut R) -> RunOutcome {
        let ConnectionRun {
            client_config,
            behavior,
            path,
            driver,
            cross,
            telemetry: want_telemetry,
        } = self;
        // No scenario — or nothing to attach it to (a hop-less path has no
        // bottleneck): run the plain single-flow connection with an
        // untouched RNG stream so the fallback really is bit-identical.
        if !cross.is_enabled() || CrossTraffic::bottleneck_of(&path.forward).is_none() {
            let mut client = ClientConnection::new(client_config, SimInstant::EPOCH, rng.gen());
            let mut server = ServerConnection::new(behavior, rng.gen());
            let (connection, telemetry) =
                run_endpoints(&mut client, &mut server, path, &driver, rng, want_telemetry);
            return RunOutcome {
                connection,
                telemetry,
            };
        }
        let mut client = ClientConnection::new(client_config, SimInstant::EPOCH, rng.gen());
        let mut server = ServerConnection::new(behavior, rng.gen());
        let (queues, mut loads) = cross
            .instantiate(&path.forward, rng.gen())
            // Unreachable: the guard above returned unless the scenario is
            // enabled and the path has a bottleneck, and restructuring into
            // a fallback would reorder the RNG draws the golden reports pin.
            // lint: allow(panic-policy) guard-checked precondition
            .expect("enabled scenario with a bottleneck");
        let mut engine = Engine::new(queues);
        // Background flows register first so their first packets occupy the
        // bottleneck before the measured connection's initial burst (FIFO
        // tie-break at the epoch).
        for load in loads.iter_mut() {
            engine.add_flow(load);
        }
        let mut flow = QuicFlow::new(&mut client, &mut server, path, &driver, rng);
        engine.add_flow(&mut flow);
        engine.run();
        let telemetry = want_telemetry.then(|| engine.telemetry());
        drop(engine);
        RunOutcome {
            connection: flow.into_outcome(),
            telemetry,
        }
    }
}

/// Run a complete client↔server exchange over `path`.
#[deprecated(note = "use the ConnectionRun builder: \
                     ConnectionRun::new(config, behavior, path, driver).execute(rng)")]
pub fn run_connection<R: Rng + ?Sized>(
    client_config: ClientConfig,
    behavior: ServerBehavior,
    path: &DuplexPath,
    config: &DriverConfig,
    rng: &mut R,
) -> ConnectionOutcome {
    ConnectionRun::new(client_config, behavior, path, config.clone())
        .execute(rng)
        .connection
}

/// Like `run_connection`, additionally returning the engine's telemetry
/// (event counts, queue metrics, the virtual-time wake trace).  Reading
/// telemetry is side-effect free: the outcome is bit-identical to
/// `run_connection` with the same inputs.
#[deprecated(note = "use the ConnectionRun builder with .telemetry(true)")]
pub fn run_connection_with_telemetry<R: Rng + ?Sized>(
    client_config: ClientConfig,
    behavior: ServerBehavior,
    path: &DuplexPath,
    config: &DriverConfig,
    rng: &mut R,
) -> (ConnectionOutcome, EngineTelemetry) {
    let out = ConnectionRun::new(client_config, behavior, path, config.clone())
        .telemetry(true)
        .execute(rng);
    (out.connection, out.telemetry.unwrap_or_default())
}

/// Run a prepared client and server to completion (exposed for tests that
/// need access to the endpoints afterwards): a one-flow engine with no
/// shared queues, bit-identical to the historical driver loop.
pub fn run_with_endpoints<R: Rng + ?Sized>(
    client: &mut ClientConnection,
    server: &mut ServerConnection,
    path: &DuplexPath,
    config: &DriverConfig,
    rng: &mut R,
) -> ConnectionOutcome {
    run_endpoints(client, server, path, config, rng, false).0
}

fn run_endpoints<R: Rng + ?Sized>(
    client: &mut ClientConnection,
    server: &mut ServerConnection,
    path: &DuplexPath,
    config: &DriverConfig,
    rng: &mut R,
    want_telemetry: bool,
) -> (ConnectionOutcome, Option<EngineTelemetry>) {
    let mut flow = QuicFlow::new(client, server, path, config, rng);
    let mut engine = Engine::new(SharedQueues::new());
    engine.add_flow(&mut flow);
    engine.run();
    // Telemetry must be read before the engine goes away — it borrows the
    // flow list; the outcome needs the flow back, hence the drop.
    let telemetry = want_telemetry.then(|| engine.telemetry());
    drop(engine);
    (flow.into_outcome(), telemetry)
}

/// Run a client↔server exchange while `cross` background flows push packets
/// through the forward path's bottleneck router.  With a disabled scenario
/// this falls back to the plain single-flow run exactly.
#[deprecated(note = "use the ConnectionRun builder with .cross_traffic(cross)")]
pub fn run_connection_under_load<R: Rng + ?Sized>(
    client_config: ClientConfig,
    behavior: ServerBehavior,
    path: &DuplexPath,
    config: &DriverConfig,
    cross: &CrossTraffic,
    rng: &mut R,
) -> ConnectionOutcome {
    ConnectionRun::new(client_config, behavior, path, config.clone())
        .cross_traffic(*cross)
        .execute(rng)
        .connection
}

/// Like `run_connection_under_load`, additionally returning the engine's
/// telemetry — under load this includes the shared bottleneck's per-router
/// queue metrics (`queue.r<id>.*`: CE marks, tail drops, occupancy).
#[deprecated(note = "use the ConnectionRun builder with \
                     .cross_traffic(cross).telemetry(true)")]
pub fn run_connection_under_load_with_telemetry<R: Rng + ?Sized>(
    client_config: ClientConfig,
    behavior: ServerBehavior,
    path: &DuplexPath,
    config: &DriverConfig,
    cross: &CrossTraffic,
    rng: &mut R,
) -> (ConnectionOutcome, EngineTelemetry) {
    let out = ConnectionRun::new(client_config, behavior, path, config.clone())
        .cross_traffic(*cross)
        .telemetry(true)
        .execute(rng);
    (out.connection, out.telemetry.unwrap_or_default())
}

fn encapsulate(
    src: IpAddr,
    dst: IpAddr,
    src_port: u16,
    dst_port: u16,
    ecn: EcnCodepoint,
    payload: &[u8],
) -> IpDatagram {
    let udp = UdpHeader::new(src_port, dst_port).encode(src, dst, payload);
    let header = match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            IpHeader::V4(Ipv4Header::new(s, d, IpProtocol::Udp, 64).with_ecn(ecn))
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            IpHeader::V6(Ipv6Header::new(s, d, IpProtocol::Udp, 64).with_ecn(ecn))
        }
        // Mixed families indicate a mis-built scenario; default to v4 with
        // unspecified addresses so the failure is visible (nothing will match).
        _ => IpHeader::V4(
            Ipv4Header::new(
                std::net::Ipv4Addr::UNSPECIFIED,
                std::net::Ipv4Addr::UNSPECIFIED,
                IpProtocol::Udp,
                64,
            )
            .with_ecn(ecn),
        ),
    };
    IpDatagram::new(header, udp)
}

fn decapsulate(datagram: &IpDatagram) -> Option<Vec<u8>> {
    if datagram.header.protocol() != IpProtocol::Udp {
        return None;
    }
    let (_, payload) = UdpHeader::decode(&datagram.payload).ok()?;
    Some(payload.to_vec())
}

#[cfg(test)]
// The legacy wrappers are exercised deliberately: these tests are the proof
// that each deprecated function stays equivalent to its builder form.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::behavior::{EcnMirroringBehavior, ServerBehavior};
    use crate::ecn::{EcnValidationFailure, EcnValidationState};
    use qem_netsim::IcmpBehavior;
    use qem_netsim::{build_transit_path, Asn, DuplexPath, Hop, Path, Router, TransitProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            IpAddr::V4(Ipv4Addr::new(198, 51, 100, 80)),
        )
    }

    fn clean_path() -> DuplexPath {
        DuplexPath::symmetric_clean_reverse(build_transit_path(
            Asn::DFN,
            Asn(16509),
            TransitProfile::Clean,
            false,
        ))
    }

    fn run(behavior: ServerBehavior, path: &DuplexPath, seed: u64) -> ConnectionOutcome {
        let (client_addr, server_addr) = addrs();
        let mut rng = StdRng::seed_from_u64(seed);
        ConnectionRun::new(
            ClientConfig::paper_default("www.example.org"),
            behavior,
            path,
            DriverConfig::new(client_addr, server_addr),
        )
        .execute(&mut rng)
        .connection
    }

    #[test]
    fn clean_path_accurate_server_is_capable() {
        let outcome = run(ServerBehavior::accurate(), &clean_path(), 1);
        assert!(outcome.report.connected);
        assert!(outcome.report.response.is_some());
        assert_eq!(outcome.report.ecn_state, EcnValidationState::Capable);
        assert!(outcome.report.peer_mirrored);
        assert_eq!(outcome.forward_losses, 0);
        assert!(outcome.forward_arrival_ecn.ect0 >= 5);
    }

    #[test]
    fn no_mirroring_server_fails_validation_but_answers_http() {
        let outcome = run(ServerBehavior::no_mirroring(), &clean_path(), 2);
        assert!(outcome.report.connected);
        assert!(outcome.report.response.is_some());
        assert_eq!(
            outcome.report.ecn_state,
            EcnValidationState::Failed(EcnValidationFailure::NoMirroring)
        );
        assert!(!outcome.report.peer_mirrored);
    }

    #[test]
    fn lsquic_style_undercount_is_detected() {
        let outcome = run(
            ServerBehavior::accurate().with_mirroring(EcnMirroringBehavior::MirrorOnlyHandshake),
            &clean_path(),
            3,
        );
        assert!(outcome.report.connected);
        assert_eq!(
            outcome.report.ecn_state,
            EcnValidationState::Failed(EcnValidationFailure::Undercount)
        );
        // It still counts as mirroring in the paper's terminology.
        assert!(outcome.report.peer_mirrored);
    }

    #[test]
    fn ect1_mixup_is_detected_as_wrong_codepoint() {
        let outcome = run(
            ServerBehavior::accurate().with_mirroring(EcnMirroringBehavior::MirrorAsEct1),
            &clean_path(),
            4,
        );
        assert_eq!(
            outcome.report.ecn_state,
            EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint)
        );
        assert!(outcome.report.peer_mirrored);
    }

    #[test]
    fn path_clearing_looks_like_no_mirroring() {
        // The server is perfectly well behaved, but an AS 1299-style router
        // clears the codepoints: the server never sees ECT, so its accurate
        // ACKs carry no ECN section and the client diagnoses "no mirroring".
        let forward = build_transit_path(
            Asn::DFN,
            Asn(16509),
            TransitProfile::Clearing { asn: Asn::ARELION },
            false,
        );
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let outcome = run(ServerBehavior::accurate(), &path, 5);
        assert!(outcome.report.connected);
        assert_eq!(
            outcome.report.ecn_state,
            EcnValidationState::Failed(EcnValidationFailure::NoMirroring)
        );
        assert_eq!(outcome.forward_arrival_ecn.ect0, 0);
    }

    #[test]
    fn path_remarking_fails_validation_with_wrong_codepoint() {
        let forward = build_transit_path(
            Asn::DFN,
            Asn(16509),
            TransitProfile::Remarking { asn: Asn::ARELION },
            false,
        );
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let outcome = run(ServerBehavior::accurate(), &path, 6);
        assert_eq!(
            outcome.report.ecn_state,
            EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint)
        );
        // The codepoints really did arrive as ECT(1).
        assert!(outcome.forward_arrival_ecn.ect1 >= 5);
        assert_eq!(outcome.forward_arrival_ecn.ect0, 0);
    }

    #[test]
    fn mark_all_ce_path_fails_validation_as_all_ce() {
        let forward = build_transit_path(
            Asn::DFN,
            Asn(16509),
            TransitProfile::MarkAllCe { asn: Asn(64500) },
            false,
        );
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let outcome = run(ServerBehavior::accurate(), &path, 7);
        assert_eq!(
            outcome.report.ecn_state,
            EcnValidationState::Failed(EcnValidationFailure::AllCe)
        );
    }

    #[test]
    fn server_ecn_use_is_visible_to_the_client() {
        let outcome = run(ServerBehavior::accurate().with_ecn_use(), &clean_path(), 8);
        assert!(outcome.report.server_used_ecn);
        assert!(outcome.report.received_ecn.ect0 > 0);
        let outcome = run(ServerBehavior::accurate(), &clean_path(), 9);
        assert!(!outcome.report.server_used_ecn);
    }

    #[test]
    fn draft_only_server_is_reached_via_version_negotiation() {
        let behavior = ServerBehavior::accurate()
            .with_versions(vec![qem_packet::quic::QuicVersion::DRAFT_27])
            .with_server_header("LiteSpeed");
        let outcome = run(behavior, &clean_path(), 10);
        assert!(outcome.report.connected);
        assert_eq!(
            outcome.report.version,
            qem_packet::quic::QuicVersion::DRAFT_27
        );
        assert_eq!(
            outcome.report.response.unwrap().server.as_deref(),
            Some("LiteSpeed")
        );
    }

    #[test]
    fn total_forward_loss_times_out() {
        let lossy = Path::new(vec![
            Hop::new(Router::transparent(1, Asn::DFN)).with_loss(1.0)
        ]);
        let path = DuplexPath::symmetric_clean_reverse(lossy);
        // symmetric_clean_reverse keeps the loss on the reverse too; rebuild
        // the reverse without loss so only the forward direction black-holes.
        let path = DuplexPath::new(path.forward, Path::empty());
        let outcome = run(ServerBehavior::accurate(), &path, 11);
        assert!(!outcome.report.connected);
        assert!(outcome.report.error.is_some());
        assert_eq!(
            outcome.report.ecn_state,
            EcnValidationState::Failed(EcnValidationFailure::AllLost)
        );
        assert!(outcome.forward_losses >= 2);
    }

    #[test]
    fn partial_loss_recovers_via_retransmission() {
        // 40 % loss on one hop: with one allowed retransmission most seeds
        // still complete; pick one that does to exercise the recovery path.
        let lossy = Path::new(vec![
            Hop::new(Router::transparent(1, Asn::DFN)).with_loss(0.4),
            Hop::new(Router::transparent(2, Asn(16509))),
        ]);
        let path = DuplexPath::new(lossy, Path::empty());
        let outcome = run(ServerBehavior::accurate(), &path, 21);
        assert!(outcome.forward_losses > 0 || outcome.report.connected);
    }

    #[test]
    fn silent_icmp_routers_do_not_affect_regular_traffic() {
        let forward = Path::new(vec![Hop::new(
            Router::transparent(1, Asn::DFN).with_icmp(IcmpBehavior::silent()),
        )]);
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let outcome = run(ServerBehavior::accurate(), &path, 12);
        assert!(outcome.report.connected);
    }

    #[test]
    fn ipv6_connection_works_end_to_end() {
        let forward = build_transit_path(Asn::DFN, Asn(16509), TransitProfile::Clean, true);
        let path = DuplexPath::symmetric_clean_reverse(forward);
        let mut rng = StdRng::seed_from_u64(13);
        let outcome = run_connection(
            ClientConfig::paper_default("v6.example.org"),
            ServerBehavior::accurate(),
            &path,
            &DriverConfig::new(
                "2001:db8::10".parse().unwrap(),
                "2001:db8:1::443".parse().unwrap(),
            ),
            &mut rng,
        );
        assert!(outcome.report.connected);
        assert_eq!(outcome.report.ecn_state, EcnValidationState::Capable);
    }

    #[test]
    fn reverse_path_clearing_hides_server_ecn_use() {
        // Server uses ECN but the reverse path clears it: the client must not
        // report "Use".
        let forward = build_transit_path(Asn::DFN, Asn(16509), TransitProfile::Clean, false);
        let reverse = build_transit_path(
            Asn(16509),
            Asn::DFN,
            TransitProfile::Clearing { asn: Asn::ARELION },
            false,
        );
        let path = DuplexPath::new(forward, reverse);
        let outcome = run(ServerBehavior::accurate().with_ecn_use(), &path, 14);
        assert!(outcome.report.connected);
        assert!(!outcome.report.server_used_ecn);
    }

    #[test]
    fn cross_traffic_marks_what_a_lone_flow_never_sees() {
        use qem_netsim::CrossTraffic;
        let (client_addr, server_addr) = addrs();
        let path = clean_path();
        let driver = DriverConfig::new(client_addr, server_addr);

        // Alone on a clean path: no CE, ever.
        let mut rng = StdRng::seed_from_u64(77);
        let solo = run_connection(
            ClientConfig::paper_default("www.example.org"),
            ServerBehavior::accurate(),
            &path,
            &driver,
            &mut rng,
        );
        assert!(solo.report.connected);
        assert_eq!(solo.report.mirrored_counts.ce, 0);
        assert_eq!(solo.forward_arrival_ecn.ce, 0);

        // Same connection, same seed, but behind a congested shared
        // bottleneck: the combined occupancy pushes the AQM into marking.
        let mut rng = StdRng::seed_from_u64(77);
        let loaded = run_connection_under_load(
            ClientConfig::paper_default("www.example.org"),
            ServerBehavior::accurate(),
            &path,
            &driver,
            &CrossTraffic::congested(),
            &mut rng,
        );
        assert!(
            loaded.forward_arrival_ecn.ce > 0,
            "shared-queue occupancy must CE-mark the measured flow"
        );
        assert!(
            loaded.report.mirrored_counts.ce > 0,
            "the server must mirror the congestion marks"
        );

        // And a disabled scenario is the single-flow run, bit for bit.
        let mut rng = StdRng::seed_from_u64(77);
        let off = run_connection_under_load(
            ClientConfig::paper_default("www.example.org"),
            ServerBehavior::accurate(),
            &path,
            &driver,
            &CrossTraffic::none(),
            &mut rng,
        );
        assert_eq!(off, solo);
    }

    #[test]
    fn telemetry_variant_is_outcome_identical_and_observes_the_run() {
        let (client_addr, server_addr) = addrs();
        let path = clean_path();
        let driver = DriverConfig::new(client_addr, server_addr);

        let mut rng = StdRng::seed_from_u64(55);
        let plain = run_connection(
            ClientConfig::paper_default("www.example.org"),
            ServerBehavior::accurate(),
            &path,
            &driver,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(55);
        let (observed, telemetry) = run_connection_with_telemetry(
            ClientConfig::paper_default("www.example.org"),
            ServerBehavior::accurate(),
            &path,
            &driver,
            &mut rng,
        );
        assert_eq!(observed, plain, "telemetry reads must not perturb the run");
        let events = telemetry
            .metrics
            .counter("engine.events_processed")
            .expect("engine counter");
        assert!(events > 0);
        assert_eq!(telemetry.trace.len() as u64, events, "one wake per event");
        assert!(telemetry.trace.windows(2).all(|w| w[0].at <= w[1].at));
        // No shared queues in the single-flow wrapper: no queue metrics.
        assert!(telemetry.metrics.counter("queue.r1.enqueued").is_none());

        // Under congestion the same API surfaces the bottleneck's counters.
        let mut rng = StdRng::seed_from_u64(55);
        let (_, loaded) = run_connection_under_load_with_telemetry(
            ClientConfig::paper_default("www.example.org"),
            ServerBehavior::accurate(),
            &path,
            &driver,
            &qem_netsim::CrossTraffic::congested(),
            &mut rng,
        );
        let marked: u64 = loaded
            .metrics
            .metrics
            .iter()
            .filter(|(name, _)| name.starts_with("queue.") && name.ends_with(".marked"))
            .filter_map(|(name, _)| loaded.metrics.counter(name))
            .sum();
        assert!(marked > 0, "congested bottleneck must report CE marks");
    }

    #[test]
    fn builder_is_equivalent_to_every_legacy_wrapper() {
        let (client_addr, server_addr) = addrs();
        let path = clean_path();
        let driver = DriverConfig::new(client_addr, server_addr);
        let config = || ClientConfig::paper_default("www.example.org");

        // Plain run, no telemetry requested.
        let mut rng = StdRng::seed_from_u64(91);
        let legacy = run_connection(
            config(),
            ServerBehavior::accurate(),
            &path,
            &driver,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(91);
        let built = ConnectionRun::new(config(), ServerBehavior::accurate(), &path, driver.clone())
            .execute(&mut rng);
        assert_eq!(built.connection, legacy);
        assert!(built.telemetry.is_none(), "telemetry is strictly opt-in");

        // Under load, with telemetry: outcome and telemetry both match.
        let cross = CrossTraffic::congested();
        let mut rng = StdRng::seed_from_u64(91);
        let (legacy, legacy_tel) = run_connection_under_load_with_telemetry(
            config(),
            ServerBehavior::accurate(),
            &path,
            &driver,
            &cross,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(91);
        let built = ConnectionRun::new(config(), ServerBehavior::accurate(), &path, driver.clone())
            .cross_traffic(cross)
            .telemetry(true)
            .execute(&mut rng);
        assert_eq!(built.connection, legacy);
        assert_eq!(built.telemetry, Some(legacy_tel));
    }

    #[test]
    fn ce_probing_mode_reports_mirrored_ce() {
        let (client_addr, server_addr) = addrs();
        let mut rng = StdRng::seed_from_u64(15);
        let outcome = run_connection(
            ClientConfig::force_ce("www.example.org"),
            ServerBehavior::accurate(),
            &clean_path(),
            &DriverConfig::new(client_addr, server_addr),
            &mut rng,
        );
        assert!(outcome.report.connected);
        assert!(outcome.report.mirrored_counts.ce >= 5);
        assert_eq!(outcome.report.mirrored_counts.ect0, 0);
    }
}
