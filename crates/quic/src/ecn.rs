//! The RFC 9000 §13.4.2 ECN validation state machine (Figure 1 of the paper).
//!
//! Each QUIC endpoint unilaterally decides whether to *use* ECN on its
//! forward path.  While testing, it marks outgoing packets `ECT(0)` and
//! watches the ECN counters the peer mirrors in `ACK_ECN` frames.  The
//! validation fails — and ECN is disabled — if
//!
//! * ACK frames acknowledge ECT-marked packets without carrying ECN counts
//!   (the peer or a middlebox discards the marks — "no mirroring"),
//! * the mirrored counters are non-monotonic,
//! * the counters undercount the newly acknowledged ECT packets,
//! * a codepoint appears that was never sent (e.g. `ECT(1)` although only
//!   `ECT(0)` was used — the re-marking class of Table 5),
//! * every packet is reported CE ("All CE"),
//! * or all testing packets are lost / time out.
//!
//! The paper's measurement client shortens the testing phase to 5 packets and
//! 2 timeouts (§4.1); the RFC suggests 10 and 3.  Both are expressible via
//! [`EcnConfig`].

use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of the validation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcnConfig {
    /// Number of packets sent with ECT marking during the testing phase.
    pub testing_packets: u64,
    /// Number of PTO-style timeouts tolerated before validation fails.
    pub max_timeouts: u32,
    /// The codepoint set on outgoing packets while testing.  The paper's
    /// §6.3 experiment deliberately sends `CE` instead of `ECT(0)`.
    pub codepoint: EcnCodepoint,
}

impl EcnConfig {
    /// The RFC 9000 §13.4.2 suggestion: 10 packets, 3 timeouts, ECT(0).
    pub fn rfc_default() -> Self {
        EcnConfig {
            testing_packets: 10,
            max_timeouts: 3,
            codepoint: EcnCodepoint::Ect0,
        }
    }

    /// The paper's reduced budget: 5 packets, 2 timeouts, ECT(0) (§4.1).
    pub fn paper_default() -> Self {
        EcnConfig {
            testing_packets: 5,
            max_timeouts: 2,
            codepoint: EcnCodepoint::Ect0,
        }
    }

    /// A configuration that sends CE on every testing packet (§6.3).
    pub fn force_ce() -> Self {
        EcnConfig {
            codepoint: EcnCodepoint::Ce,
            ..EcnConfig::paper_default()
        }
    }
}

impl Default for EcnConfig {
    fn default() -> Self {
        EcnConfig::paper_default()
    }
}

/// Why ECN validation failed.
///
/// The variants map one-to-one onto the failure classes of Table 5 / §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EcnValidationFailure {
    /// ACK frames acknowledged ECT-marked packets without any ECN counts.
    NoMirroring,
    /// Mirrored counters decreased between ACK frames.
    NonMonotonic,
    /// Fewer codepoints mirrored than ECT-marked packets acknowledged.
    Undercount,
    /// A codepoint was mirrored that this endpoint never sent
    /// (in practice: `ECT(1)` reported although only `ECT(0)` was used).
    WrongCodepoint,
    /// Every acknowledged packet was reported as CE.
    AllCe,
    /// All testing packets were lost (or the timeout budget was exhausted).
    AllLost,
}

impl fmt::Display for EcnValidationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EcnValidationFailure::NoMirroring => "no mirroring",
            EcnValidationFailure::NonMonotonic => "non-monotonic counters",
            EcnValidationFailure::Undercount => "undercount",
            EcnValidationFailure::WrongCodepoint => "wrong codepoint",
            EcnValidationFailure::AllCe => "all packets CE",
            EcnValidationFailure::AllLost => "all packets lost",
        };
        f.write_str(s)
    }
}

/// The state of the validation machine (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EcnValidationState {
    /// ECN is being tested: outgoing packets carry the configured codepoint.
    Testing,
    /// The testing budget is exhausted; waiting for the remaining ACKs before
    /// deciding.  Outgoing packets are sent without ECN marks.
    Unknown,
    /// Validation succeeded: the path and peer handle ECN correctly.
    Capable,
    /// Validation failed: ECN is disabled for this connection.
    Failed(EcnValidationFailure),
}

impl EcnValidationState {
    /// Whether the endpoint should still mark outgoing packets.
    pub fn marking_active(self) -> bool {
        matches!(
            self,
            EcnValidationState::Testing | EcnValidationState::Capable
        )
    }

    /// Whether a final verdict has been reached.
    pub fn is_final(self) -> bool {
        matches!(
            self,
            EcnValidationState::Capable | EcnValidationState::Failed(_)
        )
    }
}

/// The sender-side ECN validator attached to one packet number space
/// aggregate.
///
/// The validator is fed three kinds of events by the connection:
///
/// * [`on_packet_sent`](EcnValidator::on_packet_sent) whenever a packet
///   leaves, with the codepoint it carried,
/// * [`on_ack_received`](EcnValidator::on_ack_received) whenever an ACK frame
///   arrives, with the cumulative mirrored counters (if any) and how many
///   ECT-marked packets were newly acknowledged,
/// * [`on_timeout`](EcnValidator::on_timeout) whenever a PTO fires without
///   any acknowledgment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EcnValidator {
    config: EcnConfig,
    state: EcnValidationState,
    /// Packets sent with an ECT or CE mark, by codepoint.
    sent: EcnCounts,
    /// Packets sent while marking was active that have been acknowledged.
    acked_marked: u64,
    /// Highest cumulative counters seen so far (per connection).
    last_counts: Option<EcnCounts>,
    timeouts: u32,
    marked_sent_total: u64,
}

impl EcnValidator {
    /// Create a validator.
    pub fn new(config: EcnConfig) -> Self {
        EcnValidator {
            config,
            state: EcnValidationState::Testing,
            sent: EcnCounts::ZERO,
            acked_marked: 0,
            last_counts: None,
            timeouts: 0,
            marked_sent_total: 0,
        }
    }

    /// Create a validator that never marks packets (ECN disabled by
    /// configuration, like the unmodified quic-go client the paper started
    /// from).
    pub fn disabled() -> Self {
        let mut v = EcnValidator::new(EcnConfig::paper_default());
        v.state = EcnValidationState::Failed(EcnValidationFailure::NoMirroring);
        v.marked_sent_total = 0;
        v
    }

    /// Current state.
    pub fn state(&self) -> EcnValidationState {
        self.state
    }

    /// The configuration in use.
    pub fn config(&self) -> &EcnConfig {
        &self.config
    }

    /// Cumulative codepoints sent with marking.
    pub fn sent_counts(&self) -> EcnCounts {
        self.sent
    }

    /// The last cumulative counters mirrored by the peer, if any.
    pub fn mirrored_counts(&self) -> Option<EcnCounts> {
        self.last_counts
    }

    /// The codepoint to place on the next outgoing packet.
    pub fn codepoint_for_next_packet(&self) -> EcnCodepoint {
        match self.state {
            EcnValidationState::Testing | EcnValidationState::Capable => self.config.codepoint,
            _ => EcnCodepoint::NotEct,
        }
    }

    /// Record that a packet left carrying `codepoint`.
    pub fn on_packet_sent(&mut self, codepoint: EcnCodepoint) {
        self.sent.record(codepoint);
        if codepoint != EcnCodepoint::NotEct {
            self.marked_sent_total += 1;
        }
        if self.state == EcnValidationState::Testing
            && self.marked_sent_total >= self.config.testing_packets
        {
            self.state = EcnValidationState::Unknown;
        }
    }

    /// Record a PTO-style timeout without any acknowledgment progress.
    pub fn on_timeout(&mut self) {
        if self.state.is_final() {
            return;
        }
        self.timeouts += 1;
        if self.timeouts >= self.config.max_timeouts {
            self.state = EcnValidationState::Failed(EcnValidationFailure::AllLost);
        }
    }

    /// Process an ACK frame.
    ///
    /// * `newly_acked_marked` — how many of the newly acknowledged packets
    ///   were sent with an ECT/CE mark,
    /// * `newly_acked_total` — how many packets were newly acknowledged,
    /// * `counts` — the cumulative ECN counters carried by the frame (`None`
    ///   for plain ACK frames).
    pub fn on_ack_received(
        &mut self,
        newly_acked_marked: u64,
        newly_acked_total: u64,
        counts: Option<EcnCounts>,
    ) {
        // Validation keeps running even in the Capable state: Figure 1 has an
        // "Incorrect Counters" edge from Capable back to Failed, and RFC 9000
        // requires counts to be checked on every ACK.
        if matches!(self.state, EcnValidationState::Failed(_)) || newly_acked_total == 0 {
            return;
        }

        let counts = match counts {
            Some(c) => c,
            None => {
                if newly_acked_marked > 0 {
                    // An ACK that newly acknowledges an ECT packet but carries
                    // no ECN counts means the peer (or path) discards marks.
                    self.state = EcnValidationState::Failed(EcnValidationFailure::NoMirroring);
                }
                return;
            }
        };

        // Monotonicity across ACK frames.
        if let Some(prev) = self.last_counts {
            if !counts.dominates(&prev) {
                self.state = EcnValidationState::Failed(EcnValidationFailure::NonMonotonic);
                return;
            }
        }
        let increase = counts.saturating_sub(&self.last_counts.unwrap_or(EcnCounts::ZERO));
        self.last_counts = Some(counts);
        self.acked_marked += newly_acked_marked;

        // A codepoint we never sent must not appear (unless CE, which routers
        // may legitimately apply).
        if increase.ect1 > 0 && self.sent.ect1 == 0 && self.config.codepoint != EcnCodepoint::Ect1 {
            self.state = EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint);
            return;
        }
        if increase.ect0 > 0 && self.sent.ect0 == 0 && self.config.codepoint != EcnCodepoint::Ect0 {
            self.state = EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint);
            return;
        }

        // Undercount: the counters must have increased by at least the number
        // of newly acknowledged marked packets.
        if newly_acked_marked > 0 && increase.total() < newly_acked_marked {
            self.state = EcnValidationState::Failed(EcnValidationFailure::Undercount);
            return;
        }

        // All CE: the whole testing budget has been acknowledged and *every*
        // marked packet came back as CE even though we never sent CE ourselves
        // (a router marking everything, or genuinely severe congestion — the
        // paper's Table 5 "All CE" class).  Partial CE marking is legitimate
        // congestion signalling and must not fail validation.
        if self.config.codepoint != EcnCodepoint::Ce
            && self.acked_marked >= self.config.testing_packets
            && counts.ce >= self.acked_marked
            && counts.ect0 == 0
            && counts.ect1 == 0
        {
            self.state = EcnValidationState::Failed(EcnValidationFailure::AllCe);
            return;
        }

        // Successful validation: the testing budget has been used (or we are
        // still testing) and every marked packet acknowledged so far has been
        // accounted for correctly.
        if self.acked_marked > 0 {
            match self.state {
                // Keep testing until the budget is exhausted; counters are fine.
                EcnValidationState::Testing
                    if self.marked_sent_total >= self.config.testing_packets =>
                {
                    self.state = EcnValidationState::Capable;
                }
                EcnValidationState::Unknown => {
                    self.state = EcnValidationState::Capable;
                }
                _ => {}
            }
        }
    }

    /// Whether the peer mirrored *any* ECN counters on this connection,
    /// regardless of whether validation succeeded.  This is the paper's
    /// "Mirroring" notion (§2.2.2 terminology).
    pub fn peer_mirrored(&self) -> bool {
        self.last_counts.map(|c| c.total() > 0).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validator() -> EcnValidator {
        EcnValidator::new(EcnConfig::paper_default())
    }

    /// Simulate sending `n` marked packets.
    fn send_n(v: &mut EcnValidator, n: u64) {
        for _ in 0..n {
            let cp = v.codepoint_for_next_packet();
            v.on_packet_sent(cp);
        }
    }

    #[test]
    fn capable_path_validates() {
        let mut v = validator();
        send_n(&mut v, 5);
        assert_eq!(v.state(), EcnValidationState::Unknown);
        v.on_ack_received(
            5,
            5,
            Some(EcnCounts {
                ect0: 5,
                ect1: 0,
                ce: 0,
            }),
        );
        assert_eq!(v.state(), EcnValidationState::Capable);
        assert!(v.peer_mirrored());
        assert!(v.state().marking_active());
    }

    #[test]
    fn capable_with_partial_acks() {
        let mut v = validator();
        send_n(&mut v, 3);
        v.on_ack_received(
            3,
            3,
            Some(EcnCounts {
                ect0: 3,
                ect1: 0,
                ce: 0,
            }),
        );
        // Still testing (budget not exhausted), marking continues.
        assert_eq!(v.state(), EcnValidationState::Testing);
        send_n(&mut v, 2);
        v.on_ack_received(
            2,
            2,
            Some(EcnCounts {
                ect0: 5,
                ect1: 0,
                ce: 0,
            }),
        );
        assert_eq!(v.state(), EcnValidationState::Capable);
    }

    #[test]
    fn missing_counts_fail_as_no_mirroring() {
        let mut v = validator();
        send_n(&mut v, 5);
        v.on_ack_received(5, 5, None);
        assert_eq!(
            v.state(),
            EcnValidationState::Failed(EcnValidationFailure::NoMirroring)
        );
        assert!(!v.peer_mirrored());
        assert!(!v.state().marking_active());
    }

    #[test]
    fn ack_without_counts_for_unmarked_packets_is_harmless() {
        let mut v = validator();
        send_n(&mut v, 5);
        // ACK only covers packets sent after marking stopped.
        v.on_packet_sent(EcnCodepoint::NotEct);
        v.on_ack_received(0, 1, None);
        assert_eq!(v.state(), EcnValidationState::Unknown);
    }

    #[test]
    fn undercount_fails() {
        let mut v = validator();
        send_n(&mut v, 5);
        v.on_ack_received(
            5,
            5,
            Some(EcnCounts {
                ect0: 3,
                ect1: 0,
                ce: 0,
            }),
        );
        assert_eq!(
            v.state(),
            EcnValidationState::Failed(EcnValidationFailure::Undercount)
        );
    }

    #[test]
    fn remarking_to_ect1_fails_as_wrong_codepoint() {
        let mut v = validator();
        send_n(&mut v, 5);
        v.on_ack_received(
            5,
            5,
            Some(EcnCounts {
                ect0: 0,
                ect1: 5,
                ce: 0,
            }),
        );
        assert_eq!(
            v.state(),
            EcnValidationState::Failed(EcnValidationFailure::WrongCodepoint)
        );
        // The peer did mirror something — the paper counts this as "Mirroring"
        // but not "Capable".
        assert!(v.peer_mirrored());
    }

    #[test]
    fn ce_marking_by_congested_path_is_accepted() {
        let mut v = validator();
        send_n(&mut v, 5);
        v.on_ack_received(
            5,
            5,
            Some(EcnCounts {
                ect0: 3,
                ect1: 0,
                ce: 2,
            }),
        );
        assert_eq!(v.state(), EcnValidationState::Capable);
    }

    #[test]
    fn all_ce_fails() {
        let mut v = validator();
        send_n(&mut v, 5);
        v.on_ack_received(
            5,
            5,
            Some(EcnCounts {
                ect0: 0,
                ect1: 0,
                ce: 5,
            }),
        );
        assert_eq!(
            v.state(),
            EcnValidationState::Failed(EcnValidationFailure::AllCe)
        );
    }

    #[test]
    fn non_monotonic_counters_fail() {
        let mut v = validator();
        send_n(&mut v, 3);
        v.on_ack_received(
            3,
            3,
            Some(EcnCounts {
                ect0: 3,
                ect1: 0,
                ce: 0,
            }),
        );
        send_n(&mut v, 2);
        v.on_ack_received(
            2,
            2,
            Some(EcnCounts {
                ect0: 2,
                ect1: 0,
                ce: 0,
            }),
        );
        assert_eq!(
            v.state(),
            EcnValidationState::Failed(EcnValidationFailure::NonMonotonic)
        );
    }

    #[test]
    fn timeouts_exhaust_budget() {
        let mut v = validator();
        send_n(&mut v, 5);
        v.on_timeout();
        assert_eq!(v.state(), EcnValidationState::Unknown);
        v.on_timeout();
        assert_eq!(
            v.state(),
            EcnValidationState::Failed(EcnValidationFailure::AllLost)
        );
    }

    #[test]
    fn rfc_budget_uses_ten_packets_and_three_timeouts() {
        let mut v = EcnValidator::new(EcnConfig::rfc_default());
        send_n(&mut v, 9);
        assert_eq!(v.state(), EcnValidationState::Testing);
        send_n(&mut v, 1);
        assert_eq!(v.state(), EcnValidationState::Unknown);
        v.on_timeout();
        v.on_timeout();
        assert_eq!(v.state(), EcnValidationState::Unknown);
        v.on_timeout();
        assert_eq!(
            v.state(),
            EcnValidationState::Failed(EcnValidationFailure::AllLost)
        );
    }

    #[test]
    fn marking_stops_after_testing_budget() {
        let mut v = validator();
        send_n(&mut v, 5);
        assert_eq!(v.codepoint_for_next_packet(), EcnCodepoint::NotEct);
        assert_eq!(v.sent_counts().ect0, 5);
    }

    #[test]
    fn force_ce_config_marks_ce() {
        let mut v = EcnValidator::new(EcnConfig::force_ce());
        assert_eq!(v.codepoint_for_next_packet(), EcnCodepoint::Ce);
        send_n(&mut v, 5);
        assert_eq!(v.sent_counts().ce, 5);
        // A peer mirroring those CE marks is not a failure in this mode.
        v.on_ack_received(
            5,
            5,
            Some(EcnCounts {
                ect0: 0,
                ect1: 0,
                ce: 5,
            }),
        );
        assert_eq!(v.state(), EcnValidationState::Capable);
    }

    #[test]
    fn disabled_validator_never_marks() {
        let v = EcnValidator::disabled();
        assert_eq!(v.codepoint_for_next_packet(), EcnCodepoint::NotEct);
        assert!(v.state().is_final());
    }

    #[test]
    fn late_events_after_final_state_are_ignored() {
        let mut v = validator();
        send_n(&mut v, 5);
        v.on_ack_received(5, 5, None);
        let failed = v.state();
        v.on_ack_received(
            1,
            1,
            Some(EcnCounts {
                ect0: 1,
                ect1: 0,
                ce: 0,
            }),
        );
        v.on_timeout();
        assert_eq!(v.state(), failed);
    }
}
