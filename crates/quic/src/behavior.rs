//! Server-side ECN behaviour profiles.
//!
//! The paper never sees server source code; it diagnoses deployed stacks from
//! their on-the-wire behaviour.  This module models exactly those observable
//! behaviours, so the synthetic web landscape (`qem-web`) can attach a
//! profile to every hosting provider and the measurement pipeline recovers
//! the paper's numbers from first principles:
//!
//! * stacks that never put ECN counts in their ACKs (Cloudflare quiche,
//!   Fastly quicly, Google's own services in most weeks),
//! * stacks that mirror correctly (Amazon s2n-quic, LiteSpeed ≥ 4.0 with the
//!   ECN flag on),
//! * the LiteSpeed configuration that mirrors during the handshake but loses
//!   the counters on the switch to the 1-RTT packet number space (§7.3),
//! * stacks that report `ECT(0)` arrivals in the `ECT(1)` counter (the
//!   client-visible equivalent of Google's suspected internal ECT(1)
//!   exposure, §7.3),
//! * stacks that mark everything CE (the Google-in-India anomaly, §8).

use crate::transport_params::TransportParameters;
use qem_packet::ecn::{EcnCodepoint, EcnCounts};
use qem_packet::quic::QuicVersion;
use serde::{Deserialize, Serialize};

/// How a server reports ECN counters in its ACK frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EcnMirroringBehavior {
    /// Never include ECN counts (plain ACK frames only).
    None,
    /// Report the counters it actually observed, per packet number space.
    Accurate,
    /// Report accurate counters in the Initial and Handshake spaces but a
    /// frozen (all-zero) counter set in the application space: the lsquic
    /// "ECN flag disabled" bug of §7.3 that surfaces as *undercounting*.
    MirrorOnlyHandshake,
    /// Report every observed ECT(0) packet in the ECT(1) counter (codepoint
    /// mix-up / internal re-marking), surfacing as *re-marking ECT(1)*.
    MirrorAsEct1,
    /// Report every observed ECT/CE packet as CE (the "All CE" class).
    AlwaysCe,
}

impl EcnMirroringBehavior {
    /// Whether the behaviour ever produces ECN counts (the paper's
    /// "Mirroring" notion).
    pub fn mirrors(self) -> bool {
        self != EcnMirroringBehavior::None
    }

    /// Transform the counters a server actually observed in a given packet
    /// number space into the counters it will report.
    ///
    /// `is_application_space` selects the buggy branch of
    /// [`MirrorOnlyHandshake`](EcnMirroringBehavior::MirrorOnlyHandshake).
    pub fn report(self, observed: EcnCounts, is_application_space: bool) -> Option<EcnCounts> {
        match self {
            EcnMirroringBehavior::None => None,
            EcnMirroringBehavior::Accurate => Some(observed),
            EcnMirroringBehavior::MirrorOnlyHandshake => {
                if is_application_space {
                    Some(EcnCounts::ZERO)
                } else {
                    Some(observed)
                }
            }
            EcnMirroringBehavior::MirrorAsEct1 => Some(EcnCounts {
                ect0: 0,
                ect1: observed.ect1 + observed.ect0,
                ce: observed.ce,
            }),
            EcnMirroringBehavior::AlwaysCe => Some(EcnCounts {
                ect0: 0,
                ect1: 0,
                ce: observed.total(),
            }),
        }
    }
}

/// Complete behavioural description of a simulated QUIC server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerBehavior {
    /// QUIC versions the server accepts; anything else triggers version
    /// negotiation.
    pub supported_versions: Vec<QuicVersion>,
    /// ECN mirroring behaviour.
    pub mirroring: EcnMirroringBehavior,
    /// The codepoint the server sets on its own outgoing packets
    /// (`NotEct` if the server does not *use* ECN).
    pub egress_ecn: EcnCodepoint,
    /// Value of the HTTP `server` header (`None` = header suppressed).
    pub server_header: Option<String>,
    /// Value of the HTTP `via` header (set by reverse proxies).
    pub via_header: Option<String>,
    /// Transport parameters advertised in the handshake (fingerprinted by the
    /// measurement pipeline to identify stacks without a `server` header).
    pub transport_params: TransportParameters,
    /// Whether the server answers HTTP requests at all (a handful of hosts
    /// complete the QUIC handshake but never deliver a response).
    pub serves_http: bool,
}

impl ServerBehavior {
    /// A well-behaved server: QUIC v1, accurate mirroring, no ECN use of its own.
    pub fn accurate() -> Self {
        ServerBehavior {
            supported_versions: vec![QuicVersion::V1],
            mirroring: EcnMirroringBehavior::Accurate,
            egress_ecn: EcnCodepoint::NotEct,
            server_header: None,
            via_header: None,
            transport_params: TransportParameters::client_default(),
            serves_http: true,
        }
    }

    /// A server that never mirrors ECN (the majority of deployments).
    pub fn no_mirroring() -> Self {
        ServerBehavior {
            mirroring: EcnMirroringBehavior::None,
            ..ServerBehavior::accurate()
        }
    }

    /// Set the mirroring behaviour.
    pub fn with_mirroring(mut self, mirroring: EcnMirroringBehavior) -> Self {
        self.mirroring = mirroring;
        self
    }

    /// Make the server use ECN on its own packets (sets `ECT(0)`).
    pub fn with_ecn_use(mut self) -> Self {
        self.egress_ecn = EcnCodepoint::Ect0;
        self
    }

    /// Set the supported versions.
    pub fn with_versions(mut self, versions: Vec<QuicVersion>) -> Self {
        self.supported_versions = versions;
        self
    }

    /// Set the HTTP `server` header.
    pub fn with_server_header(mut self, header: &str) -> Self {
        self.server_header = Some(header.to_string());
        self
    }

    /// Set the HTTP `via` header.
    pub fn with_via_header(mut self, header: &str) -> Self {
        self.via_header = Some(header.to_string());
        self
    }

    /// Set the advertised transport parameters.
    pub fn with_transport_params(mut self, params: TransportParameters) -> Self {
        self.transport_params = params;
        self
    }

    /// Whether `version` is acceptable to this server.
    pub fn supports_version(&self, version: QuicVersion) -> bool {
        self.supported_versions.contains(&version)
    }

    /// Whether this behaviour would count as "Mirroring" in the paper's
    /// terminology, assuming a clean path.
    pub fn nominally_mirrors(&self) -> bool {
        self.mirroring.mirrors()
    }

    /// Whether this behaviour counts as "Use" in the paper's terminology.
    pub fn uses_ecn(&self) -> bool {
        self.egress_ecn != EcnCodepoint::NotEct
    }
}

impl Default for ServerBehavior {
    fn default() -> Self {
        ServerBehavior::accurate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBSERVED: EcnCounts = EcnCounts {
        ect0: 7,
        ect1: 0,
        ce: 1,
    };

    #[test]
    fn none_reports_nothing() {
        assert_eq!(EcnMirroringBehavior::None.report(OBSERVED, false), None);
        assert!(!EcnMirroringBehavior::None.mirrors());
    }

    #[test]
    fn accurate_reports_observations() {
        assert_eq!(
            EcnMirroringBehavior::Accurate.report(OBSERVED, true),
            Some(OBSERVED)
        );
    }

    #[test]
    fn handshake_only_freezes_application_space() {
        let b = EcnMirroringBehavior::MirrorOnlyHandshake;
        assert_eq!(b.report(OBSERVED, false), Some(OBSERVED));
        assert_eq!(b.report(OBSERVED, true), Some(EcnCounts::ZERO));
    }

    #[test]
    fn ect1_mixup_moves_counts() {
        let reported = EcnMirroringBehavior::MirrorAsEct1
            .report(OBSERVED, true)
            .unwrap();
        assert_eq!(reported.ect0, 0);
        assert_eq!(reported.ect1, 7);
        assert_eq!(reported.ce, 1);
    }

    #[test]
    fn always_ce_collapses_everything() {
        let reported = EcnMirroringBehavior::AlwaysCe
            .report(OBSERVED, true)
            .unwrap();
        assert_eq!(
            reported,
            EcnCounts {
                ect0: 0,
                ect1: 0,
                ce: 8
            }
        );
    }

    #[test]
    fn builder_profile() {
        let b = ServerBehavior::accurate()
            .with_ecn_use()
            .with_server_header("LiteSpeed")
            .with_versions(vec![QuicVersion::DRAFT_27]);
        assert!(b.uses_ecn());
        assert!(b.nominally_mirrors());
        assert!(b.supports_version(QuicVersion::DRAFT_27));
        assert!(!b.supports_version(QuicVersion::V1));
        assert_eq!(b.server_header.as_deref(), Some("LiteSpeed"));
    }

    #[test]
    fn no_mirroring_profile() {
        let b = ServerBehavior::no_mirroring();
        assert!(!b.nominally_mirrors());
        assert!(!b.uses_ecn());
        assert!(b.serves_http);
    }
}
