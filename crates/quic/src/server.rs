//! A simulated QUIC/HTTP-3 server whose ECN behaviour follows a
//! [`ServerBehavior`] profile.
//!
//! The server is deliberately forgiving: it answers retransmitted
//! ClientHellos and requests by re-sending its own handshake and response, so
//! a lossy forward path converges as long as the client keeps probing — the
//! same property real deployments have thanks to their loss recovery.

use crate::behavior::ServerBehavior;
use crate::client::Transmit;
use crate::handshake::HandshakeMessage;
use crate::http::{HttpRequest, HttpResponse};
use crate::spaces::{PacketSpace, SentPacket, SpaceId};
use crate::CID_LEN;
use qem_netsim::SimInstant;
use qem_packet::ecn::EcnCodepoint;
use qem_packet::quic::{
    ConnectionId, Frame, LongPacketType, PacketHeader, QuicPacket, QuicVersion,
};

/// A sans-IO QUIC server connection (one per client).
#[derive(Debug, Clone)]
pub struct ServerConnection {
    behavior: ServerBehavior,
    local_cid: ConnectionId,
    remote_cid: ConnectionId,
    version: QuicVersion,
    spaces: [PacketSpace; 3],
    outbox: Vec<Transmit>,
    hello_received: bool,
    client_finished: bool,
    request: Option<HttpRequest>,
    request_buf: Vec<u8>,
    response_sent: bool,
    handshake_done_sent: bool,
    closed: bool,
}

impl ServerConnection {
    /// Create a server endpoint with the given behaviour profile.
    pub fn new(behavior: ServerBehavior, cid_seed: u64) -> Self {
        ServerConnection {
            behavior,
            local_cid: ConnectionId::from_u64(cid_seed ^ 0xdead_beef_0000_0000),
            remote_cid: ConnectionId::default(),
            version: QuicVersion::V1,
            spaces: Default::default(),
            outbox: Vec::new(),
            hello_received: false,
            client_finished: false,
            request: None,
            request_buf: Vec::new(),
            response_sent: false,
            handshake_done_sent: false,
            closed: false,
        }
    }

    /// The behaviour profile in use.
    pub fn behavior(&self) -> &ServerBehavior {
        &self.behavior
    }

    /// Whether the server saw the client finish the handshake.
    pub fn handshake_complete(&self) -> bool {
        self.client_finished
    }

    /// Whether the connection is closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// ECN counters the server actually observed in a given space (ground
    /// truth, before the behaviour profile distorts the report).
    pub fn observed_ecn(&self, space: SpaceId) -> qem_packet::ecn::EcnCounts {
        self.spaces[space.index()].ecn_received()
    }

    /// Feed an incoming UDP payload.
    pub fn handle_datagram(&mut self, now: SimInstant, ecn: EcnCodepoint, payload: &[u8]) {
        if self.closed {
            return;
        }
        let mut at = 0usize;
        while at < payload.len() {
            match QuicPacket::decode(&payload[at..], CID_LEN) {
                Ok((packet, consumed)) => {
                    at += consumed;
                    self.handle_packet(now, ecn, packet);
                }
                Err(_) => break,
            }
        }
        self.flush_acks();
    }

    /// Next datagram to send, if any.
    pub fn poll_transmit(&mut self, _now: SimInstant) -> Option<Transmit> {
        if self.outbox.is_empty() {
            None
        } else {
            Some(self.outbox.remove(0))
        }
    }

    /// Servers in this reproduction are purely reactive; they never arm timers.
    pub fn poll_timeout(&self) -> Option<SimInstant> {
        None
    }

    /// Present for interface symmetry with the client; a no-op.
    pub fn handle_timeout(&mut self, _now: SimInstant) {}

    // ------------------------------------------------------------------

    fn handle_packet(&mut self, now: SimInstant, ecn: EcnCodepoint, packet: QuicPacket) {
        match &packet.header {
            PacketHeader::Long {
                ty,
                version,
                scid,
                dcid: _,
                packet_number,
                ..
            } => {
                if *ty == LongPacketType::Initial && !self.behavior.supports_version(*version) {
                    // Version negotiation; echo the client's connection IDs.
                    let vn = QuicPacket::new(
                        PacketHeader::VersionNegotiation {
                            dcid: scid.clone(),
                            scid: self.local_cid.clone(),
                            supported: self.behavior.supported_versions.clone(),
                        },
                        Vec::new(),
                    );
                    self.outbox.push(Transmit {
                        payload: vn.encode(),
                        ecn: EcnCodepoint::NotEct,
                    });
                    return;
                }
                if *ty == LongPacketType::Initial {
                    self.version = *version;
                    self.remote_cid = scid.clone();
                }
                let Some(space_id) = SpaceId::for_long_type(*ty) else {
                    return;
                };
                self.receive_in_space(now, space_id, *packet_number, ecn, &packet.payload);
            }
            PacketHeader::Short { packet_number, .. } => {
                self.receive_in_space(
                    now,
                    SpaceId::Application,
                    *packet_number,
                    ecn,
                    &packet.payload,
                );
            }
            PacketHeader::VersionNegotiation { .. } => {}
        }
    }

    fn receive_in_space(
        &mut self,
        now: SimInstant,
        space_id: SpaceId,
        pn: u64,
        ecn: EcnCodepoint,
        payload: &[u8],
    ) {
        let Ok(frames) = Frame::decode_all(payload) else {
            return;
        };
        let ack_eliciting = frames.iter().any(Frame::is_ack_eliciting);
        let is_new = self.spaces[space_id.index()].on_packet_received(pn, ecn, ack_eliciting);
        let mut saw_client_hello = false;
        let mut saw_request = false;
        if is_new {
            for frame in frames {
                match frame {
                    Frame::Crypto { data, .. } => {
                        if let Ok(message) = HandshakeMessage::decode(&data) {
                            match message {
                                HandshakeMessage::ClientHello { .. } => {
                                    saw_client_hello = true;
                                }
                                HandshakeMessage::Finished => {
                                    if space_id == SpaceId::Handshake {
                                        self.client_finished = true;
                                    }
                                }
                                HandshakeMessage::ServerHello { .. } => {}
                            }
                        }
                    }
                    Frame::Stream { data, fin, .. } => {
                        self.request_buf.extend_from_slice(&data);
                        if fin {
                            self.request = HttpRequest::decode(&self.request_buf);
                            saw_request = true;
                        }
                    }
                    Frame::Ack(ack) => {
                        let _ = self.spaces[space_id.index()].on_ack_received(&ack);
                    }
                    Frame::ConnectionClose { .. } => {
                        self.closed = true;
                    }
                    Frame::Ping | Frame::Padding { .. } | Frame::HandshakeDone => {}
                }
            }
        } else {
            // A retransmitted ClientHello or request: re-send our answer.
            saw_client_hello = space_id == SpaceId::Initial && self.hello_received;
            saw_request = space_id == SpaceId::Application && self.request.is_some();
        }

        if saw_client_hello {
            self.hello_received = true;
            self.send_server_hello(now);
        }
        if self.client_finished && !self.handshake_done_sent {
            self.send_packet(SpaceId::Application, vec![Frame::HandshakeDone], now);
            self.handshake_done_sent = true;
        }
        if saw_request && self.request.is_some() {
            self.send_response(now);
        }
    }

    fn send_server_hello(&mut self, now: SimInstant) {
        let hello = HandshakeMessage::ServerHello {
            transport_params: self.behavior.transport_params,
            alpn: "h3".to_string(),
        };
        self.send_packet(
            SpaceId::Initial,
            vec![Frame::Crypto {
                offset: 0,
                data: hello.encode(),
            }],
            now,
        );
        self.send_packet(
            SpaceId::Handshake,
            vec![Frame::Crypto {
                offset: 0,
                data: HandshakeMessage::Finished.encode(),
            }],
            now,
        );
    }

    fn send_response(&mut self, now: SimInstant) {
        if self.response_sent || !self.behavior.serves_http {
            if !self.behavior.serves_http && !self.response_sent {
                self.send_packet(
                    SpaceId::Application,
                    vec![Frame::ConnectionClose {
                        error_code: 0x0100, // H3_GENERAL_PROTOCOL_ERROR-ish
                        reason: "not serving".to_string(),
                    }],
                    now,
                );
                self.response_sent = true;
            }
            return;
        }
        let mut response = HttpResponse::ok();
        if let Some(server) = &self.behavior.server_header {
            response = response.with_server(server);
        }
        if let Some(via) = &self.behavior.via_header {
            response = response.with_via(via);
        }
        self.send_packet(
            SpaceId::Application,
            vec![Frame::Stream {
                stream_id: 0,
                offset: 0,
                fin: true,
                data: response.encode(),
            }],
            now,
        );
        self.response_sent = true;
    }

    /// Send ACKs for any space with pending acknowledgments, applying the
    /// behaviour profile to the reported ECN counters.
    fn flush_acks(&mut self) {
        for space_id in SpaceId::ALL {
            if self.spaces[space_id.index()].ack_pending() {
                let observed = self.spaces[space_id.index()].ecn_received();
                let reported = self
                    .behavior
                    .mirroring
                    .report(observed, space_id == SpaceId::Application);
                // Plain ACK (no ECN section) when the profile reports nothing
                // or has never seen a mark.
                let ecn = reported.filter(|c| c.total() > 0 || observed.total() > 0);
                if let Some(ack) = self.spaces[space_id.index()].build_ack(ecn) {
                    self.send_packet_now(space_id, vec![Frame::Ack(ack)]);
                }
            }
        }
    }

    fn send_packet(&mut self, space_id: SpaceId, frames: Vec<Frame>, now: SimInstant) {
        let _ = now;
        self.send_packet_now(space_id, frames);
    }

    fn send_packet_now(&mut self, space_id: SpaceId, frames: Vec<Frame>) {
        let pn = self.spaces[space_id.index()].next_pn();
        let payload = Frame::encode_all(&frames);
        let header = match space_id {
            SpaceId::Initial => PacketHeader::Long {
                ty: LongPacketType::Initial,
                version: self.version,
                dcid: self.remote_cid.clone(),
                scid: self.local_cid.clone(),
                token: Vec::new(),
                packet_number: pn,
            },
            SpaceId::Handshake => PacketHeader::Long {
                ty: LongPacketType::Handshake,
                version: self.version,
                dcid: self.remote_cid.clone(),
                scid: self.local_cid.clone(),
                token: Vec::new(),
                packet_number: pn,
            },
            SpaceId::Application => PacketHeader::Short {
                dcid: self.remote_cid.clone(),
                packet_number: pn,
            },
        };
        let ack_eliciting = frames.iter().any(Frame::is_ack_eliciting);
        let packet = QuicPacket::new(header, payload);
        self.outbox.push(Transmit {
            payload: packet.encode(),
            ecn: self.behavior.egress_ecn,
        });
        self.spaces[space_id.index()].on_packet_sent(SentPacket {
            packet_number: pn,
            frames,
            ecn: self.behavior.egress_ecn,
            ack_eliciting,
            time_sent: SimInstant::EPOCH,
            retransmissions: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::EcnMirroringBehavior;
    use crate::transport_params::TransportParameters;

    fn client_initial(version: QuicVersion) -> Vec<u8> {
        let hello = HandshakeMessage::ClientHello {
            sni: "example.org".to_string(),
            alpn: "h3".to_string(),
            transport_params: TransportParameters::client_default(),
        };
        QuicPacket::new(
            PacketHeader::Long {
                ty: LongPacketType::Initial,
                version,
                dcid: ConnectionId::from_u64(99),
                scid: ConnectionId::from_u64(7),
                token: Vec::new(),
                packet_number: 0,
            },
            Frame::encode_all(&[Frame::Crypto {
                offset: 0,
                data: hello.encode(),
            }]),
        )
        .encode()
    }

    #[test]
    fn responds_to_client_hello_with_hello_finished_and_ack() {
        let mut server = ServerConnection::new(ServerBehavior::accurate(), 1);
        server.handle_datagram(
            SimInstant::EPOCH,
            EcnCodepoint::Ect0,
            &client_initial(QuicVersion::V1),
        );
        let mut kinds = Vec::new();
        while let Some(t) = server.poll_transmit(SimInstant::EPOCH) {
            let (pkt, _) = QuicPacket::decode(&t.payload, CID_LEN).unwrap();
            kinds.push(match pkt.header {
                PacketHeader::Long { ty, .. } => format!("{ty:?}"),
                PacketHeader::Short { .. } => "Short".to_string(),
                PacketHeader::VersionNegotiation { .. } => "VN".to_string(),
            });
        }
        assert!(kinds.contains(&"Initial".to_string()));
        assert!(kinds.contains(&"Handshake".to_string()));
        assert_eq!(server.observed_ecn(SpaceId::Initial).ect0, 1);
    }

    #[test]
    fn unsupported_version_triggers_version_negotiation() {
        let behavior = ServerBehavior::accurate().with_versions(vec![QuicVersion::DRAFT_27]);
        let mut server = ServerConnection::new(behavior, 1);
        server.handle_datagram(
            SimInstant::EPOCH,
            EcnCodepoint::NotEct,
            &client_initial(QuicVersion::V1),
        );
        let t = server.poll_transmit(SimInstant::EPOCH).unwrap();
        let (pkt, _) = QuicPacket::decode(&t.payload, CID_LEN).unwrap();
        match pkt.header {
            PacketHeader::VersionNegotiation { supported, .. } => {
                assert_eq!(supported, vec![QuicVersion::DRAFT_27]);
            }
            other => panic!("expected version negotiation, got {other:?}"),
        }
        assert!(server.poll_transmit(SimInstant::EPOCH).is_none());
    }

    #[test]
    fn ack_carries_ecn_counts_according_to_behavior() {
        let mut server = ServerConnection::new(
            ServerBehavior::accurate().with_mirroring(EcnMirroringBehavior::None),
            1,
        );
        server.handle_datagram(
            SimInstant::EPOCH,
            EcnCodepoint::Ect0,
            &client_initial(QuicVersion::V1),
        );
        let mut saw_ack_without_ecn = false;
        while let Some(t) = server.poll_transmit(SimInstant::EPOCH) {
            let (pkt, _) = QuicPacket::decode(&t.payload, CID_LEN).unwrap();
            for frame in Frame::decode_all(&pkt.payload).unwrap() {
                if let Frame::Ack(ack) = frame {
                    assert!(ack.ecn.is_none());
                    saw_ack_without_ecn = true;
                }
            }
        }
        assert!(saw_ack_without_ecn);
    }

    #[test]
    fn egress_ecn_follows_behavior() {
        let mut server = ServerConnection::new(ServerBehavior::accurate().with_ecn_use(), 1);
        server.handle_datagram(
            SimInstant::EPOCH,
            EcnCodepoint::NotEct,
            &client_initial(QuicVersion::V1),
        );
        let t = server.poll_transmit(SimInstant::EPOCH).unwrap();
        assert_eq!(t.ecn, EcnCodepoint::Ect0);
    }

    #[test]
    fn duplicate_client_hello_resends_server_hello() {
        let mut server = ServerConnection::new(ServerBehavior::accurate(), 1);
        let initial = client_initial(QuicVersion::V1);
        server.handle_datagram(SimInstant::EPOCH, EcnCodepoint::Ect0, &initial);
        while server.poll_transmit(SimInstant::EPOCH).is_some() {}
        // Same packet again (e.g. the client's PTO retransmission).
        server.handle_datagram(SimInstant::EPOCH, EcnCodepoint::Ect0, &initial);
        let mut resent_crypto = false;
        while let Some(t) = server.poll_transmit(SimInstant::EPOCH) {
            let (pkt, _) = QuicPacket::decode(&t.payload, CID_LEN).unwrap();
            for frame in Frame::decode_all(&pkt.payload).unwrap() {
                if matches!(frame, Frame::Crypto { .. }) {
                    resent_crypto = true;
                }
            }
        }
        assert!(resent_crypto);
    }
}
