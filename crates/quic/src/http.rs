//! A minimal HTTP/3-like request/response layer.
//!
//! The scanner only needs three things from the application layer: to issue a
//! `GET` for the probed domain, to read the `server` header (Figure 3 groups
//! mirroring domains by web server software) and the `via` header (which is
//! how the paper spots the Google reverse proxy in front of wix.com), and to
//! know that a response arrived at all.  QPACK and the HTTP/3 binary framing
//! are replaced by a plain-text header block on stream 0; the substitution is
//! documented in DESIGN.md.

use serde::{Deserialize, Serialize};

/// An HTTP request sent over stream 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// The `:authority` pseudo-header (the probed domain).
    pub authority: String,
    /// The request path (always `/` for the scanner).
    pub path: String,
    /// The user-agent string; the paper embeds the research project name in
    /// every request for the opt-out process described in its ethics section.
    pub user_agent: String,
}

impl HttpRequest {
    /// A scanner request for `authority`.
    pub fn get(authority: &str) -> Self {
        HttpRequest {
            authority: authority.to_string(),
            path: "/".to_string(),
            user_agent: "quic-ecn-measurements (research scan; see project page)".to_string(),
        }
    }

    /// Serialise to stream bytes.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "GET {} HTTP/3\r\nhost: {}\r\nuser-agent: {}\r\n\r\n",
            self.path, self.authority, self.user_agent
        )
        .into_bytes()
    }

    /// Parse from stream bytes; returns `None` for malformed requests.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.lines();
        let request_line = lines.next()?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next()?;
        if method != "GET" {
            return None;
        }
        let path = parts.next()?.to_string();
        let mut authority = String::new();
        let mut user_agent = String::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "host" => authority = value.trim().to_string(),
                    "user-agent" => user_agent = value.trim().to_string(),
                    _ => {}
                }
            }
        }
        Some(HttpRequest {
            authority,
            path,
            user_agent,
        })
    }
}

/// An HTTP response sent over stream 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// The `server` header, if the server sets one.
    pub server: Option<String>,
    /// The `via` header, if set (e.g. `1.1 google` for proxied wix.com sites).
    pub via: Option<String>,
    /// The `alt-svc` header, if set (ignored by the scanner per §4.1 but kept
    /// for completeness).
    pub alt_svc: Option<String>,
    /// Number of body bytes (the body itself is synthetic padding).
    pub body_len: usize,
}

impl HttpResponse {
    /// A plain 200 response without identifying headers.
    pub fn ok() -> Self {
        HttpResponse {
            status: 200,
            server: None,
            via: None,
            alt_svc: None,
            body_len: 1024,
        }
    }

    /// Set the `server` header.
    pub fn with_server(mut self, server: &str) -> Self {
        self.server = Some(server.to_string());
        self
    }

    /// Set the `via` header.
    pub fn with_via(mut self, via: &str) -> Self {
        self.via = Some(via.to_string());
        self
    }

    /// Serialise to stream bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut text = format!("HTTP/3 {}\r\n", self.status);
        if let Some(server) = &self.server {
            text.push_str(&format!("server: {server}\r\n"));
        }
        if let Some(via) = &self.via {
            text.push_str(&format!("via: {via}\r\n"));
        }
        if let Some(alt_svc) = &self.alt_svc {
            text.push_str(&format!("alt-svc: {alt_svc}\r\n"));
        }
        text.push_str(&format!("content-length: {}\r\n\r\n", self.body_len));
        let mut bytes = text.into_bytes();
        bytes.extend(std::iter::repeat(b'x').take(self.body_len));
        bytes
    }

    /// Parse from stream bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let text = String::from_utf8_lossy(bytes);
        let mut lines = text.lines();
        let status_line = lines.next()?;
        let status = status_line.split_whitespace().nth(1)?.parse().ok()?;
        let mut response = HttpResponse {
            status,
            server: None,
            via: None,
            alt_svc: None,
            body_len: 0,
        };
        for line in lines {
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim().to_string();
                match name.trim().to_ascii_lowercase().as_str() {
                    "server" => response.server = Some(value),
                    "via" => response.via = Some(value),
                    "alt-svc" => response.alt_svc = Some(value),
                    "content-length" => response.body_len = value.parse().unwrap_or(0),
                    _ => {}
                }
            }
        }
        Some(response)
    }

    /// The server-software family, with version suffixes after `/` removed —
    /// the normalisation Figure 3 applies to the `server` header.
    pub fn server_family(&self) -> Option<String> {
        self.server
            .as_ref()
            .map(|s| s.split('/').next().unwrap_or(s).trim().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = HttpRequest::get("www.example.com");
        let decoded = HttpRequest::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn non_get_rejected() {
        assert!(HttpRequest::decode(b"POST / HTTP/3\r\n\r\n").is_none());
    }

    #[test]
    fn response_round_trip_with_headers() {
        let resp = HttpResponse::ok()
            .with_server("LiteSpeed/6.1")
            .with_via("1.1 google");
        let decoded = HttpResponse::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.status, 200);
        assert_eq!(decoded.server.as_deref(), Some("LiteSpeed/6.1"));
        assert_eq!(decoded.via.as_deref(), Some("1.1 google"));
        assert_eq!(decoded.body_len, 1024);
    }

    #[test]
    fn server_family_strips_version() {
        let resp = HttpResponse::ok().with_server("LiteSpeed/6.1.2");
        assert_eq!(resp.server_family().as_deref(), Some("LiteSpeed"));
        let resp = HttpResponse::ok();
        assert_eq!(resp.server_family(), None);
    }

    #[test]
    fn response_without_server_header() {
        let resp = HttpResponse::ok();
        let decoded = HttpResponse::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.server, None);
        assert_eq!(decoded.status, 200);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(HttpResponse::decode(&[0xff, 0xfe, 0x00]).is_none());
        assert!(HttpRequest::decode(&[0xff, 0xfe, 0x00]).is_none());
    }
}
