//! Application-data sourcing for QUIC flows: the sans-IO hooks workload
//! scenarios use to put *real traffic* — not just handshake probes — on the
//! wire.
//!
//! The measurement endpoints ([`ClientConnection`](crate::client) /
//! [`ServerConnection`](crate::server)) implement exactly the probe exchange
//! the paper's scanner needs; application workloads (bulk transfers, RTC
//! frame streaming) instead need a steady supply of 1-RTT packets carrying
//! STREAM data.  This module provides the two halves:
//!
//! * [`AppDataSource`] — a pull interface handing out [`AppChunk`]s of
//!   stream data ([`BulkObject`] for a fixed-size HTTP-style object,
//!   [`FrameSource`] for periodic RTC frames);
//! * [`StreamPacketizer`] — turns chunks into encoded short-header QUIC
//!   packets (one STREAM frame per packet, monotonically increasing packet
//!   numbers), and parses them back on the receiving side.
//!
//! Everything here is sans-IO and deterministic: no clocks, no sockets, no
//! randomness.  The discrete-event engine owns time; `qem-workload` owns the
//! send/receive scheduling and congestion response.

use qem_packet::quic::{ConnectionId, Frame, PacketHeader, QuicPacket};

/// A chunk of application stream data scheduled for transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppChunk {
    /// Offset of the chunk in the application stream.
    pub offset: u64,
    /// Number of payload bytes in the chunk.
    pub len: usize,
    /// Whether this chunk ends the stream.
    pub fin: bool,
}

/// A source of application data, pulled chunk by chunk by a sending flow.
///
/// Implementations are pure state machines: `next_chunk` either hands out
/// the next at-most-`max_len`-byte chunk or reports the source exhausted.
pub trait AppDataSource {
    /// The next chunk of at most `max_len` bytes, or `None` when the source
    /// has no more data to offer.
    fn next_chunk(&mut self, max_len: usize) -> Option<AppChunk>;

    /// Total number of bytes the source will ever produce, when known.
    fn total_len(&self) -> Option<u64>;
}

/// A fixed-size object transferred once: the bulk-goodput workload's data
/// source (think "HTTP response body of `size` bytes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkObject {
    size: u64,
    next: u64,
}

impl BulkObject {
    /// An object of `size` bytes, none of it handed out yet.
    pub fn new(size: u64) -> Self {
        BulkObject { size, next: 0 }
    }

    /// Bytes handed out so far.
    pub fn offered(&self) -> u64 {
        self.next
    }
}

impl AppDataSource for BulkObject {
    fn next_chunk(&mut self, max_len: usize) -> Option<AppChunk> {
        if self.next >= self.size || max_len == 0 {
            return None;
        }
        let len = (self.size - self.next).min(max_len as u64) as usize;
        let chunk = AppChunk {
            offset: self.next,
            len,
            fin: self.next + len as u64 >= self.size,
        };
        self.next += len as u64;
        Some(chunk)
    }

    fn total_len(&self) -> Option<u64> {
        Some(self.size)
    }
}

/// A periodic frame generator: the RTC workload's data source.  Each call to
/// [`FrameSource::next_frame`] emits the chunks of one video-style frame at
/// consecutive stream offsets; the *caller* decides when frames are due
/// (every `frame_interval` on the virtual timeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSource {
    frame_bytes: u64,
    offset: u64,
    frames_emitted: u64,
}

impl FrameSource {
    /// A source emitting `frame_bytes`-byte frames.
    pub fn new(frame_bytes: u64) -> Self {
        FrameSource {
            frame_bytes: frame_bytes.max(1),
            offset: 0,
            frames_emitted: 0,
        }
    }

    /// The chunks of the next frame, each at most `max_len` bytes.
    pub fn next_frame(&mut self, max_len: usize) -> Vec<AppChunk> {
        let max_len = max_len.max(1);
        let mut chunks = Vec::new();
        let mut remaining = self.frame_bytes;
        while remaining > 0 {
            let len = remaining.min(max_len as u64) as usize;
            chunks.push(AppChunk {
                offset: self.offset,
                len,
                fin: false,
            });
            self.offset += len as u64;
            remaining -= len as u64;
        }
        self.frames_emitted += 1;
        chunks
    }

    /// Frames emitted so far.
    pub fn frames_emitted(&self) -> u64 {
        self.frames_emitted
    }
}

/// Builds (and parses) the 1-RTT short-header packets that carry application
/// stream data, with monotonically increasing packet numbers — the wire
/// format workload flows put through the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPacketizer {
    dcid: ConnectionId,
    stream_id: u64,
    next_pn: u64,
}

impl StreamPacketizer {
    /// A packetizer for `stream_id`, addressing packets to the connection ID
    /// derived from `cid_seed`.
    pub fn new(cid_seed: u64, stream_id: u64) -> Self {
        StreamPacketizer {
            dcid: ConnectionId::from_u64(cid_seed),
            stream_id,
            next_pn: 0,
        }
    }

    /// Encode `chunk` as a short-header packet carrying one STREAM frame.
    /// The stream payload is zero bytes of the chunk's length — workloads
    /// measure delivery, not content.
    pub fn packetize(&mut self, chunk: &AppChunk) -> Vec<u8> {
        let frame = Frame::Stream {
            stream_id: self.stream_id,
            offset: chunk.offset,
            fin: chunk.fin,
            data: vec![0u8; chunk.len],
        };
        let header = PacketHeader::Short {
            dcid: self.dcid.clone(),
            packet_number: self.next_pn,
        };
        self.next_pn += 1;
        QuicPacket::new(header, Frame::encode_all(&[frame])).encode()
    }

    /// Packets built so far (also the next packet number).
    pub fn packets_built(&self) -> u64 {
        self.next_pn
    }

    /// Parse a packet built by [`StreamPacketizer::packetize`] back into its
    /// chunk, for the receiving side of a workload flow.  Returns `None` for
    /// anything that is not a short-header packet with one STREAM frame.
    pub fn parse(payload: &[u8], cid_len: usize) -> Option<AppChunk> {
        let (packet, _) = QuicPacket::decode(payload, cid_len).ok()?;
        if !matches!(packet.header, PacketHeader::Short { .. }) {
            return None;
        }
        let frames = Frame::decode_all(&packet.payload).ok()?;
        frames.iter().find_map(|frame| match frame {
            Frame::Stream {
                offset, fin, data, ..
            } => Some(AppChunk {
                offset: *offset,
                len: data.len(),
                fin: *fin,
            }),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CID_LEN;

    #[test]
    fn bulk_object_chunks_cover_the_object_exactly_once() {
        let mut object = BulkObject::new(2_500);
        let mut chunks = Vec::new();
        while let Some(chunk) = object.next_chunk(1_200) {
            chunks.push(chunk);
        }
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].offset, 0);
        assert_eq!(chunks[1].offset, 1_200);
        assert_eq!(chunks[2].len, 100);
        assert!(chunks[2].fin && !chunks[0].fin);
        assert_eq!(object.total_len(), Some(2_500));
        assert_eq!(object.next_chunk(1_200), None);
    }

    #[test]
    fn frame_source_emits_consecutive_offsets_across_frames() {
        let mut source = FrameSource::new(2_600);
        let first = source.next_frame(1_200);
        let second = source.next_frame(1_200);
        assert_eq!(first.len(), 3);
        assert_eq!(first.last().map(|c| c.len), Some(200));
        assert_eq!(second.first().map(|c| c.offset), Some(2_600));
        assert_eq!(source.frames_emitted(), 2);
    }

    #[test]
    fn packetizer_round_trips_chunks_through_real_short_header_packets() {
        let mut packetizer = StreamPacketizer::new(0xfeed, 4);
        let chunk = AppChunk {
            offset: 7_200,
            len: 1_200,
            fin: true,
        };
        let wire = packetizer.packetize(&chunk);
        assert_eq!(packetizer.packets_built(), 1);
        let parsed = StreamPacketizer::parse(&wire, CID_LEN).expect("valid stream packet");
        assert_eq!(parsed, chunk);
    }
}
