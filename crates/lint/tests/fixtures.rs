//! End-to-end tests for qem-lint over the committed `lint.toml`:
//!
//! 1. fixture files under `tests/fixtures/violations/` seed true positives
//!    for every rule and must fire at the exact expected lines;
//! 2. `tests/fixtures/clean/bait.rs` mentions every denied name inside
//!    strings, raw strings, comments and lookalike identifiers and must
//!    produce zero findings;
//! 3. the real workspace itself must be clean — `check` and `vendor`
//!    both return no findings (the CI gate, run as a test).
//!
//! Fixtures are checked under *virtual* in-zone paths (e.g.
//! `crates/netsim/src/…`) so zone matching applies; their real on-disk
//! home is excluded via `skip` in lint.toml, which test 4 verifies.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the repo root")
        .to_path_buf()
}

fn engine() -> qem_lint::rules::Engine {
    qem_lint::load_engine(&repo_root()).expect("committed lint.toml parses")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lines on which `rule` fired when `fixture_name` is checked as if it
/// lived at `virtual_path`.
fn fired_lines(virtual_path: &str, fixture_name: &str, rule: &str) -> BTreeSet<u32> {
    let findings = engine().check_file(virtual_path, &fixture(fixture_name));
    for f in &findings {
        assert_eq!(f.rule, rule, "unexpected rule fired on {fixture_name}: {f}");
    }
    findings.into_iter().map(|f| f.line).collect()
}

#[test]
fn wall_clock_fixture_fires_on_every_clock_mention() {
    let lines = fired_lines(
        "crates/netsim/src/fixture.rs",
        "violations/wall_clock.rs",
        "no-wall-clock",
    );
    assert_eq!(lines, BTreeSet::from([3, 4, 7, 8, 9]));
}

#[test]
fn obs_crate_is_a_wall_clock_zone_with_exactly_one_allowed_file() {
    // The rule must still fire anywhere in `crates/obs/src` …
    let lines = fired_lines(
        "crates/obs/src/registry.rs",
        "violations/wall_clock.rs",
        "no-wall-clock",
    );
    assert_eq!(lines, BTreeSet::from([3, 4, 7, 8, 9]));
    // … while the sanctioned seam — and only it — is exempt.
    let findings = engine().check_file(
        "crates/obs/src/clock.rs",
        &fixture("violations/wall_clock.rs"),
    );
    assert!(
        findings.is_empty(),
        "clock.rs is the allow-listed wall-clock seam: {findings:?}"
    );
}

#[test]
fn entropy_fixture_fires_on_every_rng_source() {
    let lines = fired_lines(
        "crates/quic/src/fixture.rs",
        "violations/entropy.rs",
        "no-ambient-entropy",
    );
    assert_eq!(lines, BTreeSet::from([4, 9, 10]));
}

#[test]
fn unordered_fixture_fires_once_per_line_per_pattern() {
    let findings = engine().check_file(
        "crates/store/src/fixture.rs",
        &fixture("violations/unordered.rs"),
    );
    let lines: BTreeSet<u32> = findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, BTreeSet::from([3, 4, 7, 8]));
    // Two `HashSet` mentions on line 7 (and two `HashMap` on line 8) are
    // deduplicated into one diagnostic each.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn sans_io_fixture_fires_on_sockets_sleep_and_fs() {
    let lines = fired_lines(
        "crates/netsim/src/fixture.rs",
        "violations/sans_io.rs",
        "sans-io",
    );
    assert_eq!(lines, BTreeSet::from([3, 6, 7, 8]));
}

#[test]
fn panic_fixture_fires_on_every_abort_macro_and_method() {
    let lines = fired_lines(
        "crates/core/src/scanner.rs",
        "violations/panics.rs",
        "panic-policy",
    );
    assert_eq!(lines, BTreeSet::from([4, 5, 7, 10, 11, 12]));
}

#[test]
fn scheduler_files_are_panic_policy_zones() {
    // The timer wheel and its arena joined the engine's hot path; the
    // panic policy must cover them at their exact paths.
    for path in ["crates/netsim/src/wheel.rs", "crates/netsim/src/arena.rs"] {
        let lines = fired_lines(path, "violations/panics.rs", "panic-policy");
        assert_eq!(lines, BTreeSet::from([4, 5, 7, 10, 11, 12]), "{path}");
    }
}

#[test]
fn store_read_path_and_resilience_files_are_panic_policy_zones() {
    // The store read path degrades to typed StoreErrors (or quarantine)
    // instead of aborting a census; the fault and retry machinery joined
    // the scan hot path.  The panic policy must fire in all of them.
    for path in [
        "crates/store/src/wire.rs",
        "crates/store/src/codec.rs",
        "crates/store/src/segment.rs",
        "crates/store/src/store.rs",
        "crates/store/src/longitudinal.rs",
        "crates/core/src/resilience.rs",
        "crates/netsim/src/fault.rs",
    ] {
        let lines = fired_lines(path, "violations/panics.rs", "panic-policy");
        assert_eq!(lines, BTreeSet::from([4, 5, 7, 10, 11, 12]), "{path}");
    }
}

#[test]
fn deprecated_runner_fixture_fires_on_every_wrapper() {
    let lines = fired_lines(
        "crates/workload/src/fixture.rs",
        "violations/deprecated_runners.rs",
        "no-deprecated-runners",
    );
    assert_eq!(lines, BTreeSet::from([4, 5, 6, 7, 11, 12]));
}

#[test]
fn deprecated_runner_definition_sites_are_exempt() {
    // The wrappers' own definitions and re-exports are the sanctioned
    // mentions; everywhere else the rule fires (previous test).
    for path in [
        "crates/quic/src/driver.rs",
        "crates/quic/src/lib.rs",
        "crates/tcp/src/connection.rs",
        "crates/tcp/src/lib.rs",
    ] {
        let findings = engine().check_file(path, &fixture("violations/deprecated_runners.rs"));
        assert!(findings.is_empty(), "{path} is allow-listed: {findings:?}");
    }
}

#[test]
fn workload_crate_is_a_determinism_and_sans_io_zone() {
    // The workload sources joined every purity zone: ambient clocks,
    // entropy, unordered collections and I/O must all fire there.
    let path = "crates/workload/src/fixture.rs";
    assert_eq!(
        fired_lines(path, "violations/wall_clock.rs", "no-wall-clock"),
        BTreeSet::from([3, 4, 7, 8, 9])
    );
    assert_eq!(
        fired_lines(path, "violations/entropy.rs", "no-ambient-entropy"),
        BTreeSet::from([4, 9, 10])
    );
    assert_eq!(
        fired_lines(path, "violations/unordered.rs", "no-unordered-collections"),
        BTreeSet::from([3, 4, 7, 8])
    );
    assert_eq!(
        fired_lines(path, "violations/sans_io.rs", "sans-io"),
        BTreeSet::from([3, 6, 7, 8])
    );
}

#[test]
fn unsafe_fixture_fires_only_without_a_safety_comment() {
    let lines = fired_lines(
        "crates/packet/src/fixture.rs",
        "violations/unsafe_no_safety.rs",
        "unsafe-hygiene",
    );
    // Line 5 has no SAFETY comment; line 10 does and must pass.
    assert_eq!(lines, BTreeSet::from([5]));
}

#[test]
fn bait_fixture_is_clean() {
    let findings = engine().check_file("crates/netsim/src/bait.rs", &fixture("clean/bait.rs"));
    assert!(findings.is_empty(), "false positives on bait: {findings:?}");
}

#[test]
fn fixture_directory_is_skipped_at_its_real_path() {
    assert!(engine().skips("crates/lint/tests/fixtures/violations/panics.rs"));
}

#[test]
fn diagnostics_render_as_file_line_rule_message() {
    let findings = engine().check_file(
        "crates/netsim/src/fixture.rs",
        &fixture("violations/wall_clock.rs"),
    );
    let rendered = findings[0].to_string();
    assert!(
        rendered.starts_with("crates/netsim/src/fixture.rs:3 no-wall-clock "),
        "unexpected diagnostic shape: {rendered}"
    );
}

#[test]
fn real_workspace_passes_check() {
    let root = repo_root();
    let findings = qem_lint::check_workspace(&root, &engine()).expect("walk the workspace");
    assert!(
        findings.is_empty(),
        "workspace lint regressions:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn real_workspace_passes_vendor_audit() {
    let findings = qem_lint::vendor::audit(&repo_root()).expect("read manifests");
    assert!(
        findings.is_empty(),
        "vendoring regressions:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
