//! Fixture: true positives for `no-deprecated-runners`.

pub fn legacy_quic(path: &DuplexPath, rng: &mut StdRng) {
    let _ = run_connection(ClientConfig::paper_default("x"), ServerBehavior::accurate(), path, rng);
    let _ = run_connection_with_telemetry(config, behavior, path, rng);
    let _ = run_connection_under_load(config, behavior, path, &cross, rng);
    let _ = run_connection_under_load_with_telemetry(config, behavior, path, &cross, rng);
}

pub fn legacy_tcp(path: &DuplexPath, rng: &mut StdRng) {
    let _ = run_tcp_connection(TcpClientConfig::ect0(), TcpServerBehavior::full_ecn(), c, s, path, rng);
    let _ = run_tcp_connection_under_load(config, behavior, c, s, path, &cross, rng);
}
