//! Fixture: true positives for `panic-policy`.

pub fn classify(bytes: &[u8]) -> u8 {
    let first = bytes.first().unwrap();
    let second = bytes.get(1).expect("at least two bytes");
    if *first > *second {
        panic!("unsorted probe payload");
    }
    match first {
        0 => unreachable!("zero is filtered upstream"),
        1 => todo!("ECT(1) handling"),
        _ => unimplemented!("unknown codepoint"),
    }
}
