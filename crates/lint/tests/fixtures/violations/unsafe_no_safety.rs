//! Fixture: an `unsafe` block without an adjacent `// SAFETY:` comment
//! trips `unsafe-hygiene`; the commented one below passes.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn read_second(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points at two valid bytes.
    unsafe { *p.add(1) }
}
