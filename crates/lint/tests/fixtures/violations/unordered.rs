//! Fixture: true positives for `no-unordered-collections`.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        if seen.insert(k) {
            *counts.entry(k).or_insert(0) += 1;
        }
    }
    counts.len()
}
