//! Fixture: true positives for `no-wall-clock`.

use std::time::Instant;
use std::time::{SystemTime, UNIX_EPOCH};

pub fn elapsed_secs() -> u64 {
    let started = Instant::now();
    let now = SystemTime::now();
    match now.duration_since(UNIX_EPOCH) {
        Ok(d) => d.as_secs().wrapping_add(started.elapsed().as_secs()),
        Err(_) => 0,
    }
}
