//! Fixture: true positives for `sans-io`.

use std::net::TcpStream;

pub fn leak(host: &str) -> std::io::Result<()> {
    let _conn = TcpStream::connect((host, 443))?;
    std::thread::sleep(std::time::Duration::from_millis(10));
    let _bytes = std::fs::read("/etc/hosts")?;
    Ok(())
}
