//! Fixture: true positives for `no-ambient-entropy`.

pub fn ambient_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn os_seed() -> u64 {
    let mut rng = SmallRng::from_entropy();
    let _fallback = OsRng;
    rng.gen()
}
