//! Fixture: false-positive bait.  Every denied name below appears only in
//! comments, strings, raw strings, byte strings or lookalike identifiers —
//! `qem-lint check` must report nothing for this file.

// Comments may mention HashMap, Instant, thread_rng and std::fs freely.

/* Block comments too: TcpStream::connect, SystemTime::now(), panic!(). */

pub const PLAIN: &str = "HashMap and HashSet live in std::collections";
pub const ESCAPED: &str = "say \"Instant\" and SystemTime and UNIX_EPOCH";
pub const RAW: &str = r#"thread_rng() and OsRng and "quoted" getrandom"#;
pub const NESTED_RAW: &str = r##"raw with "# inside: from_entropy()"##;
pub const BYTES: &[u8] = b"std::fs::read and TcpStream and UdpSocket";
pub const CHARS: (char, char) = ('a', '"');

/// Doc comments mentioning sleep, stdin and UdpSocket are also fine.
pub struct SimInstant(pub u64);

pub fn lookalikes(v: Option<u64>) -> u64 {
    v.unwrap_or(0)
}

pub struct HashMapLike;

// lint: allow(no-unordered-collections) annotation demo: next line is exempt
pub type Index = std::collections::HashMap<u32, u32>;
