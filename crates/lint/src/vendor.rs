//! `qem-lint vendor` — the offline-vendoring audit.
//!
//! The container policy (PR 1, kept ever since): every dependency must
//! resolve inside the repository — `vendor/` stand-ins or workspace path
//! crates — never crates.io or git.  CI used to enforce this with a
//! `cargo metadata | jq` shell step; this module is that audit as tested
//! Rust, plus a manifest-level check the shell never had:
//!
//! 1. **Lockfile audit** — every `[[package]]` in `Cargo.lock` must lack a
//!    `source` key.  Cargo only writes `source` for registry/git packages;
//!    path dependencies have none.  This is exactly what
//!    `cargo metadata … | jq '.packages[] | select(.source != null)'`
//!    reported, without needing cargo or jq at audit time.
//! 2. **Manifest audit** — every dependency entry in every workspace
//!    `Cargo.toml` must be `workspace = true`, a `path = "…"` entry, or a
//!    built-in dev target; bare version requirements (`foo = "1.0"`) and
//!    `git = "…"` entries are violations even before a lockfile exists.
//! 3. **Path existence** — every `path = "…"` in the root
//!    `[workspace.dependencies]` must point at a directory inside the repo
//!    that actually contains a `Cargo.toml`.

use crate::rules::Finding;
use std::path::Path;

/// Run the full vendor audit.  Findings use the same `file:line rule
/// message` shape as `check`.
pub fn audit(repo_root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    audit_lockfile(repo_root, &mut findings)?;
    audit_manifests(repo_root, &mut findings)?;
    findings.sort();
    findings.dedup();
    Ok(findings)
}

const RULE: &str = "offline-vendoring";

fn finding(file: &str, line: usize, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line: line as u32,
        rule: RULE.to_string(),
        message,
    }
}

/// 1. Lockfile audit: no `[[package]]` may carry a `source`.
fn audit_lockfile(repo_root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let path = repo_root.join("Cargo.lock");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => {
            findings.push(finding(
                "Cargo.lock",
                1,
                "missing Cargo.lock — the offline policy needs a committed lockfile".to_string(),
            ));
            return Ok(());
        }
    };
    let mut package = String::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed == "[[package]]" {
            package.clear();
        } else if let Some(name) = toml_str_value(trimmed, "name") {
            package = name;
        } else if let Some(source) = toml_str_value(trimmed, "source") {
            findings.push(finding(
                "Cargo.lock",
                idx + 1,
                format!(
                    "package `{package}` resolves outside the repo: source `{source}` \
                     (registry or git; vendor it under vendor/)"
                ),
            ));
        }
    }
    Ok(())
}

/// 2 + 3. Manifest audit over the root manifest and every member manifest.
fn audit_manifests(repo_root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let root_manifest = repo_root.join("Cargo.toml");
    let root_text = std::fs::read_to_string(&root_manifest)?;
    let members = workspace_members(&root_text);

    let mut manifests = vec![("Cargo.toml".to_string(), root_text)];
    for member in &members {
        let rel = format!("{member}/Cargo.toml");
        match std::fs::read_to_string(repo_root.join(&rel)) {
            Ok(text) => manifests.push((rel, text)),
            Err(_) => findings.push(finding(
                "Cargo.toml",
                1,
                format!("workspace member `{member}` has no Cargo.toml"),
            )),
        }
    }

    for (rel, text) in &manifests {
        audit_manifest(repo_root, rel, text, findings);
    }
    Ok(())
}

/// The `members = […]` array of the root manifest.
fn workspace_members(root_text: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for line in root_text.lines() {
        let trimmed = strip_toml_comment(line).trim().to_string();
        if trimmed.starts_with('[') {
            in_workspace = trimmed == "[workspace]";
            in_members = false;
            continue;
        }
        if in_workspace && trimmed.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in trimmed.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if trimmed.contains(']') {
                in_members = false;
            }
        }
    }
    members
}

/// Sections of a manifest that declare dependencies.
fn is_dependency_section(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header == "workspace.dependencies"
        || header.ends_with(".dependencies")
        || header.ends_with(".dev-dependencies")
        || header.ends_with(".build-dependencies")
}

fn audit_manifest(repo_root: &Path, rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let manifest_dir = Path::new(rel).parent().unwrap_or(Path::new(""));
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            section = header.trim_end_matches(']').trim().to_string();
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let spec = spec.trim();
        // `foo.workspace = true` dotted form.
        if name.ends_with(".workspace") {
            continue;
        }
        if spec.starts_with('"') {
            findings.push(finding(
                rel,
                idx + 1,
                format!(
                    "dependency `{name}` is a bare version requirement — it would resolve \
                     to crates.io; use a vendor/ path or `workspace = true`"
                ),
            ));
            continue;
        }
        if spec.starts_with('{') {
            if spec.contains("git") && toml_inline_value(spec, "git").is_some() {
                findings.push(finding(
                    rel,
                    idx + 1,
                    format!("dependency `{name}` uses a git source — vendor it instead"),
                ));
                continue;
            }
            if spec.contains("workspace") {
                continue;
            }
            match toml_inline_value(spec, "path") {
                Some(path) => {
                    let dir = manifest_dir.join(&path);
                    if !repo_root.join(&dir).join("Cargo.toml").is_file() {
                        findings.push(finding(
                            rel,
                            idx + 1,
                            format!(
                                "dependency `{name}` points at `{}`, which has no Cargo.toml",
                                dir.display()
                            ),
                        ));
                    }
                }
                None => {
                    if spec.contains("version") {
                        findings.push(finding(
                            rel,
                            idx + 1,
                            format!(
                                "dependency `{name}` has a version requirement but no path — \
                                 it would resolve to crates.io"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `key = "value"` on a single line → value.
fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// `{ key = "value", … }` inline table → value for `key`.
fn toml_inline_value(spec: &str, key: &str) -> Option<String> {
    let inner = spec.trim_start_matches('{').trim_end_matches('}');
    for part in inner.split(',') {
        let part = part.trim();
        if let Some(value) = toml_str_value(part, key) {
            return Some(value);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockfile_source_lines_are_findings() {
        let dir = std::env::temp_dir().join(format!("qem-lint-vendor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("Cargo.lock"),
            "[[package]]\nname = \"evil\"\nversion = \"1.0.0\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n",
        )
        .unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
        let findings = audit(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("evil"));
        assert_eq!(findings[0].file, "Cargo.lock");
    }

    #[test]
    fn bare_version_deps_are_findings() {
        let dir = std::env::temp_dir().join(format!("qem-lint-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("Cargo.lock"), "").unwrap();
        std::fs::write(
            dir.join("Cargo.toml"),
            "[workspace]\nmembers = []\n[workspace.dependencies]\nserde = \"1.0\"\n",
        )
        .unwrap();
        let findings = audit(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("serde"));
    }

    #[test]
    fn workspace_and_path_deps_pass() {
        let dir = std::env::temp_dir().join(format!("qem-lint-ok-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("vendor/serde")).unwrap();
        std::fs::write(
            dir.join("vendor/serde/Cargo.toml"),
            "[package]\nname = \"serde\"\n",
        )
        .unwrap();
        std::fs::write(dir.join("Cargo.lock"), "").unwrap();
        std::fs::write(
            dir.join("Cargo.toml"),
            "[workspace]\nmembers = []\n[workspace.dependencies]\nserde = { path = \"vendor/serde\", features = [\"derive\"] }\n[dependencies]\nserde.workspace = true\n",
        )
        .unwrap();
        let findings = audit(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(findings.is_empty(), "{findings:?}");
    }
}
