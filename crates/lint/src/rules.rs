//! The rules engine: applies the configured rules to lexed source files.
//!
//! Three exemption layers, checked in order:
//!
//! 1. **Built-in allow zones** — paths under `tests/`, `benches/`,
//!    `examples/`, `vendor/` and `target/` are never checked by pattern
//!    rules: test scaffolding legitimately unwraps, sleeps and hashes.
//! 2. **In-file test code** — `#[cfg(test)] mod … { … }` bodies are masked
//!    out, so unit tests co-located with hot-path code stay exempt.
//! 3. **Line annotations** — `// lint: allow(<rule>[, <rule>…])` suppresses
//!    the named rules on the comment's line *and* the line after it, so both
//!    trailing and preceding comment styles work.  Every annotation should
//!    carry a justification after the closing parenthesis.

use crate::config::{Config, RuleConfig};
use crate::lexer::{self, Comment, Token, TokenKind};
use std::fmt;
use std::path::Path;

/// One diagnostic: `file:line rule message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Rule id.
    pub rule: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A compiled deny pattern: a contiguous token sequence.
#[derive(Debug, Clone)]
struct Pattern {
    source: String,
    tokens: Vec<TokenKind>,
}

impl Pattern {
    /// Compile `"std :: fs"` → `[Ident(std), Punct(:), Punct(:), Ident(fs)]`.
    /// A whitespace-separated word of identifier characters matches one
    /// identifier exactly; any other word matches its characters as
    /// consecutive punctuation.
    fn compile(source: &str) -> Pattern {
        let mut tokens = Vec::new();
        for word in source.split_whitespace() {
            let is_ident = word.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && word
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_alphabetic() || c == '_')
                    .unwrap_or(false);
            if is_ident {
                tokens.push(TokenKind::Ident(word.to_string()));
            } else {
                for c in word.chars() {
                    tokens.push(TokenKind::Punct(c));
                }
            }
        }
        Pattern {
            source: source.to_string(),
            tokens,
        }
    }

    fn matches_at(&self, tokens: &[Token], at: usize) -> bool {
        if at + self.tokens.len() > tokens.len() {
            return false;
        }
        self.tokens
            .iter()
            .zip(&tokens[at..])
            .all(|(want, got)| *want == got.kind)
    }
}

/// A compiled rule.
struct CompiledRule {
    config: RuleConfig,
    patterns: Vec<Pattern>,
}

/// The engine: compiled rules plus global skip list.
pub struct Engine {
    skip: Vec<String>,
    rules: Vec<CompiledRule>,
}

/// Directory components that make a path test scaffolding (built-in allow
/// zone for pattern rules).
const SCAFFOLD_DIRS: [&str; 3] = ["tests", "benches", "examples"];

/// Paths never linted at all.
const HARD_SKIP: [&str; 3] = ["target", "vendor", ".git"];

impl Engine {
    /// Compile a parsed config.
    pub fn new(config: &Config) -> Engine {
        Engine {
            skip: config.skip.clone(),
            rules: config
                .rules
                .values()
                .map(|rule| CompiledRule {
                    config: rule.clone(),
                    patterns: rule.deny.iter().map(|p| Pattern::compile(p)).collect(),
                })
                .collect(),
        }
    }

    /// True if `path` (repo-relative, `/`-separated) is excluded from all
    /// linting.
    pub fn skips(&self, path: &str) -> bool {
        HARD_SKIP.iter().any(|dir| first_component_is(path, dir))
            || self.skip.iter().any(|z| zone_matches(z, path))
    }

    /// Lint one file's source text.  `path` must be repo-relative with `/`
    /// separators.
    pub fn check_file(&self, path: &str, source: &str) -> Vec<Finding> {
        if self.skips(path) {
            return Vec::new();
        }
        let lexed = lexer::lex(source);
        let scaffold = is_scaffold(path);
        let test_mask = test_code_mask(&lexed.tokens);
        let suppressions = Suppressions::collect(&lexed.comments);
        let mut findings = Vec::new();

        for rule in &self.rules {
            let in_zone = rule.config.zones.iter().any(|z| zone_matches(z, path));
            if !in_zone {
                continue;
            }
            if rule.config.allow.iter().any(|z| zone_matches(z, path)) {
                continue;
            }
            if rule.config.id == "unsafe-hygiene" {
                // Structural: applies to scaffolding too — an unsafe block in
                // a test still needs its SAFETY comment.
                findings.extend(check_unsafe_hygiene(
                    rule,
                    path,
                    &lexed.tokens,
                    &lexed.comments,
                    &suppressions,
                ));
                continue;
            }
            if scaffold {
                continue;
            }
            for (i, token) in lexed.tokens.iter().enumerate() {
                if test_mask[i] {
                    continue;
                }
                for pattern in &rule.patterns {
                    if pattern.matches_at(&lexed.tokens, i)
                        && !suppressions.allows(&rule.config.id, token.line)
                    {
                        findings.push(Finding {
                            file: path.to_string(),
                            line: token.line,
                            rule: rule.config.id.clone(),
                            message: format!(
                                "denied pattern `{}`{}{}",
                                pattern.source,
                                if rule.config.message.is_empty() {
                                    ""
                                } else {
                                    "; "
                                },
                                rule.config.message
                            ),
                        });
                    }
                }
            }
        }
        findings.sort();
        findings.dedup();
        findings
    }

    /// Rule ids and descriptions, for `qem-lint rules`.
    pub fn catalogue(&self) -> Vec<(String, String)> {
        self.rules
            .iter()
            .map(|r| (r.config.id.clone(), r.config.description.clone()))
            .collect()
    }

    /// True if some configured rule's zones cover `path` — used by the
    /// crate-root `#![forbid(unsafe_code)]` audit to know which crates are
    /// in scope.
    pub fn unsafe_hygiene_covers(&self, path: &str) -> bool {
        self.rules
            .iter()
            .filter(|r| r.config.id == "unsafe-hygiene")
            .any(|r| r.config.zones.iter().any(|z| zone_matches(z, path)))
    }
}

/// `unsafe` tokens need an adjacent `// SAFETY:` comment (same line or one
/// of the three lines above).
fn check_unsafe_hygiene(
    rule: &CompiledRule,
    path: &str,
    tokens: &[Token],
    comments: &[Comment],
    suppressions: &Suppressions,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for token in tokens {
        if token.kind != TokenKind::Ident("unsafe".to_string()) {
            continue;
        }
        if suppressions.allows(&rule.config.id, token.line) {
            continue;
        }
        let justified = comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && c.line <= token.line
                && token.line.saturating_sub(c.line) <= 3
        });
        if !justified {
            findings.push(Finding {
                file: path.to_string(),
                line: token.line,
                rule: rule.config.id.clone(),
                message: "`unsafe` without an adjacent `// SAFETY:` justification".to_string(),
            });
        }
    }
    findings
}

/// Check a crate root for `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe(source: &str) -> bool {
    let lexed = lexer::lex(source);
    let want = [
        TokenKind::Punct('#'),
        TokenKind::Punct('!'),
        TokenKind::Punct('['),
        TokenKind::Ident("forbid".to_string()),
        TokenKind::Punct('('),
        TokenKind::Ident("unsafe_code".to_string()),
        TokenKind::Punct(')'),
        TokenKind::Punct(']'),
    ];
    lexed
        .tokens
        .windows(want.len())
        .any(|w| w.iter().zip(&want).all(|(got, wanted)| got.kind == *wanted))
}

/// True if the file holds any `unsafe` token at all.
pub fn has_unsafe_token(source: &str) -> bool {
    lexer::lex(source)
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident("unsafe".to_string()))
}

/// Per-line rule suppressions from `// lint: allow(a, b)` comments.
struct Suppressions {
    /// (rule id, line) pairs; an entry on line L covers L and L+1.
    entries: Vec<(String, u32)>,
}

impl Suppressions {
    fn collect(comments: &[Comment]) -> Suppressions {
        let mut entries = Vec::new();
        for comment in comments {
            let Some(idx) = comment.text.find("lint: allow(") else {
                continue;
            };
            let rest = &comment.text[idx + "lint: allow(".len()..];
            let Some(end) = rest.find(')') else { continue };
            for rule in rest[..end].split(',') {
                entries.push((rule.trim().to_string(), comment.line));
            }
        }
        Suppressions { entries }
    }

    fn allows(&self, rule: &str, line: u32) -> bool {
        self.entries
            .iter()
            .any(|(r, l)| r == rule && (line == *l || line == *l + 1))
    }
}

/// Mask of tokens inside `#[cfg(test)] mod … { … }` bodies.
fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(body_open) = cfg_test_mod_at(tokens, i) {
            // Mask from the attribute through the matching close brace.
            let mut depth = 0i64;
            let mut j = body_open;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let end = j.min(tokens.len().saturating_sub(1));
            for cell in mask.iter_mut().take(end + 1).skip(i) {
                *cell = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If tokens at `i` start `#[cfg(test)] … mod <name> {`, return the index of
/// the opening brace.  Tolerates further attributes between the cfg and the
/// `mod` keyword.
fn cfg_test_mod_at(tokens: &[Token], i: usize) -> Option<usize> {
    let kind = |offset: usize| tokens.get(i + offset).map(|t| &t.kind);
    let attr = [
        TokenKind::Punct('#'),
        TokenKind::Punct('['),
        TokenKind::Ident("cfg".to_string()),
        TokenKind::Punct('('),
        TokenKind::Ident("test".to_string()),
        TokenKind::Punct(')'),
        TokenKind::Punct(']'),
    ];
    for (offset, want) in attr.iter().enumerate() {
        if kind(offset) != Some(want) {
            return None;
        }
    }
    // Skip any further `#[…]` attributes.
    let mut j = i + attr.len();
    while tokens.get(j).map(|t| &t.kind) == Some(&TokenKind::Punct('#'))
        && tokens.get(j + 1).map(|t| &t.kind) == Some(&TokenKind::Punct('['))
    {
        let mut depth = 0i64;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j += 1;
    }
    if tokens.get(j).map(|t| &t.kind) != Some(&TokenKind::Ident("mod".to_string())) {
        return None;
    }
    // mod <name> {  — a `mod name;` declaration has no body to mask.
    let open = j + 2;
    match tokens.get(open).map(|t| &t.kind) {
        Some(TokenKind::Punct('{')) => Some(open),
        _ => None,
    }
}

/// True if the path sits in a built-in scaffold directory.
fn is_scaffold(path: &str) -> bool {
    path.split('/')
        .any(|component| SCAFFOLD_DIRS.contains(&component))
}

fn first_component_is(path: &str, dir: &str) -> bool {
    path.split('/').next() == Some(dir)
}

/// Zone / allow matching: a pattern without glob characters matches the path
/// itself and anything under it (component-boundary prefix); `*` matches
/// within one component, `**` across components.
pub fn zone_matches(pattern: &str, path: &str) -> bool {
    if !pattern.contains('*') {
        return path == pattern
            || path
                .strip_prefix(pattern)
                .map(|rest| rest.starts_with('/'))
                .unwrap_or(false);
    }
    glob_match(
        &pattern.split('/').collect::<Vec<_>>(),
        &path.split('/').collect::<Vec<_>>(),
    )
}

fn glob_match(pattern: &[&str], path: &[&str]) -> bool {
    match (pattern.first(), path.first()) {
        // An exhausted pattern matched a prefix of the path: zones cover
        // everything under them, so that is a match.
        (None, _) => true,
        (Some(&"**"), _) => {
            glob_match(&pattern[1..], path) || (!path.is_empty() && glob_match(pattern, &path[1..]))
        }
        (Some(p), Some(c)) => component_match(p, c) && glob_match(&pattern[1..], &path[1..]),
        _ => false,
    }
}

fn component_match(pattern: &str, component: &str) -> bool {
    // `*`-only wildcard matching within one path component.
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == component;
    }
    let mut rest = component;
    for (i, part) in parts.iter().enumerate() {
        if i == 0 {
            let Some(r) = rest.strip_prefix(part) else {
                return false;
            };
            rest = r;
        } else if i == parts.len() - 1 {
            return part.is_empty() || rest.ends_with(part);
        } else if let Some(found) = rest.find(part) {
            rest = &rest[found + part.len()..];
        } else {
            return false;
        }
    }
    true
}

/// Convenience: lint one file on disk against an engine.
pub fn check_path(engine: &Engine, repo_root: &Path, rel: &str) -> std::io::Result<Vec<Finding>> {
    let source = std::fs::read_to_string(repo_root.join(rel))?;
    Ok(engine.check_file(rel, &source))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn engine(toml: &str) -> Engine {
        Engine::new(&config::parse(toml).expect("config parses"))
    }

    const DETERMINISM: &str = r#"
[rule.no-unordered-collections]
zones = ["crates/demo/src"]
deny = ["HashMap", "HashSet"]
message = "use BTreeMap/BTreeSet"
"#;

    #[test]
    fn fires_on_code_not_on_strings_or_comments() {
        let e = engine(DETERMINISM);
        let source = r#"
// HashMap in a comment
let s = "HashMap in a string";
let m: HashMap<u32, u32> = HashMap::new();
"#;
        let findings = e.check_file("crates/demo/src/lib.rs", source);
        // Two mentions on one line dedup to a single diagnostic.
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
        assert_eq!(findings[0].rule, "no-unordered-collections");
    }

    #[test]
    fn zones_limit_where_rules_fire() {
        let e = engine(DETERMINISM);
        assert!(e
            .check_file("crates/other/src/lib.rs", "let m = HashMap::new();")
            .is_empty());
    }

    #[test]
    fn scaffold_paths_are_exempt() {
        let e = engine(DETERMINISM);
        assert!(e
            .check_file("crates/demo/src/tests/helper.rs", "HashMap::new();")
            .is_empty());
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let e = engine(DETERMINISM);
        let source = r#"
pub fn hot() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u8, u8>::new(); }
}
"#;
        assert!(e.check_file("crates/demo/src/lib.rs", source).is_empty());
    }

    #[test]
    fn annotations_suppress_same_and_next_line() {
        let e = engine(DETERMINISM);
        let trailing =
            "let m = HashMap::new(); // lint: allow(no-unordered-collections) lookup-only";
        assert!(e.check_file("crates/demo/src/lib.rs", trailing).is_empty());
        let preceding =
            "// lint: allow(no-unordered-collections) lookup-only\nlet m = HashMap::new();";
        assert!(e.check_file("crates/demo/src/lib.rs", preceding).is_empty());
        let wrong_rule = "let m = HashMap::new(); // lint: allow(panic-policy)";
        assert_eq!(e.check_file("crates/demo/src/lib.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn multi_token_patterns() {
        let e = engine(
            r#"
[rule.panic-policy]
zones = ["crates/demo/src"]
deny = [". unwrap", "panic !"]
"#,
        );
        let source = "fn f(x: Option<u8>) -> u8 { let y = x.unwrap(); panic!(\"boom\"); }";
        let findings = e.check_file("crates/demo/src/hot.rs", source);
        assert_eq!(findings.len(), 2);
        // `unwrap_or` must not match `. unwrap`.
        let ok = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
        assert!(e.check_file("crates/demo/src/hot.rs", ok).is_empty());
    }

    #[test]
    fn unsafe_hygiene_wants_safety_comments() {
        let e = engine(
            r#"
[rule.unsafe-hygiene]
zones = ["crates"]
"#,
        );
        let bad = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(e.check_file("crates/demo/src/lib.rs", bad).len(), 1);
        let good = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        assert!(e.check_file("crates/demo/src/lib.rs", good).is_empty());
    }

    #[test]
    fn forbid_attribute_detection() {
        assert!(has_forbid_unsafe("#![forbid(unsafe_code)]\npub fn f() {}"));
        assert!(!has_forbid_unsafe(
            "//! #![forbid(unsafe_code)] in a doc\npub fn f() {}"
        ));
        assert!(!has_forbid_unsafe("#![deny(unsafe_code)]"));
    }

    #[test]
    fn zone_glob_matching() {
        assert!(zone_matches(
            "crates/netsim/src",
            "crates/netsim/src/engine.rs"
        ));
        assert!(!zone_matches(
            "crates/netsim/src",
            "crates/netsim/srcx/e.rs"
        ));
        assert!(zone_matches("crates/*/src", "crates/quic/src/lib.rs"));
        assert!(zone_matches("**/fixtures", "crates/lint/tests/fixtures"));
        assert!(zone_matches("crates/**", "crates/a/b/c.rs"));
        assert!(!zone_matches("crates/*/src", "crates/quic/benches/b.rs"));
    }
}
