//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The lexer's one job is to separate *code* from *non-code*: identifiers and
//! punctuation come out as matchable tokens, while string literals (plain,
//! raw, byte and byte-raw), char literals and comments are consumed whole so
//! a rule pattern can never fire on text inside them.  Comments are kept —
//! with their line numbers — because two lint features live in comments:
//! `// SAFETY:` justifications and `// lint: allow(<rule>)` annotations.
//!
//! It is not a full Rust lexer (no float/suffix pedantry, no shebang
//! handling); it is exact about the things that matter for false positives:
//! string escapes, raw-string hash counts, nested block comments, and the
//! lifetime-vs-char-literal ambiguity after `'`.

/// One lexical token of interest to the rules engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `mod`, …).
    Ident(String),
    /// A single punctuation character (`:`, `.`, `!`, `{`, …).
    Punct(char),
    /// A literal (string, raw string, char, number).  Contents are opaque —
    /// rules can never match inside.
    Literal,
}

/// A token plus the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// A comment (line or block) with the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex a whole source file.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                });
            }
            b'"' => {
                consume_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            b'\'' => {
                consume_quote(&mut cur, &mut out, line);
            }
            b'0'..=b'9' => {
                consume_number(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            _ if is_ident_start(b) => {
                // Raw / byte string prefixes must be caught before the
                // identifier path, or `r"…"` would lex as ident + string and
                // `br#"…"#` would leave stray `#` punctuation behind.
                if let Some(consumed) = consume_prefixed_literal(&mut cur) {
                    if consumed {
                        out.tokens.push(Token {
                            kind: TokenKind::Literal,
                            line,
                        });
                        continue;
                    }
                }
                let start = cur.pos;
                while cur.peek().map(is_ident_continue).unwrap_or(false) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(
                        String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    ),
                    line,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct(b as char),
                    line,
                });
            }
        }
    }
    out
}

/// Consume a `"…"` string (opening quote at the cursor), honouring escapes.
fn consume_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Handle `r`, `b`, `br`, `rb` literal prefixes at an ident-start position.
///
/// Returns `Some(true)` if a prefixed literal was consumed, `Some(false)` if
/// the cursor sits on a plain identifier that merely *starts* with those
/// letters, and `None` never (the Option keeps the call site readable).
fn consume_prefixed_literal(cur: &mut Cursor<'_>) -> Option<bool> {
    let b0 = cur.peek()?;
    let b1 = cur.peek_at(1);
    match (b0, b1) {
        // r"…" / r#"…"#
        (b'r', Some(b'"')) | (b'r', Some(b'#')) => {
            if consume_raw_string(cur, 1) {
                return Some(true);
            }
            Some(false)
        }
        // b"…" (byte string) and b'…' (byte char)
        (b'b', Some(b'"')) => {
            cur.bump();
            consume_string(cur);
            Some(true)
        }
        (b'b', Some(b'\'')) => {
            cur.bump();
            consume_char(cur);
            Some(true)
        }
        // br"…" / br#"…"#
        (b'b', Some(b'r')) => {
            if matches!(cur.peek_at(2), Some(b'"') | Some(b'#')) && consume_raw_string(cur, 2) {
                return Some(true);
            }
            Some(false)
        }
        _ => Some(false),
    }
}

/// Consume a raw string whose prefix (`r` or `br`) is `prefix_len` bytes.
/// Returns false (consuming nothing) if the hashes are not followed by a
/// quote — e.g. the identifier `r#type` (a raw identifier).
fn consume_raw_string(cur: &mut Cursor<'_>, prefix_len: usize) -> bool {
    let mut hashes = 0usize;
    while cur.peek_at(prefix_len + hashes) == Some(b'#') {
        hashes += 1;
    }
    if cur.peek_at(prefix_len + hashes) != Some(b'"') {
        return false;
    }
    for _ in 0..prefix_len + hashes + 1 {
        cur.bump();
    }
    // Scan for `"` followed by `hashes` hash marks.
    while let Some(c) = cur.bump() {
        if c == b'"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some(b'#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                return true;
            }
        }
    }
    true // unterminated: consumed to EOF, still "a literal"
}

/// Consume a `'…'` char literal (opening quote consumed by the caller's
/// bump), honouring escapes.
fn consume_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
}

/// Disambiguate `'` between a char literal and a lifetime.
fn consume_quote(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    // `'\n'`, `'\''`, … — always a char literal.
    if cur.peek_at(1) == Some(b'\\') {
        consume_char(cur);
        out.tokens.push(Token {
            kind: TokenKind::Literal,
            line,
        });
        return;
    }
    // `'x'` (ident-ish char followed by a closing quote) is a char literal;
    // `'a` / `'static` (no closing quote right after) is a lifetime.
    if cur
        .peek_at(1)
        .map(|c| is_ident_continue(c) && cur.peek_at(2) != Some(b'\''))
        .unwrap_or(false)
    {
        cur.bump(); // the quote
        while cur.peek().map(is_ident_continue).unwrap_or(false) {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Literal, // a lifetime is never rule material
            line,
        });
        return;
    }
    consume_char(cur);
    out.tokens.push(Token {
        kind: TokenKind::Literal,
        line,
    });
}

/// Consume a numeric literal, conservatively: digits, `_`, alphanumerics
/// (covers `0x1f`, `1u64`, `1e9`) and a `.` only when followed by a digit so
/// ranges like `0..10` keep their dots.
fn consume_number(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        let fractional_dot =
            c == b'.' && cur.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false);
        if c.is_ascii_alphanumeric() || c == b'_' || fractional_dot {
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let x = "HashMap::new()";"#), ["let", "x"]);
        assert_eq!(idents(r##"let x = r#"thread_rng()"#;"##), ["let", "x"]);
        assert_eq!(idents(r#"let x = b"unsafe";"#), ["let", "x"]);
        assert_eq!(idents("let x = \"esc \\\" HashMap\";"), ["let", "x"]);
    }

    #[test]
    fn comments_hide_their_contents_but_are_kept() {
        let lexed = lex("// HashMap here\nlet y = 1; /* SystemTime */");
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, ["let", "y"]);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ HashMap */ let z = 2;"), ["let", "z"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(idents("fn f<'a>(x: &'a str) {}"), ["fn", "f", "x", "str"]);
        assert_eq!(idents("let q = '\\'';"), ["let", "q"]);
        // A char literal containing a quote-adjacent letter.
        assert_eq!(
            idents("let c = 'x'; let d = c;"),
            ["let", "c", "let", "d", "c"]
        );
    }

    #[test]
    fn raw_identifiers_are_not_mistaken_for_raw_strings() {
        // `r#type` lexes as `r`, `#`, `type` — crude, but crucially it does
        // not start a raw string that would swallow the rest of the file.
        assert_eq!(
            idents("let r#type = 1; let x = y;"),
            ["let", "r", "type", "let", "x", "y"]
        );
    }

    #[test]
    fn numbers_do_not_eat_range_dots_or_method_calls() {
        let lexed = lex("for i in 0..10 { x.unwrap(); 0x1f; 1.5e3; }");
        let has_unwrap = lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident("unwrap".to_string()));
        assert!(has_unwrap);
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 3); // two range dots + one method dot
    }

    #[test]
    fn line_numbers_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
