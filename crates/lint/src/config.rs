//! `lint.toml` — the committed rule catalogue.
//!
//! The parser covers the TOML subset the config actually uses — `[section]`
//! headers, `key = "string"`, `key = ["array", "of", "strings"]` (single or
//! multi line) and `#` comments — and rejects everything else loudly.  A
//! hand-rolled parser keeps the linter dependency-free, which matters
//! because qem-lint is the tool that *audits* the dependency policy.
//!
//! Schema:
//!
//! ```toml
//! [lint]
//! skip = ["crates/lint/tests/fixtures"]   # never linted, any rule
//!
//! [rule.<id>]
//! description = "one-line rule catalogue entry"
//! zones = ["crates/netsim/src", "crates/core/src/reports"]
//! deny  = ["Instant", "std :: fs", ". unwrap", "panic !"]
//! allow = ["crates/netsim/src/demo.rs"]   # extra allow zones, glob or prefix
//! message = "what to do instead"
//! ```
//!
//! `deny` patterns are whitespace-separated token sequences: a word of
//! identifier characters matches one identifier exactly; anything else
//! matches its characters as consecutive punctuation.  Rules with an empty
//! `deny` list are *structural* — their logic lives in the binary (today:
//! `unsafe-hygiene`) — but their zones and allow lists still come from here.

use std::collections::BTreeMap;
use std::fmt;

/// One configured rule.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    pub id: String,
    pub description: String,
    /// Paths (prefix or glob, repo-relative) the rule applies to.
    pub zones: Vec<String>,
    /// Token-sequence patterns to deny inside the zones.
    pub deny: Vec<String>,
    /// Extra allow zones on top of the built-ins.
    pub allow: Vec<String>,
    /// Appended to every diagnostic of this rule.
    pub message: String,
}

/// The whole parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Paths never linted by any rule.
    pub skip: Vec<String>,
    /// Rules, in file order (BTreeMap keyed by id for stable output).
    pub rules: BTreeMap<String, RuleConfig>,
}

/// A config-file syntax error with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

enum Section {
    None,
    Lint,
    Rule(String),
}

/// Parse the configuration text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    let mut section = Section::None;

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.strip_suffix(']').ok_or_else(|| ConfigError {
                line: lineno,
                message: "unterminated section header".to_string(),
            })?;
            section = match header {
                "lint" => Section::Lint,
                _ => match header.strip_prefix("rule.") {
                    Some(id) if !id.is_empty() => {
                        let id = id.to_string();
                        config
                            .rules
                            .entry(id.clone())
                            .or_insert_with(|| RuleConfig {
                                id: id.clone(),
                                ..RuleConfig::default()
                            });
                        Section::Rule(id)
                    }
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown section [{header}]"),
                        })
                    }
                },
            };
            continue;
        }

        let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected `key = value`, got `{line}`"),
        })?;
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance.
        while value.starts_with('[') && !brackets_balance(&value) {
            let (_, next) = lines.next().ok_or_else(|| ConfigError {
                line: lineno,
                message: "unterminated array".to_string(),
            })?;
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }

        match &section {
            Section::None => {
                return Err(ConfigError {
                    line: lineno,
                    message: "key outside any section".to_string(),
                })
            }
            Section::Lint => match key {
                "skip" => config.skip = parse_string_array(&value, lineno)?,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown [lint] key `{key}`"),
                    })
                }
            },
            Section::Rule(id) => {
                let rule = config.rules.get_mut(id).expect("section registered");
                match key {
                    "description" => rule.description = parse_string(&value, lineno)?,
                    "zones" => rule.zones = parse_string_array(&value, lineno)?,
                    "deny" => rule.deny = parse_string_array(&value, lineno)?,
                    "allow" => rule.allow = parse_string_array(&value, lineno)?,
                    "message" => rule.message = parse_string(&value, lineno)?,
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown rule key `{key}`"),
                        })
                    }
                }
            }
        }
    }
    Ok(config)
}

/// Strip a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balance(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for c in value.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ConfigError> {
    let value = value.trim();
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected a quoted string, got `{value}`"),
        })?;
    Ok(inner.replace("\\\"", "\""))
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    let value = value.trim();
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected an array, got `{value}`"),
        })?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        if rest.starts_with(',') {
            rest = rest[1..].trim_start();
            continue;
        }
        let stripped = rest.strip_prefix('"').ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected a quoted string in array, near `{rest}`"),
        })?;
        let end = find_string_end(stripped).ok_or_else(|| ConfigError {
            line: lineno,
            message: "unterminated string in array".to_string(),
        })?;
        out.push(stripped[..end].replace("\\\"", "\""));
        rest = stripped[end + 1..].trim_start();
    }
    Ok(out)
}

/// Byte index of the closing quote in a string whose opening quote has been
/// stripped, honouring `\"` escapes.
fn find_string_end(s: &str) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Some(i),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let text = r#"
# catalogue
[lint]
skip = ["crates/lint/tests/fixtures"]

[rule.no-wall-clock]
description = "deny ambient clocks"
zones = [
    "crates/netsim/src",   # the engine
    "crates/quic/src",
]
deny = ["Instant", "SystemTime"]
allow = []
message = "use SimInstant"
"#;
        let config = parse(text).expect("parses");
        assert_eq!(config.skip, ["crates/lint/tests/fixtures"]);
        let rule = &config.rules["no-wall-clock"];
        assert_eq!(rule.zones.len(), 2);
        assert_eq!(rule.deny, ["Instant", "SystemTime"]);
        assert_eq!(rule.message, "use SimInstant");
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let err = parse("[rule.x]\nbogus = \"y\"\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let config = parse("[lint]\nskip = [\"a#b\"]\n").expect("parses");
        assert_eq!(config.skip, ["a#b"]);
    }
}
