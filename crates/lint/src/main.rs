//! CLI for qem-lint.
//!
//! ```text
//! qem-lint check  [--root DIR]   # run the lint.toml rule set, exit 1 on findings
//! qem-lint vendor [--root DIR]   # offline-vendoring audit, exit 1 on findings
//! qem-lint rules  [--root DIR]   # print the rule catalogue
//! ```
//!
//! Diagnostics are `file:line rule message`, one per line on stdout, sorted
//! — CI log output is deterministic like everything else here.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return usage("--root needs a directory"),
                }
            }
            "check" | "vendor" | "rules" if command.is_none() => {
                command = Some(args[i].clone());
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let Some(command) = command else {
        return usage("missing subcommand");
    };

    let root = match root.or_else(qem_lint::find_repo_root) {
        Some(root) => root,
        None => {
            eprintln!("qem-lint: cannot find a repo root holding lint.toml (try --root)");
            return ExitCode::from(2);
        }
    };
    let engine = match qem_lint::load_engine(&root) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("qem-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match command.as_str() {
        "rules" => {
            for (id, description) in engine.catalogue() {
                println!("{id:<28} {description}");
            }
            println!("{:<28} every dependency resolves to vendor/ or a workspace path (run `qem-lint vendor`)", "offline-vendoring");
            ExitCode::SUCCESS
        }
        "check" => report(qem_lint::check_workspace(&root, &engine), "check"),
        "vendor" => report(qem_lint::vendor::audit(&root), "vendor"),
        _ => unreachable!("parsed above"),
    }
}

fn report(findings: std::io::Result<Vec<qem_lint::rules::Finding>>, what: &str) -> ExitCode {
    match findings {
        Ok(findings) if findings.is_empty() => {
            println!("qem-lint {what}: ok");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            eprintln!("qem-lint {what}: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("qem-lint {what}: io error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("qem-lint: {problem}");
    eprintln!("usage: qem-lint <check|vendor|rules> [--root DIR]");
    ExitCode::from(2)
}
