//! qem-lint: the workspace invariant checker.
//!
//! The repo's core claims — bit-identical census output at any worker count,
//! golden-report-pinned engine behaviour, fully offline vendored builds —
//! were enforced only *dynamically* (determinism tests, golden reports, a CI
//! shell audit).  This crate enforces them *statically*: a hand-rolled Rust
//! lexer ([`lexer`]) feeds a rules engine ([`rules`]) driven by the committed
//! `lint.toml` ([`config`]), and a vendoring audit ([`vendor`]) ports the CI
//! metadata shell step into tested Rust.  See `DESIGN.md` § static analysis
//! for the rule catalogue and how to add a rule.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod vendor;

use rules::{Engine, Finding};
use std::path::{Path, PathBuf};

/// Default config file name, looked up at the repo root.
pub const CONFIG_FILE: &str = "lint.toml";

/// Load `lint.toml` from the repo root and compile it.
pub fn load_engine(repo_root: &Path) -> Result<Engine, String> {
    let path = repo_root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let config = config::parse(&text).map_err(|e| e.to_string())?;
    Ok(Engine::new(&config))
}

/// All `.rs` files under the repo root (repo-relative, `/`-separated,
/// sorted), excluding whatever the engine skips outright.
pub fn source_files(repo_root: &Path, engine: &Engine) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![repo_root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = relative(repo_root, &path);
            if engine.skips(&rel) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                files.push(rel);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run every pattern/structural rule over the workspace sources, plus the
/// crate-root `#![forbid(unsafe_code)]` audit.
pub fn check_workspace(repo_root: &Path, engine: &Engine) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in source_files(repo_root, engine)? {
        let source = std::fs::read_to_string(repo_root.join(&rel))?;
        findings.extend(engine.check_file(&rel, &source));
    }
    findings.extend(check_forbid_unsafe(repo_root, engine)?);
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Crate-root audit: a workspace crate whose sources contain no `unsafe`
/// must say so — `#![forbid(unsafe_code)]` in every target root (`lib.rs`,
/// `main.rs`) — so a later `unsafe` is a compile error, not a code review
/// hope.  Crates that *do* contain `unsafe` are covered by the per-block
/// SAFETY-comment rule instead.
pub fn check_forbid_unsafe(repo_root: &Path, engine: &Engine) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for crate_dir in workspace_crate_dirs(repo_root)? {
        let src = crate_dir.join("src");
        let rel_src = relative(repo_root, &src);
        if !engine.unsafe_hygiene_covers(&rel_src) || engine.skips(&rel_src) {
            continue;
        }
        let mut crate_has_unsafe = false;
        let mut stack = vec![src.clone()];
        let mut sources = Vec::new();
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
                    sources.push(path);
                }
            }
        }
        for path in &sources {
            let text = std::fs::read_to_string(path)?;
            if rules::has_unsafe_token(&text) {
                crate_has_unsafe = true;
                break;
            }
        }
        if crate_has_unsafe {
            continue; // per-block SAFETY rule applies instead
        }
        for root in ["lib.rs", "main.rs"] {
            let root_path = src.join(root);
            if !root_path.is_file() {
                continue;
            }
            let text = std::fs::read_to_string(&root_path)?;
            if !rules::has_forbid_unsafe(&text) {
                findings.push(Finding {
                    file: relative(repo_root, &root_path),
                    line: 1,
                    rule: "unsafe-hygiene".to_string(),
                    message: "crate has no unsafe code but its root does not declare \
                              `#![forbid(unsafe_code)]`"
                        .to_string(),
                });
            }
        }
    }
    Ok(findings)
}

/// Directories of workspace member crates (from the root manifest's
/// `members` list) plus the root package itself, excluding `vendor/`.
fn workspace_crate_dirs(repo_root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let manifest = std::fs::read_to_string(repo_root.join("Cargo.toml"))?;
    let mut dirs = Vec::new();
    // The root manifest declares both the workspace and the facade package.
    if manifest.contains("[package]") {
        dirs.push(repo_root.to_path_buf());
    }
    let mut in_members = false;
    for line in manifest.lines() {
        let trimmed = line.split('#').next().unwrap_or("").trim();
        if trimmed.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in trimmed.split('"').skip(1).step_by(2) {
                if !piece.starts_with("vendor/") {
                    dirs.push(repo_root.join(piece));
                }
            }
            if trimmed.contains(']') {
                in_members = false;
            }
        }
    }
    Ok(dirs)
}

/// Locate the repo root from the current directory or `CARGO_MANIFEST_DIR`:
/// the nearest ancestor holding `lint.toml`.
pub fn find_repo_root() -> Option<PathBuf> {
    let start = std::env::current_dir().ok()?;
    let mut dir = Some(start.as_path());
    while let Some(d) = dir {
        if d.join(CONFIG_FILE).is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
