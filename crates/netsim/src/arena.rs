//! A generational slot arena for in-flight scheduler events.
//!
//! The timer wheel ([`crate::wheel`]) stores event payloads out-of-line so
//! that wheel slots hold only small `Copy` bookkeeping records and — more
//! importantly — so that cancellation is O(1): freeing an arena slot bumps
//! its generation, which instantly invalidates every outstanding reference
//! to the old occupant without touching the wheel at all.  Stale wheel
//! entries are then discarded (and counted) lazily when their slot drains.
//!
//! Keys are 64-bit values packing `(generation << 32) | index`, which lets
//! the scheduler hand them out as [`crate::engine::EventId`]s directly.  The
//! arena recycles freed slots through a free list, so a steady-state
//! schedule/fire workload performs no allocation at all.

/// A key into an [`EventArena`]: slot index plus the generation the payload
/// was stored under.  A key is invalidated the moment its slot is freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArenaKey {
    index: u32,
    generation: u32,
}

impl ArenaKey {
    /// Pack the key into one `u64` as `(generation << 32) | index`.
    pub fn encode(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }

    /// Unpack a key previously produced by [`ArenaKey::encode`].
    pub fn decode(raw: u64) -> Self {
        ArenaKey {
            index: (raw & 0xffff_ffff) as u32,
            generation: (raw >> 32) as u32,
        }
    }
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    payload: Option<T>,
}

/// A generational arena: stable 32-bit indices, ABA-safe keys, free-list
/// slot reuse.
#[derive(Debug)]
pub struct EventArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for EventArena<T> {
    fn default() -> Self {
        EventArena::new()
    }
}

impl<T> EventArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (inserted, not yet removed) payloads.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no payload is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Store `payload`, returning the key under which it can be removed.
    ///
    /// Reuses a freed slot when one is available; the slot's generation
    /// (bumped at free time) makes the new key distinct from every key the
    /// slot has handed out before.
    pub fn insert(&mut self, payload: T) -> ArenaKey {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.payload = Some(payload);
            return ArenaKey {
                index,
                generation: slot.generation,
            };
        }
        let index = self.slots.len() as u32;
        self.slots.push(Slot {
            generation: 0,
            payload: Some(payload),
        });
        ArenaKey {
            index,
            generation: 0,
        }
    }

    /// Whether `key` still refers to a live payload.
    pub fn contains(&self, key: ArenaKey) -> bool {
        self.slots
            .get(key.index as usize)
            .map(|slot| slot.generation == key.generation && slot.payload.is_some())
            .unwrap_or(false)
    }

    /// Remove and return the payload under `key`, freeing the slot.
    ///
    /// Returns `None` — and changes nothing — when the key is stale: the
    /// slot was already freed (and possibly reused under a newer
    /// generation).  The freed slot's generation is bumped immediately, so
    /// the same key can never match twice.
    pub fn remove(&mut self, key: ArenaKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation || slot.payload.is_none() {
            return None;
        }
        let payload = slot.payload.take();
        // Wrapping keeps the arena sound after 2^32 reuses of one slot; the
        // key space simply cycles.
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(key.index);
        self.live -= 1;
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut arena = EventArena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.len(), 2);
        assert!(arena.contains(a));
        assert_eq!(arena.remove(a), Some("a"));
        assert!(!arena.contains(a));
        assert_eq!(arena.remove(b), Some("b"));
        assert!(arena.is_empty());
    }

    #[test]
    fn stale_keys_never_match_reused_slots() {
        let mut arena = EventArena::new();
        let first = arena.insert(1u32);
        assert_eq!(arena.remove(first), Some(1));
        // The freed slot is reused under a bumped generation…
        let second = arena.insert(2u32);
        assert_eq!(second.index, first.index);
        assert_ne!(second.generation, first.generation);
        // …so the old key is dead even though the slot is occupied again.
        assert!(!arena.contains(first));
        assert_eq!(arena.remove(first), None);
        assert_eq!(arena.remove(second), Some(2));
    }

    #[test]
    fn keys_roundtrip_through_u64_encoding() {
        let key = ArenaKey {
            index: 0x1234_5678,
            generation: 0x9abc_def0,
        };
        assert_eq!(ArenaKey::decode(key.encode()), key);
    }

    #[test]
    fn double_remove_is_a_noop() {
        let mut arena = EventArena::new();
        let key = arena.insert(7u8);
        assert_eq!(arena.remove(key), Some(7));
        assert_eq!(arena.remove(key), None);
        assert_eq!(arena.len(), 0);
    }
}
