//! A hierarchical slotted timer wheel: the engine's production scheduler.
//!
//! Nearly every event the engine schedules is a near-future timer — pacing
//! ticks, RTOs, queue drains — which is the workload hierarchical wheels
//! were designed for (Varghese & Lauck's hashed hierarchical wheels; the
//! same structure production QUIC pacers use).  Compared to the reference
//! [`EventQueue`](crate::engine::EventQueue) binary heap:
//!
//! * **O(1) insert** — a level is picked from the xor of the fire tick and
//!   the current tick, a pooled node is linked onto that slot's list, one
//!   bitmap OR.  No sift-up, no comparisons.
//! * **O(1) cancel** — payloads live in a generational [`EventArena`];
//!   cancelling frees the arena slot and bumps its generation, instantly
//!   invalidating the wheel's entry without searching for it.  The stale
//!   entry is discarded — and **counted**, never silently dropped — when
//!   its slot drains.
//! * **Amortised O(1) pop with native batching** — advancing means scanning
//!   occupancy bitmaps (`trailing_zeros` on a `u64`), and a bottom-level
//!   slot covers exactly one tick, so draining it yields the whole
//!   same-instant batch at once, sorted by sequence number to keep the
//!   FIFO tie-break bit-identical to the heap's.
//!
//! ## Geometry and storage
//!
//! Ticks are the engine's native microseconds (`SimInstant::as_micros`).
//! The bottom level has 4096 one-tick slots — a 4.096 ms window sized so
//! the engine's common timers (pacing intervals, queue drains, sub-ms
//! re-arms) insert directly into their firing slot and never cascade.
//! Above it, nine levels of 64 slots cover `12 + 9 × 6 = 66 ≥ 64` bits,
//! i.e. the whole `u64` tick space — there is no separate overflow list; a
//! timer 10 years out simply lands in a high level and cascades down as
//! the clock approaches.  Cascading re-inserts a slot's entries after
//! advancing the clock to the slot's base tick, so every entry moves to a
//! *strictly lower* level and termination is structural.  The bottom
//! level's 4096 occupancy bits are themselves hierarchical: one summary
//! `u64` over 64 leaf words, so finding the next occupied slot is two
//! `trailing_zeros`, not a 4096-bit scan.
//!
//! Slots are intrusive singly-linked lists threaded through one shared
//! node pool: a slot is a `u32` head index, a push links a pooled node,
//! and a drain walks the chain back onto the pool's free list.  With
//! thousands of slots this matters twice over — constructing a wheel is a
//! small memset rather than thousands of `Vec` headers, and steady-state
//! scheduling never allocates, where per-slot vectors would malloc on
//! every first touch of a slot.
//!
//! ## Determinism
//!
//! The wheel preserves the heap's observable contract exactly — same
//! `(fire time, schedule order)` event sequence, same batch boundaries,
//! same cancellation outcomes and counts — which
//! `tests/scheduler_differential.rs` asserts by driving both
//! implementations through identical workloads, including proptest-random
//! schedule/cancel/pop interleavings.  At every fired event both clocks
//! equal the fire time; when a drain empties the wheel, the clock lands on
//! the latest discarded-entry tick (`stale_horizon_us`), matching where
//! the heap's lazy tombstone drain leaves its clock.

use crate::arena::{ArenaKey, EventArena};
use crate::engine::{Event, EventId, Scheduler, SchedulerStats};
use crate::time::{SimDuration, SimInstant};
use std::collections::VecDeque;

/// Bits of the tick consumed by the bottom level: 4096 one-tick slots.
const BOTTOM_BITS: u32 = 12;
/// Bottom-level slot count.
const BOTTOM_SLOTS: usize = 1 << BOTTOM_BITS;
/// Bits of the tick consumed per upper level: 64 slots each.
const UPPER_BITS: u32 = 6;
/// Slots per upper level.
const UPPER_SLOTS: usize = 1 << UPPER_BITS;
/// Upper levels needed so `BOTTOM_BITS + UPPER_LEVELS * UPPER_BITS >= 64`
/// covers every `u64` tick.
const UPPER_LEVELS: usize = 9;
/// Total slot count across all levels; bottom slots come first.
const TOTAL_SLOTS: usize = BOTTOM_SLOTS + UPPER_LEVELS * UPPER_SLOTS;
/// Empty-list sentinel for slot heads and node links.
const NIL: u32 = u32::MAX;

/// One slot entry: fire tick, FIFO sequence number and the arena key of the
/// payload.  Small and `Copy` so cascades move plain words around.
#[derive(Debug, Clone, Copy)]
struct WheelEntry {
    at_us: u64,
    seq: u64,
    key: ArenaKey,
}

/// A pooled list node: the entry plus the next index in its slot's chain
/// (or in the pool's free list once drained).
#[derive(Debug, Clone, Copy)]
struct Node {
    entry: WheelEntry,
    next: u32,
}

/// Where the next occupied slot lives: the bottom ring or an upper level.
#[derive(Debug, Clone, Copy)]
enum SlotRef {
    Bottom(usize),
    Upper(usize, usize),
}

/// The hierarchical timer wheel.  Implements [`Scheduler`]; the engine's
/// default backing (see [`crate::engine::Engine`]).
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// Head node index per slot, bottom level first then the upper levels
    /// flattened level-major.  `NIL` means empty.
    heads: Vec<u32>,
    /// Bottom occupancy, hierarchical: bit `i` of `bottom_words[w]` is set
    /// iff slot `w * 64 + i` is non-empty…
    bottom_words: [u64; BOTTOM_SLOTS / 64],
    /// …and bit `w` of the summary is set iff `bottom_words[w] != 0`.
    bottom_summary: u64,
    /// One occupancy bit per upper slot, per level.
    upper_occupied: [u64; UPPER_LEVELS],
    /// The shared node pool all slot lists thread through.
    pool: Vec<Node>,
    /// Head of the pool's free list (`NIL` when exhausted).
    pool_free: u32,
    arena: EventArena<T>,
    /// The wheel clock in ticks (µs).  Monotone; never passes an occupied
    /// slot without draining it.
    now_us: u64,
    next_seq: u64,
    /// Latest fire tick among discarded (cancelled) entries.  When a drain
    /// empties the wheel, the clock lands here — the same instant the heap
    /// oracle's lazy tombstone drain leaves *its* clock on, keeping
    /// `engine.virtual_now_us` bit-identical across schedulers.
    stale_horizon_us: u64,
    stats: SchedulerStats,
    /// Drained bottom-level events not yet handed to the caller — always a
    /// (suffix of a) single same-tick batch in FIFO order.
    ready: VecDeque<Event<T>>,
    /// Cascade scratch buffer, reused so steady-state advancing allocates
    /// nothing.
    scratch: Vec<WheelEntry>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel starting at the epoch.
    pub fn new() -> Self {
        TimerWheel {
            heads: vec![NIL; TOTAL_SLOTS],
            bottom_words: [0; BOTTOM_SLOTS / 64],
            bottom_summary: 0,
            upper_occupied: [0; UPPER_LEVELS],
            pool: Vec::new(),
            pool_free: NIL,
            arena: EventArena::new(),
            now_us: 0,
            next_seq: 0,
            stale_horizon_us: 0,
            stats: SchedulerStats::default(),
            ready: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    fn upper_slot_of(at_us: u64, level: usize) -> usize {
        let shift = BOTTOM_BITS as usize + UPPER_BITS as usize * level;
        ((at_us >> shift) & (UPPER_SLOTS as u64 - 1)) as usize
    }

    /// Link `entry` onto `slot`'s chain, reusing a freed pool node when one
    /// is available.
    fn link(&mut self, slot: usize, entry: WheelEntry) {
        let head = self.heads[slot];
        let index = if self.pool_free != NIL {
            let index = self.pool_free;
            let node = &mut self.pool[index as usize];
            self.pool_free = node.next;
            *node = Node { entry, next: head };
            index
        } else {
            let index = self.pool.len() as u32;
            self.pool.push(Node { entry, next: head });
            index
        };
        self.heads[slot] = index;
    }

    /// Unlink `slot`'s whole chain into `scratch` (clearing the slot and
    /// returning the nodes to the free list), then sort it back into FIFO
    /// order — chains are LIFO, sequence numbers restore schedule order.
    fn drain_slot_to_scratch(&mut self, slot: usize) {
        self.scratch.clear();
        let mut index = self.heads[slot];
        self.heads[slot] = NIL;
        while index != NIL {
            let node = self.pool[index as usize];
            self.scratch.push(node.entry);
            self.pool[index as usize].next = self.pool_free;
            self.pool_free = index;
            index = node.next;
        }
        if self.scratch.len() > 1 {
            self.scratch.sort_unstable_by_key(|entry| entry.seq);
        }
    }

    /// Insert an entry at the level whose field is the highest one
    /// differing between `at_us` and the current tick: within the current
    /// 4096-tick window that is the bottom ring (the entry's exact firing
    /// slot); otherwise an upper level, strictly ahead of the clock.
    fn push_entry(&mut self, entry: WheelEntry) {
        let xor = entry.at_us ^ self.now_us;
        if xor < BOTTOM_SLOTS as u64 {
            let slot = (entry.at_us & (BOTTOM_SLOTS as u64 - 1)) as usize;
            self.link(slot, entry);
            self.bottom_words[slot >> 6] |= 1u64 << (slot & 63);
            self.bottom_summary |= 1u64 << (slot >> 6);
        } else {
            let level =
                (63 - xor.leading_zeros() as usize - BOTTOM_BITS as usize) / UPPER_BITS as usize;
            let slot = Self::upper_slot_of(entry.at_us, level);
            self.link(BOTTOM_SLOTS + level * UPPER_SLOTS + slot, entry);
            self.upper_occupied[level] |= 1u64 << slot;
        }
    }

    /// The first occupied slot at or after the clock's current position,
    /// lowest level first — by the wheel invariant, the slot holding the
    /// globally minimal pending entry.
    fn next_occupied(&self) -> Option<SlotRef> {
        // Bottom ring: the clock's leaf word first, then the summary for
        // any later word.  Slots behind the clock are structurally empty:
        // the clock never passes an occupied slot without draining it.
        let cur = (self.now_us & (BOTTOM_SLOTS as u64 - 1)) as usize;
        let word = cur >> 6;
        let ahead = self.bottom_words[word] & (!0u64 << (cur & 63));
        if ahead != 0 {
            return Some(SlotRef::Bottom(
                (word << 6) + ahead.trailing_zeros() as usize,
            ));
        }
        let later_words = if word + 1 < 64 {
            self.bottom_summary & (!0u64 << (word + 1))
        } else {
            0
        };
        if later_words != 0 {
            let w = later_words.trailing_zeros() as usize;
            let slot = (w << 6) + self.bottom_words[w].trailing_zeros() as usize;
            return Some(SlotRef::Bottom(slot));
        }
        for level in 0..UPPER_LEVELS {
            let cur = Self::upper_slot_of(self.now_us, level);
            let ahead = self.upper_occupied[level] & (!0u64 << cur);
            if ahead != 0 {
                return Some(SlotRef::Upper(level, ahead.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Refill `ready` with the next same-tick batch: cascade upper-level
    /// slots downwards until a bottom slot yields live events (discarding
    /// and counting stale entries along the way).
    fn refill_ready(&mut self) {
        while self.ready.is_empty() {
            let Some(found) = self.next_occupied() else {
                // The wheel is empty (no occupied slot anywhere): if the
                // way here drained cancelled entries, finish on the latest
                // of their fire ticks.  Safe — there is no occupied slot
                // the jump could pass.
                self.now_us = self.now_us.max(self.stale_horizon_us);
                return;
            };
            match found {
                SlotRef::Bottom(slot) => {
                    // A bottom slot covers exactly one tick, so its entries
                    // all fire now; order within the tick is schedule order.
                    self.now_us = (self.now_us & !(BOTTOM_SLOTS as u64 - 1)) | slot as u64;
                    let word = slot >> 6;
                    self.bottom_words[word] &= !(1u64 << (slot & 63));
                    if self.bottom_words[word] == 0 {
                        self.bottom_summary &= !(1u64 << word);
                    }
                    self.drain_slot_to_scratch(slot);
                    for i in 0..self.scratch.len() {
                        let entry = self.scratch[i];
                        match self.arena.remove(entry.key) {
                            Some(payload) => self.ready.push_back(Event {
                                at: SimInstant::from_micros(entry.at_us),
                                id: EventId(entry.key.encode()),
                                payload,
                            }),
                            // Cancelled after scheduling: count the stale
                            // entry, never silently drop it.
                            None => {
                                self.stats.stale += 1;
                                self.stale_horizon_us = self.stale_horizon_us.max(entry.at_us);
                            }
                        }
                    }
                }
                SlotRef::Upper(level, slot) => {
                    // Advance the clock to the slot's base tick *first*;
                    // cascaded entries then differ from `now` only below
                    // this level's field, so each re-insert lands at a
                    // strictly lower level.
                    let shift = BOTTOM_BITS as usize + UPPER_BITS as usize * level;
                    let above = shift + UPPER_BITS as usize;
                    let high = if above >= 64 {
                        0
                    } else {
                        (self.now_us >> above) << above
                    };
                    self.now_us = high | ((slot as u64) << shift);
                    self.upper_occupied[level] &= !(1u64 << slot);
                    self.drain_slot_to_scratch(BOTTOM_SLOTS + level * UPPER_SLOTS + slot);
                    for i in 0..self.scratch.len() {
                        let entry = self.scratch[i];
                        if self.arena.contains(entry.key) {
                            self.push_entry(entry);
                        } else {
                            self.stats.stale += 1;
                            self.stale_horizon_us = self.stale_horizon_us.max(entry.at_us);
                        }
                    }
                }
            }
        }
    }
}

impl<T> Scheduler<T> for TimerWheel<T> {
    fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.now_us)
    }

    fn len(&self) -> usize {
        self.arena.len() + self.ready.len()
    }

    fn schedule_at(&mut self, at: SimInstant, payload: T) -> EventId {
        let at_us = at.as_micros().max(self.now_us);
        let key = self.arena.insert(payload);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_entry(WheelEntry { at_us, seq, key });
        self.stats.scheduled += 1;
        EventId(key.encode())
    }

    fn schedule_after(&mut self, delay: SimDuration, payload: T) -> EventId {
        let at = SimInstant::from_micros(self.now_us) + delay;
        self.schedule_at(at, payload)
    }

    fn cancel(&mut self, id: EventId) -> bool {
        if self.arena.remove(ArenaKey::decode(id.0)).is_some() {
            self.stats.cancelled += 1;
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<Event<T>> {
        self.refill_ready();
        self.ready.pop_front()
    }

    fn pop_batch(&mut self, out: &mut Vec<Event<T>>) -> usize {
        out.clear();
        self.refill_ready();
        out.extend(self.ready.drain(..));
        out.len()
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimInstant {
        SimInstant::from_micros(us)
    }

    #[test]
    fn orders_by_time_then_fifo() {
        let mut wheel = TimerWheel::new();
        wheel.schedule_at(at(1000), "b");
        wheel.schedule_at(at(0), "a");
        wheel.schedule_at(at(1000), "c");
        let order: Vec<&str> = std::iter::from_fn(|| wheel.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["a", "b", "c"], "same-instant events must be FIFO");
    }

    #[test]
    fn clamps_past_events_to_now() {
        let mut wheel = TimerWheel::new();
        wheel.schedule_at(at(5000), ());
        assert!(wheel.pop().is_some());
        wheel.schedule_at(at(0), ());
        let event = wheel.pop().expect("clamped event");
        assert_eq!(event.at, at(5000));
    }

    #[test]
    fn pop_batch_yields_the_whole_same_instant_batch() {
        let mut wheel = TimerWheel::new();
        wheel.schedule_at(at(10), 0u32);
        wheel.schedule_at(at(10), 1u32);
        wheel.schedule_at(at(20), 2u32);
        let mut batch = Vec::new();
        assert_eq!(wheel.pop_batch(&mut batch), 2);
        assert_eq!(batch.iter().map(|e| e.payload).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(wheel.pop_batch(&mut batch), 1);
        assert_eq!(batch[0].payload, 2);
        assert_eq!(wheel.pop_batch(&mut batch), 0);
    }

    #[test]
    fn cancel_is_effective_and_counted() {
        let mut wheel = TimerWheel::new();
        let a = wheel.schedule_at(at(100), "a");
        wheel.schedule_at(at(100), "b");
        assert!(wheel.cancel(a));
        assert!(!wheel.cancel(a), "double cancel must be a no-op");
        let event = wheel.pop().expect("surviving event");
        assert_eq!(event.payload, "b");
        assert!(wheel.pop().is_none());
        let stats = wheel.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.stale, 1, "the dead slot entry must be counted");
        assert_eq!(stats.scheduled, 2);
    }

    #[test]
    fn far_future_timers_cascade_down_between_levels() {
        let mut wheel = TimerWheel::new();
        // One event per level boundary: 64^k µs apart, far past any single
        // level's span — plus one ten-years-out outlier.
        let ticks: Vec<u64> = (0..8).map(|k| 64u64.pow(k)).chain([u64::MAX / 2]).collect();
        for &t in ticks.iter().rev() {
            wheel.schedule_at(at(t), t);
        }
        let mut popped = Vec::new();
        while let Some(event) = wheel.pop() {
            assert_eq!(
                event.at,
                at(event.payload),
                "fire time must survive cascading"
            );
            popped.push(event.payload);
        }
        let mut expected = ticks.clone();
        expected.sort_unstable();
        assert_eq!(popped, expected);
    }

    #[test]
    fn bottom_window_boundaries_neither_lose_nor_reorder_events() {
        let mut wheel = TimerWheel::new();
        // Straddle the 4096-tick bottom window edge and both sides of a
        // leaf-word boundary within it, in scrambled insert order.
        let ticks = [4095u64, 4096, 4097, 63, 64, 8191, 8192, 1];
        for &t in &ticks {
            wheel.schedule_at(at(t), t);
        }
        let mut popped = Vec::new();
        while let Some(event) = wheel.pop() {
            assert_eq!(event.at, at(event.payload));
            popped.push(event.payload);
        }
        let mut expected = ticks.to_vec();
        expected.sort_unstable();
        assert_eq!(popped, expected);
    }

    #[test]
    fn pool_nodes_are_recycled_across_slots() {
        let mut wheel = TimerWheel::new();
        // Thousands of schedule/fire cycles across distinct slots must not
        // grow the node pool past the peak number in flight.
        for round in 0..2000u64 {
            wheel.schedule_at(at(round * 7 + 1), round);
            wheel.schedule_at(at(round * 7 + 3), round);
            let mut batch = Vec::new();
            while wheel.pop_batch(&mut batch) > 0 {}
        }
        assert!(
            wheel.pool.len() <= 4,
            "pool grew to {} nodes for 2 in flight",
            wheel.pool.len()
        );
    }
}
