//! Routers: the per-hop actors of the path simulator.

use crate::aqm::AqmConfig;
use crate::policy::{DscpPolicy, EcnPolicy};
use crate::topology::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Identifier of a router inside a topology.
///
/// Also the key under which the discrete-event engine registers shared
/// egress queues ([`crate::engine::SharedQueues`]): all flows whose paths
/// cross a router with the same id compete for the same queue.
///
/// A physical router has a separate egress queue per direction, and the two
/// directions of a [`DuplexPath`](crate::path::DuplexPath) are built by
/// independent `PathBuilder`s that both number routers from 1 — so reverse
/// paths mark their ids with [`RouterId::REVERSE_DIRECTION_BIT`] to keep a
/// queue registered at a forward hop from accidentally capturing
/// numerically-colliding reverse hops.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Bit distinguishing the reverse-direction egress of a duplex path from
    /// the forward-direction egress with the same hop number.
    pub const REVERSE_DIRECTION_BIT: u32 = 1 << 31;

    /// The id used for this hop number on the reverse direction of a duplex
    /// path.
    pub fn reverse_direction(self) -> RouterId {
        RouterId(self.0 | Self::REVERSE_DIRECTION_BIT)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// How a router answers packets whose TTL expired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcmpBehavior {
    /// Probability in `[0, 1]` that a time-exceeded message is actually sent.
    /// Models ICMP rate limiting and administrative silence; the paper's
    /// tracer tolerates up to five consecutive silent hops.
    pub response_probability: f64,
    /// How many bytes of the offending datagram are quoted.  RFC 792 requires
    /// at least the IP header plus 8 bytes; modern routers often quote the
    /// full packet.  The tracer must cope with both.
    pub quote_bytes: usize,
}

impl IcmpBehavior {
    /// A router that always answers and quotes 128 bytes.
    pub fn responsive() -> Self {
        IcmpBehavior {
            response_probability: 1.0,
            quote_bytes: 128,
        }
    }

    /// A router that never answers (blackholes expired packets).
    pub fn silent() -> Self {
        IcmpBehavior {
            response_probability: 0.0,
            quote_bytes: 0,
        }
    }

    /// A router that answers with the given probability (rate limiting).
    pub fn rate_limited(probability: f64) -> Self {
        IcmpBehavior {
            response_probability: probability.clamp(0.0, 1.0),
            quote_bytes: 128,
        }
    }

    /// A responsive router that quotes only the minimum 28 bytes
    /// (IPv4 header + 8 bytes), hiding most of the QUIC payload.
    pub fn minimal_quote() -> Self {
        IcmpBehavior {
            response_probability: 1.0,
            quote_bytes: 28,
        }
    }
}

impl Default for IcmpBehavior {
    fn default() -> Self {
        IcmpBehavior::responsive()
    }
}

/// A router on a forwarding path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Router {
    /// Identifier inside the topology.
    pub id: RouterId,
    /// The AS the router belongs to (used for impairment attribution).
    pub asn: Asn,
    /// The address the router uses when sourcing ICMP messages.
    pub address: IpAddr,
    /// ECN rewrite policy.
    pub ecn_policy: EcnPolicy,
    /// DSCP rewrite policy.
    pub dscp_policy: DscpPolicy,
    /// Optional AQM applied after the rewrite policies.
    pub aqm: Option<AqmConfig>,
    /// Behaviour towards TTL-expired packets.
    pub icmp: IcmpBehavior,
}

impl Router {
    /// A transparent router belonging to `asn` with the given id.
    ///
    /// The ICMP source address is derived deterministically from the id so
    /// traces are stable across runs.
    pub fn transparent(id: u32, asn: Asn) -> Self {
        Router {
            id: RouterId(id),
            asn,
            address: Router::derive_v4_address(id, asn),
            ecn_policy: EcnPolicy::Pass,
            dscp_policy: DscpPolicy::Pass,
            aqm: None,
            icmp: IcmpBehavior::responsive(),
        }
    }

    /// A transparent router with an IPv6 ICMP source address.
    pub fn transparent_v6(id: u32, asn: Asn) -> Self {
        let mut r = Router::transparent(id, asn);
        r.address = Router::derive_v6_address(id, asn);
        r
    }

    /// Set the ECN policy.
    pub fn with_ecn_policy(mut self, policy: EcnPolicy) -> Self {
        self.ecn_policy = policy;
        self
    }

    /// Set the DSCP policy.
    pub fn with_dscp_policy(mut self, policy: DscpPolicy) -> Self {
        self.dscp_policy = policy;
        self
    }

    /// Set the ICMP behaviour.
    pub fn with_icmp(mut self, icmp: IcmpBehavior) -> Self {
        self.icmp = icmp;
        self
    }

    /// Attach an AQM.
    pub fn with_aqm(mut self, aqm: AqmConfig) -> Self {
        self.aqm = Some(aqm);
        self
    }

    /// Deterministic IPv4 address for a router id within an AS
    /// (from the 10.0.0.0/8 space so it never collides with simulated servers).
    pub fn derive_v4_address(id: u32, asn: Asn) -> IpAddr {
        let a = (asn.0 % 200) as u8;
        IpAddr::V4(Ipv4Addr::new(
            10,
            a,
            ((id >> 8) & 0xff) as u8,
            (id & 0xff) as u8,
        ))
    }

    /// Deterministic IPv6 address for a router id within an AS.
    pub fn derive_v6_address(id: u32, asn: Asn) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(
            0xfd00,
            (asn.0 >> 16) as u16,
            (asn.0 & 0xffff) as u16,
            0,
            0,
            0,
            (id >> 16) as u16,
            (id & 0xffff) as u16,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let r = Router::transparent(7, Asn(1299))
            .with_ecn_policy(EcnPolicy::ClearEcn)
            .with_icmp(IcmpBehavior::silent());
        assert_eq!(r.id, RouterId(7));
        assert_eq!(r.asn, Asn(1299));
        assert_eq!(r.ecn_policy, EcnPolicy::ClearEcn);
        assert_eq!(r.icmp.response_probability, 0.0);
        assert!(r.aqm.is_none());
    }

    #[test]
    fn addresses_are_deterministic_and_distinct() {
        let a = Router::derive_v4_address(1, Asn(1299));
        let b = Router::derive_v4_address(2, Asn(1299));
        let c = Router::derive_v4_address(1, Asn(1299));
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert!(matches!(a, IpAddr::V4(_)));
        assert!(matches!(
            Router::derive_v6_address(1, Asn(174)),
            IpAddr::V6(_)
        ));
    }

    #[test]
    fn icmp_behaviour_presets() {
        assert_eq!(IcmpBehavior::responsive().response_probability, 1.0);
        assert_eq!(IcmpBehavior::silent().response_probability, 0.0);
        assert_eq!(IcmpBehavior::rate_limited(7.0).response_probability, 1.0);
        assert_eq!(IcmpBehavior::minimal_quote().quote_bytes, 28);
    }
}
