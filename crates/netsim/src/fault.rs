//! Deterministic fault injection: virtual-time impairment windows on paths.
//!
//! A [`FaultPlan`] attaches to a [`Path`](crate::path::Path) and schedules
//! impairments — loss (steady or bursty), blackholes, link flaps, payload
//! corruption, jitter, reordering and duplication — inside explicit
//! virtual-time windows.  Every probabilistic decision draws from the
//! per-flow seeded RNG that drives the transit itself, and square-wave
//! faults (blackhole, flap, burst loss) are pure functions of the virtual
//! clock, so a faulted run is exactly as reproducible as a clean one:
//! bit-identical across worker counts and across the TimerWheel / binary
//! heap schedulers.
//!
//! Paths without a plan take a zero-cost early exit that consumes **no**
//! RNG draws, which is what keeps every committed golden report
//! byte-identical to the pre-fault world.

use crate::time::{SimDuration, SimInstant};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One impairment mechanism, active while its [`FaultWindow`] covers the
/// current virtual time.
///
/// Probabilistic kinds (`Loss`, `Corrupt`, `Jitter`, `Reorder`,
/// `Duplicate`) draw from the flow RNG in window order; time-driven kinds
/// (`Blackhole`, `Flap`, `BurstLoss`) draw nothing — they are square waves
/// over the virtual clock, phase-locked to the window start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Drop each packet independently with probability `rate`.
    Loss {
        /// Drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Periodic loss bursts: within every `period` after the window opens,
    /// packets in the first `burst` are dropped.  Deterministic — no RNG.
    BurstLoss {
        /// Length of one on/off cycle.
        period: SimDuration,
        /// Leading slice of each cycle during which every packet is lost.
        burst: SimDuration,
    },
    /// Drop every packet for the whole window.
    Blackhole,
    /// Link flapping: within every `period` after the window opens, the
    /// link is down for the first `down`.  Deterministic — no RNG.
    Flap {
        /// Length of one up/down cycle.
        period: SimDuration,
        /// Leading slice of each cycle during which the link is down.
        down: SimDuration,
    },
    /// With probability `rate`, flip one bit of one payload byte (chosen by
    /// the flow RNG).  The IP header stays intact, so the datagram still
    /// routes — the receiver sees an undecodable payload, which is how
    /// corrupt-reply classification surfaces downstream.
    Corrupt {
        /// Corruption probability in `[0, 1]`.
        rate: f64,
    },
    /// Add a uniform extra delay in `[0, max]` to every packet.
    Jitter {
        /// Upper bound of the added delay.
        max: SimDuration,
    },
    /// With probability `rate`, hold this packet back by an extra `extra` —
    /// it arrives after packets sent later, i.e. genuine reordering.
    Reorder {
        /// Reorder probability in `[0, 1]`.
        rate: f64,
        /// Extra delay applied to reordered packets.
        extra: SimDuration,
    },
    /// With probability `rate`, emit a duplicate copy.  The copy gives the
    /// packet a second independent survival chance against *later*
    /// probabilistic `Loss` windows in the same plan; a copy that survives
    /// alongside the original is absorbed at the receiver (exactly-once
    /// delivery) and only counted.
    Duplicate {
        /// Duplication probability in `[0, 1]`.
        rate: f64,
    },
}

/// A [`FaultKind`] active over a half-open virtual-time interval
/// `[from, until)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First instant (inclusive) at which the fault applies.
    pub from: SimInstant,
    /// First instant (exclusive) at which it no longer applies.
    pub until: SimInstant,
    /// The impairment applied inside the window.
    pub fault: FaultKind,
}

impl FaultWindow {
    /// Whether the window covers `now`.
    pub fn active(&self, now: SimInstant) -> bool {
        self.from <= now && now < self.until
    }

    /// Offset of `now` into the current on/off cycle of a periodic fault,
    /// phase-locked to the window start.
    fn phase(&self, now: SimInstant, period: SimDuration) -> SimDuration {
        let period_us = period.as_micros().max(1);
        SimDuration::from_micros(now.duration_since(self.from).as_micros() % period_us)
    }
}

/// How a fault-injected drop happened — one bucket per mechanism so
/// telemetry can show *which* impairment cost the packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDrop {
    /// Probabilistic loss (all copies of the packet died).
    Loss,
    /// Burst-loss cycle was in its loss slice.
    Burst,
    /// Blackhole window.
    Blackhole,
    /// Flap cycle was in its down slice.
    Flap,
}

/// What a [`FaultPlan`] decided for one packet: either a drop, or delivery
/// with some combination of extra delay and payload corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultVerdict {
    /// `Some` when the packet is dropped, tagged with the mechanism.
    pub drop: Option<FaultDrop>,
    /// Extra delay added on top of the path's hop delays (jitter and
    /// reorder hold-back).
    pub extra_delay: SimDuration,
    /// Payload byte index to bit-flip, when corruption fired.
    pub corrupt_byte: Option<usize>,
    /// A duplicate copy was emitted for this packet.
    pub duplicated: bool,
    /// The original died to probabilistic loss but a duplicate survived —
    /// duplication salvaged the delivery.
    pub salvaged: bool,
    /// The packet was held back past later traffic (reordering).
    pub reordered: bool,
    /// Jitter added delay to the packet.
    pub jittered: bool,
}

impl FaultVerdict {
    /// The verdict of an empty plan: deliver untouched.
    pub const CLEAN: FaultVerdict = FaultVerdict {
        drop: None,
        extra_delay: SimDuration::ZERO,
        corrupt_byte: None,
        duplicated: false,
        salvaged: false,
        reordered: false,
        jittered: false,
    };
}

/// A schedule of impairment windows attached to a path.
///
/// Windows are evaluated **in plan order** for every packet, which fixes
/// the RNG draw sequence and therefore the byte-identical replay property.
/// Order is also semantic: a `Duplicate` window only protects against
/// `Loss` windows that come after it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// The impairment windows, evaluated in order.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// A plan with no windows (the default): packets pass untouched and no
    /// RNG draws are consumed.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Append a window `[from, until)` applying `fault` (builder style).
    pub fn window(mut self, from: SimInstant, until: SimInstant, fault: FaultKind) -> Self {
        self.windows.push(FaultWindow { from, until, fault });
        self
    }

    /// Append a window covering all of virtual time (builder style).
    pub fn always(self, fault: FaultKind) -> Self {
        self.window(SimInstant::EPOCH, SimInstant::from_micros(u64::MAX), fault)
    }

    /// Decide the fate of one packet of `payload_len` bytes at virtual time
    /// `now`.
    ///
    /// Deterministic drops (blackhole, flap-down, burst slice) return
    /// immediately without touching the RNG; probabilistic windows draw in
    /// plan order.  [`Path::transit`](crate::path::Path::transit) — the
    /// un-timed entry point — evaluates plans at [`SimInstant::EPOCH`], so
    /// time-windowed faults need the engine's `transit_shared`.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        now: SimInstant,
        payload_len: usize,
        rng: &mut R,
    ) -> FaultVerdict {
        let mut verdict = FaultVerdict::CLEAN;
        // Copies of the packet still alive: the original plus any duplicates.
        let mut copies: u32 = 1;
        for window in &self.windows {
            if !window.active(now) {
                continue;
            }
            match &window.fault {
                FaultKind::Blackhole => {
                    verdict.drop = Some(FaultDrop::Blackhole);
                    return verdict;
                }
                FaultKind::Flap { period, down } => {
                    if window.phase(now, *period) < *down {
                        verdict.drop = Some(FaultDrop::Flap);
                        return verdict;
                    }
                }
                FaultKind::BurstLoss { period, burst } => {
                    if window.phase(now, *period) < *burst {
                        verdict.drop = Some(FaultDrop::Burst);
                        return verdict;
                    }
                }
                FaultKind::Duplicate { rate } => {
                    if *rate > 0.0 && rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        copies += 1;
                        verdict.duplicated = true;
                    }
                }
                FaultKind::Loss { rate } => {
                    if *rate > 0.0 {
                        let rate = rate.clamp(0.0, 1.0);
                        let mut survivors = 0u32;
                        for _ in 0..copies {
                            if !rng.gen_bool(rate) {
                                survivors += 1;
                            }
                        }
                        if survivors == 0 {
                            verdict.drop = Some(FaultDrop::Loss);
                            return verdict;
                        }
                        if survivors < copies && verdict.duplicated {
                            verdict.salvaged = true;
                        }
                        copies = survivors;
                    }
                }
                FaultKind::Corrupt { rate } => {
                    if *rate > 0.0
                        && payload_len > 0
                        && verdict.corrupt_byte.is_none()
                        && rng.gen_bool(rate.clamp(0.0, 1.0))
                    {
                        verdict.corrupt_byte = Some(rng.gen_range(0..payload_len));
                    }
                }
                FaultKind::Jitter { max } => {
                    if *max > SimDuration::ZERO {
                        verdict.extra_delay +=
                            SimDuration::from_micros(rng.gen_range(0..=max.as_micros()));
                        verdict.jittered = true;
                    }
                }
                FaultKind::Reorder { rate, extra } => {
                    if *rate > 0.0 && rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        verdict.extra_delay += *extra;
                        verdict.reordered = true;
                    }
                }
            }
        }
        verdict
    }
}

/// Counters over every [`FaultVerdict`] recorded during a run, folded into
/// [`SharedQueues`](crate::engine::SharedQueues) telemetry (nonzero keys
/// only, so fault-free runs keep byte-identical metric documents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Packets dropped by probabilistic loss windows.
    pub loss_drops: u64,
    /// Packets dropped inside burst-loss slices.
    pub burst_drops: u64,
    /// Packets dropped by blackhole windows.
    pub blackhole_drops: u64,
    /// Packets dropped while a flapping link was down.
    pub flap_drops: u64,
    /// Packets delivered with a corrupted payload byte.
    pub corrupted: u64,
    /// Duplicate copies emitted.
    pub duplicates: u64,
    /// Deliveries that only survived because of a duplicate copy.
    pub salvaged: u64,
    /// Packets held back past later traffic (reordered).
    pub reordered: u64,
    /// Packets that picked up jitter delay.
    pub jittered: u64,
}

impl FaultStats {
    /// Fold one verdict into the counters.
    pub fn record(&mut self, verdict: &FaultVerdict) {
        match verdict.drop {
            Some(FaultDrop::Loss) => self.loss_drops += 1,
            Some(FaultDrop::Burst) => self.burst_drops += 1,
            Some(FaultDrop::Blackhole) => self.blackhole_drops += 1,
            Some(FaultDrop::Flap) => self.flap_drops += 1,
            None => {}
        }
        if verdict.corrupt_byte.is_some() {
            self.corrupted += 1;
        }
        if verdict.duplicated {
            self.duplicates += 1;
        }
        if verdict.salvaged {
            self.salvaged += 1;
        }
        if verdict.reordered {
            self.reordered += 1;
        }
        if verdict.jittered {
            self.jittered += 1;
        }
    }

    /// Total packets the plan dropped, across all mechanisms.
    pub fn total_drops(&self) -> u64 {
        self.loss_drops + self.burst_drops + self.blackhole_drops + self.flap_drops
    }

    /// Whether nothing was recorded (fault-free run).
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn at_ms(n: u64) -> SimInstant {
        SimInstant::EPOCH + ms(n)
    }

    #[test]
    fn empty_plan_is_clean_and_draws_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(plan.apply(at_ms(5), 100, &mut a), FaultVerdict::CLEAN);
        // The RNG stream is untouched: both clones still agree on the next draw.
        assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
    }

    #[test]
    fn blackhole_window_drops_inside_and_only_inside() {
        let plan = FaultPlan::new().window(at_ms(10), at_ms(20), FaultKind::Blackhole);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(plan.apply(at_ms(9), 10, &mut rng).drop, None);
        assert_eq!(
            plan.apply(at_ms(10), 10, &mut rng).drop,
            Some(FaultDrop::Blackhole)
        );
        assert_eq!(
            plan.apply(at_ms(19), 10, &mut rng).drop,
            Some(FaultDrop::Blackhole)
        );
        // Half-open: the `until` instant is back up.
        assert_eq!(plan.apply(at_ms(20), 10, &mut rng).drop, None);
    }

    #[test]
    fn square_wave_faults_draw_no_rng() {
        let plan = FaultPlan::new()
            .always(FaultKind::Flap {
                period: ms(10),
                down: ms(4),
            })
            .always(FaultKind::BurstLoss {
                period: ms(7),
                burst: ms(2),
            });
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for t in 0..40 {
            plan.apply(at_ms(t), 64, &mut a);
        }
        assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
    }

    #[test]
    fn flap_cycles_phase_locked_to_window_start() {
        let plan = FaultPlan::new().window(
            at_ms(100),
            at_ms(1_000),
            FaultKind::Flap {
                period: ms(10),
                down: ms(3),
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        // Cycle starts at the window open, not at the epoch.
        assert_eq!(
            plan.apply(at_ms(100), 8, &mut rng).drop,
            Some(FaultDrop::Flap)
        );
        assert_eq!(
            plan.apply(at_ms(102), 8, &mut rng).drop,
            Some(FaultDrop::Flap)
        );
        assert_eq!(plan.apply(at_ms(103), 8, &mut rng).drop, None);
        assert_eq!(
            plan.apply(at_ms(110), 8, &mut rng).drop,
            Some(FaultDrop::Flap)
        );
        assert_eq!(plan.apply(at_ms(119), 8, &mut rng).drop, None);
    }

    #[test]
    fn certain_loss_always_drops_and_duplicate_can_salvage() {
        let lossy = FaultPlan::new().always(FaultKind::Loss { rate: 1.0 });
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            lossy.apply(at_ms(0), 16, &mut rng).drop,
            Some(FaultDrop::Loss)
        );

        // A certain duplicate before a coin-flip loss salvages roughly the
        // runs where exactly one copy dies; over many packets all of
        // dropped / clean / salvaged outcomes must appear.
        let protected = FaultPlan::new()
            .always(FaultKind::Duplicate { rate: 1.0 })
            .always(FaultKind::Loss { rate: 0.5 });
        let (mut drops, mut salvages, mut clean) = (0u32, 0u32, 0u32);
        for _ in 0..200 {
            let v = protected.apply(at_ms(0), 16, &mut rng);
            match (v.drop, v.salvaged) {
                (Some(_), _) => drops += 1,
                (None, true) => salvages += 1,
                (None, false) => clean += 1,
            }
        }
        assert!(drops > 0 && salvages > 0 && clean > 0);
    }

    #[test]
    fn corruption_picks_a_payload_byte_and_skips_empty_payloads() {
        let plan = FaultPlan::new().always(FaultKind::Corrupt { rate: 1.0 });
        let mut rng = StdRng::seed_from_u64(4);
        let v = plan.apply(at_ms(1), 32, &mut rng);
        assert!(matches!(v.corrupt_byte, Some(i) if i < 32));
        assert_eq!(plan.apply(at_ms(1), 0, &mut rng).corrupt_byte, None);
    }

    #[test]
    fn jitter_and_reorder_accumulate_extra_delay() {
        let plan = FaultPlan::new()
            .always(FaultKind::Jitter { max: ms(5) })
            .always(FaultKind::Reorder {
                rate: 1.0,
                extra: ms(50),
            });
        let mut rng = StdRng::seed_from_u64(5);
        let v = plan.apply(at_ms(0), 8, &mut rng);
        assert!(v.jittered && v.reordered);
        assert!(v.extra_delay >= ms(50) && v.extra_delay <= ms(55));
    }

    #[test]
    fn same_seed_same_verdict_sequence() {
        let plan = FaultPlan::new()
            .always(FaultKind::Duplicate { rate: 0.3 })
            .always(FaultKind::Loss { rate: 0.2 })
            .always(FaultKind::Corrupt { rate: 0.1 })
            .always(FaultKind::Jitter { max: ms(2) });
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100)
                .map(|t| plan.apply(at_ms(t), 64, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn stats_fold_verdicts_into_buckets() {
        let mut stats = FaultStats::default();
        stats.record(&FaultVerdict {
            drop: Some(FaultDrop::Flap),
            ..FaultVerdict::CLEAN
        });
        stats.record(&FaultVerdict {
            corrupt_byte: Some(3),
            duplicated: true,
            salvaged: true,
            reordered: true,
            jittered: true,
            ..FaultVerdict::CLEAN
        });
        assert_eq!(stats.flap_drops, 1);
        assert_eq!(stats.total_drops(), 1);
        assert_eq!(
            (stats.corrupted, stats.duplicates, stats.salvaged),
            (1, 1, 1)
        );
        assert!(!stats.is_zero());
        assert!(FaultStats::default().is_zero());
    }
}
