//! A deterministic, packet-level Internet path simulator.
//!
//! The measurement study observes how routers between a vantage point and a
//! web server treat the ECN bits of IP packets: most forward them untouched,
//! some clear them (the paper attributes the bulk of IPv4 clearing to a
//! single transit provider, AS 1299), some re-mark `ECT(0)` to `ECT(1)`, and
//! a few mark every packet `CE`.  This crate models exactly that: a
//! [`Path`](path::Path) is an ordered list of [`Hop`](path::Hop)s, each owned
//! by a [`Router`](router::Router) with an [`EcnPolicy`](policy::EcnPolicy)
//! and a DSCP policy, a propagation delay, and a loss probability.  Routers
//! decrement the TTL and answer with ICMP *time exceeded* quotations, which is
//! what makes the tracebox methodology (paper §4.2) work against the
//! simulator.
//!
//! Design notes:
//!
//! * **Determinism** — all randomness (loss, AQM marking, ICMP rate limiting)
//!   is drawn from an explicit [`rand::Rng`] handed in by the caller, so a
//!   seeded campaign is exactly reproducible.
//! * **Sans-IO** — the simulator never spawns tasks or touches sockets; it
//!   transforms [`IpDatagram`](qem_packet::IpDatagram)s and reports what a
//!   real network would have done via [`TransitOutcome`](path::TransitOutcome).
//! * **Virtual time** — endpoints run against [`SimClock`](time::SimClock);
//!   path delays and endpoint timers (PTO, idle timeout) share the same
//!   timeline, so handshake timeouts behave like the paper's 10 s budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aqm;
pub mod arena;
pub mod engine;
pub mod fault;
pub mod path;
pub mod policy;
pub mod router;
pub mod time;
pub mod topology;
pub mod wheel;

pub use aqm::{AqmConfig, AqmKind, OccupancyAqm};
pub use arena::{ArenaKey, EventArena};
pub use engine::{
    CrossTraffic, Engine, EngineCore, EngineTelemetry, EventId, EventQueue, Flow, FlowStatus,
    FlowWake, HeapEngine, LoadFlow, QueueConfig, QueueStats, Scheduler, SchedulerStats,
    SharedQueues, DEFAULT_EVENT_LOG_CAPACITY,
};
pub use fault::{FaultDrop, FaultKind, FaultPlan, FaultStats, FaultVerdict, FaultWindow};
pub use path::{DuplexPath, Hop, Path, TransitOutcome};
pub use policy::{DscpPolicy, EcnPolicy};
pub use router::{IcmpBehavior, Router, RouterId};
pub use time::{SimClock, SimDuration, SimInstant};
pub use topology::{build_duplex_path, build_transit_path, Asn, PathBuilder, TransitProfile};
pub use wheel::TimerWheel;
