//! Forwarding paths: ordered router hops that forward, rewrite, drop or
//! answer packets with ICMP.

use crate::engine::SharedQueues;
use crate::fault::FaultPlan;
use crate::router::Router;
use crate::time::{SimDuration, SimInstant};
use qem_packet::ecn::EcnCodepoint;
use qem_packet::icmp::IcmpMessage;
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header, Ipv6Header};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

use crate::aqm::AqmDecision;

/// One hop of a forwarding path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hop {
    /// The router owning this hop.
    pub router: Router,
    /// One-way propagation + processing delay contributed by this hop.
    pub delay: SimDuration,
    /// Probability in `[0, 1]` that a packet is lost at this hop.
    pub loss: f64,
}

impl Hop {
    /// A hop with the default 5 ms delay and no loss.
    pub fn new(router: Router) -> Self {
        Hop {
            router,
            delay: SimDuration::from_millis(5),
            loss: 0.0,
        }
    }

    /// Set the hop delay.
    pub fn with_delay(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Set the hop loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }
}

/// What happened to a datagram sent down a [`Path`].
#[derive(Debug, Clone, PartialEq)]
pub enum TransitOutcome {
    /// The datagram reached the far end, possibly with rewritten ECN / DSCP.
    Delivered {
        /// The datagram as it arrives at the destination.
        datagram: IpDatagram,
        /// Total one-way delay accumulated on the path.
        delay: SimDuration,
    },
    /// The datagram was dropped (queue loss or AQM drop).
    Dropped {
        /// Index of the hop at which the packet was lost.
        at_hop: usize,
    },
    /// The TTL expired at a router, which answered with an ICMP
    /// *time exceeded* message.
    TimeExceeded {
        /// Index of the hop whose router answered.
        at_hop: usize,
        /// The ICMP datagram travelling back to the sender.
        response: IpDatagram,
        /// Delay until the ICMP response arrives back at the sender.
        delay: SimDuration,
    },
    /// The TTL expired but the router stayed silent (ICMP rate limiting,
    /// filtering, or blackholing).
    Expired {
        /// Index of the hop at which the TTL ran out.
        at_hop: usize,
    },
}

impl TransitOutcome {
    /// The delivered datagram, if any.
    pub fn delivered(self) -> Option<(IpDatagram, SimDuration)> {
        match self {
            TransitOutcome::Delivered { datagram, delay } => Some((datagram, delay)),
            _ => None,
        }
    }

    /// Whether the datagram reached the destination.
    pub fn is_delivered(&self) -> bool {
        matches!(self, TransitOutcome::Delivered { .. })
    }
}

/// A unidirectional forwarding path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Path {
    /// The hops, in forwarding order (nearest to the sender first).
    pub hops: Vec<Hop>,
    /// Scheduled impairments applied at path entry.  Empty by default —
    /// and an empty plan consumes no RNG draws, keeping fault-free paths
    /// bit-identical to the pre-fault world.
    #[serde(default)]
    pub fault: FaultPlan,
}

impl Path {
    /// An empty (zero-hop, loss-free, delay-free) path; useful in unit tests.
    pub fn empty() -> Self {
        Path {
            hops: Vec::new(),
            fault: FaultPlan::default(),
        }
    }

    /// Build a path from hops.
    pub fn new(hops: Vec<Hop>) -> Self {
        Path {
            hops,
            fault: FaultPlan::default(),
        }
    }

    /// Attach a fault plan (builder style).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Sum of all hop delays (the one-way latency of the path).
    pub fn one_way_delay(&self) -> SimDuration {
        self.hops
            .iter()
            .fold(SimDuration::ZERO, |acc, hop| acc + hop.delay)
    }

    /// The ECN codepoint a packet sent with `sent` would carry on arrival,
    /// ignoring loss, AQM randomness and TTL.  This is the "ground truth"
    /// the measurement pipeline compares observations against.
    pub fn expected_arrival_ecn(&self, sent: EcnCodepoint) -> EcnCodepoint {
        self.hops
            .iter()
            .fold(sent, |ecn, hop| hop.router.ecn_policy.apply(ecn))
    }

    /// Whether any router on the path has an impairing ECN policy.
    pub fn has_ecn_impairment(&self) -> bool {
        self.hops
            .iter()
            .any(|hop| hop.router.ecn_policy.is_impairing())
    }

    /// Send `datagram` down the path.
    ///
    /// The datagram's TTL is decremented at every hop; if it reaches zero the
    /// router either answers with an ICMP time-exceeded quotation of the
    /// datagram *as it arrived at that router* (so upstream rewrites are
    /// visible in the quote) or stays silent, according to its
    /// [`IcmpBehavior`](crate::router::IcmpBehavior).
    pub fn transit<R: Rng + ?Sized>(&self, datagram: &IpDatagram, rng: &mut R) -> TransitOutcome {
        self.transit_inner(datagram, rng, None)
    }

    /// Send `datagram` down the path at virtual time `now`, passing every hop
    /// whose router has a queue registered in `queues` through that **shared**
    /// egress queue: the packet competes for space with every other flow
    /// crossing the same router, picks up the queueing delay, and may be
    /// CE-marked or dropped based on the *combined* occupancy.
    ///
    /// With an empty [`SharedQueues`] this is exactly [`Path::transit`] —
    /// same outcomes, same RNG draws — which is what keeps the single-flow
    /// wrappers bit-identical to the legacy drivers.
    pub fn transit_shared<R: Rng + ?Sized>(
        &self,
        datagram: &IpDatagram,
        now: SimInstant,
        rng: &mut R,
        queues: &mut SharedQueues,
    ) -> TransitOutcome {
        self.transit_inner(datagram, rng, Some((now, queues)))
    }

    fn transit_inner<R: Rng + ?Sized>(
        &self,
        datagram: &IpDatagram,
        rng: &mut R,
        mut shared: Option<(SimInstant, &mut SharedQueues)>,
    ) -> TransitOutcome {
        let mut current = datagram.clone();
        let mut elapsed = SimDuration::ZERO;

        // Fault injection happens once, at path entry, before any hop sees
        // the packet.  The guard keeps clean paths draw-free; timed windows
        // are evaluated at the engine clock when present, at the epoch for
        // the un-timed `transit` entry point.
        if !self.fault.is_empty() {
            let now = match shared.as_ref() {
                Some((now, _)) => *now,
                None => SimInstant::EPOCH,
            };
            let verdict = self.fault.apply(now, current.payload.len(), rng);
            if let Some((_, queues)) = shared.as_mut() {
                queues.record_fault(&verdict);
            }
            if verdict.drop.is_some() {
                // Fault drops report hop 0: the plan guards the path entry.
                return TransitOutcome::Dropped { at_hop: 0 };
            }
            elapsed += verdict.extra_delay;
            if let Some(index) = verdict.corrupt_byte {
                current.payload[index] ^= 0x01;
            }
        }

        for (index, hop) in self.hops.iter().enumerate() {
            elapsed += hop.delay;

            // Queue loss happens before the router looks at the packet.
            if hop.loss > 0.0 && rng.gen_bool(hop.loss) {
                return TransitOutcome::Dropped { at_hop: index };
            }

            // TTL handling: the quote shows the packet as received.
            let ttl_after = current.header.ttl().saturating_sub(1);
            if ttl_after == 0 {
                let respond = hop.router.icmp.response_probability > 0.0
                    && rng.gen_bool(hop.router.icmp.response_probability);
                if !respond {
                    return TransitOutcome::Expired { at_hop: index };
                }
                let response = build_time_exceeded(&hop.router, &current);
                // The ICMP message travels back over the hops already crossed.
                let return_delay: SimDuration = self.hops[..=index]
                    .iter()
                    .fold(SimDuration::ZERO, |acc, h| acc + h.delay);
                return TransitOutcome::TimeExceeded {
                    at_hop: index,
                    response,
                    delay: elapsed + return_delay,
                };
            }
            current.header.set_ttl(ttl_after);

            // Rewrite policies.
            let ecn_in = current.header.ecn();
            current.header.set_ecn(hop.router.ecn_policy.apply(ecn_in));
            let dscp_in = current.header.dscp();
            current
                .header
                .set_dscp(hop.router.dscp_policy.apply(dscp_in));
            if hop.router.ecn_policy == crate::policy::EcnPolicy::BleachTos {
                current.header.set_dscp(qem_packet::ecn::Dscp::BEST_EFFORT);
            }

            // Shared egress queue (engine scenarios only): combined-occupancy
            // marking and tail drop, plus the queueing delay.
            if let Some((now, queues)) = shared.as_mut() {
                let (decision, wait) = queues.admit(hop.router.id, *now, current.header.ecn(), rng);
                match decision {
                    AqmDecision::Forward(ecn) => current.header.set_ecn(ecn),
                    AqmDecision::Drop => return TransitOutcome::Dropped { at_hop: index },
                }
                elapsed += wait;
            }

            // AQM marking / dropping.
            if let Some(aqm) = &hop.router.aqm {
                match aqm.apply(current.header.ecn(), rng) {
                    AqmDecision::Forward(ecn) => current.header.set_ecn(ecn),
                    AqmDecision::Drop => return TransitOutcome::Dropped { at_hop: index },
                }
            }
        }
        TransitOutcome::Delivered {
            datagram: current,
            delay: elapsed,
        }
    }
}

/// Build the ICMP time-exceeded response a router sends for `expired`.
fn build_time_exceeded(router: &Router, expired: &IpDatagram) -> IpDatagram {
    let v6 = expired.header.is_v6();
    let full_quote = expired.to_bytes();
    let quote_len = router.icmp.quote_bytes.min(full_quote.len());
    let message = IcmpMessage::TimeExceeded {
        v6,
        quote: full_quote[..quote_len].to_vec(),
    };
    let payload = message.encode();
    let header = match (router.address, expired.header.src()) {
        (IpAddr::V4(src), IpAddr::V4(dst)) => {
            IpHeader::V4(Ipv4Header::new(src, dst, IpProtocol::Icmp, 64))
        }
        (IpAddr::V6(src), IpAddr::V6(dst)) => {
            IpHeader::V6(Ipv6Header::new(src, dst, IpProtocol::Icmpv6, 64))
        }
        // Mixed families can only happen if a topology was mis-built; answer
        // from the router's address family towards a mapped destination so
        // the caller still sees *something* rather than a panic.
        (IpAddr::V4(src), IpAddr::V6(_)) => IpHeader::V4(Ipv4Header::new(
            src,
            std::net::Ipv4Addr::UNSPECIFIED,
            IpProtocol::Icmp,
            64,
        )),
        (IpAddr::V6(src), IpAddr::V4(_)) => IpHeader::V6(Ipv6Header::new(
            src,
            std::net::Ipv6Addr::UNSPECIFIED,
            IpProtocol::Icmpv6,
            64,
        )),
    };
    IpDatagram::new(header, payload)
}

/// A bidirectional path between a client and a server.
///
/// The reverse direction is modelled separately because the paper repeatedly
/// stresses that tracebox can only observe the forward path (§4.2, §6.3) —
/// reverse-path impairments stay invisible to the tracer but still affect the
/// server's view of client-set codepoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DuplexPath {
    /// Client → server direction.
    pub forward: Path,
    /// Server → client direction.
    pub reverse: Path,
}

impl DuplexPath {
    /// Build from forward and reverse paths.
    pub fn new(forward: Path, reverse: Path) -> Self {
        DuplexPath { forward, reverse }
    }

    /// A duplex path whose reverse direction mirrors the forward hops with
    /// transparent policies (the common case: impairments sit on one side).
    pub fn symmetric_clean_reverse(forward: Path) -> Self {
        let reverse = Path::new(
            forward
                .hops
                .iter()
                .rev()
                .map(|hop| {
                    let mut router = hop.router.clone();
                    // The reverse egress of a router is a different queue
                    // than its forward egress (see RouterId docs).
                    router.id = router.id.reverse_direction();
                    router.ecn_policy = crate::policy::EcnPolicy::Pass;
                    router.dscp_policy = crate::policy::DscpPolicy::Pass;
                    router.aqm = None;
                    Hop {
                        router,
                        delay: hop.delay,
                        loss: hop.loss,
                    }
                })
                .collect(),
        );
        DuplexPath { forward, reverse }
    }

    /// Round-trip time of the duplex path.
    pub fn rtt(&self) -> SimDuration {
        self.forward.one_way_delay() + self.reverse.one_way_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EcnPolicy;
    use crate::router::{IcmpBehavior, Router};
    use crate::topology::Asn;
    use qem_packet::ecn::EcnCodepoint;
    use qem_packet::ip::{IpHeader, Ipv4Header};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn dgram(ttl: u8, ecn: EcnCodepoint) -> IpDatagram {
        let header = Ipv4Header::new(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(198, 51, 100, 99),
            IpProtocol::Udp,
            ttl,
        )
        .with_ecn(ecn);
        IpDatagram::new(IpHeader::V4(header), vec![0xab; 100])
    }

    fn three_hop_path(middle_policy: EcnPolicy) -> Path {
        Path::new(vec![
            Hop::new(Router::transparent(1, Asn(680))),
            Hop::new(Router::transparent(2, Asn(1299)).with_ecn_policy(middle_policy)),
            Hop::new(Router::transparent(3, Asn(13335))),
        ])
    }

    #[test]
    fn clean_path_delivers_unchanged() {
        let path = three_hop_path(EcnPolicy::Pass);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = path.transit(&dgram(64, EcnCodepoint::Ect0), &mut rng);
        let (delivered, delay) = outcome.delivered().unwrap();
        assert_eq!(delivered.header.ecn(), EcnCodepoint::Ect0);
        assert_eq!(delivered.header.ttl(), 61);
        assert_eq!(delay, SimDuration::from_millis(15));
        assert!(!path.has_ecn_impairment());
    }

    #[test]
    fn clearing_router_zeroes_ecn() {
        let path = three_hop_path(EcnPolicy::ClearEcn);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = path.transit(&dgram(64, EcnCodepoint::Ect0), &mut rng);
        let (delivered, _) = outcome.delivered().unwrap();
        assert_eq!(delivered.header.ecn(), EcnCodepoint::NotEct);
        assert_eq!(
            path.expected_arrival_ecn(EcnCodepoint::Ect0),
            EcnCodepoint::NotEct
        );
        assert!(path.has_ecn_impairment());
    }

    #[test]
    fn remarking_router_swaps_ect0_to_ect1() {
        let path = three_hop_path(EcnPolicy::RemarkEct0ToEct1);
        assert_eq!(
            path.expected_arrival_ecn(EcnCodepoint::Ect0),
            EcnCodepoint::Ect1
        );
        assert_eq!(
            path.expected_arrival_ecn(EcnCodepoint::Ce),
            EcnCodepoint::Ce
        );
    }

    #[test]
    fn ttl_expiry_generates_icmp_with_quote() {
        let path = three_hop_path(EcnPolicy::RemarkEct0ToEct1);
        let mut rng = StdRng::seed_from_u64(3);
        // TTL 2: expires at the second hop (index 1), after traversing hop 0.
        let outcome = path.transit(&dgram(2, EcnCodepoint::Ect0), &mut rng);
        match outcome {
            TransitOutcome::TimeExceeded {
                at_hop, response, ..
            } => {
                assert_eq!(at_hop, 1);
                assert_eq!(response.header.protocol(), IpProtocol::Icmp);
                assert_eq!(
                    response.header.dst(),
                    "192.0.2.1".parse::<std::net::IpAddr>().unwrap()
                );
                let icmp = IcmpMessage::decode(&response.payload, false).unwrap();
                // The quote shows the packet as received by hop 1: the
                // re-marking happens *at* hop 1, so the quote still says ECT(0).
                let quoted = IpDatagram::from_bytes(icmp.quote()).unwrap();
                assert_eq!(quoted.header.ecn(), EcnCodepoint::Ect0);
            }
            other => panic!("expected TimeExceeded, got {other:?}"),
        }
    }

    #[test]
    fn quote_reflects_upstream_rewrites() {
        // Clearing at hop 0; TTL expires at hop 2 → quote must show not-ECT.
        let path = Path::new(vec![
            Hop::new(Router::transparent(1, Asn(1299)).with_ecn_policy(EcnPolicy::ClearEcn)),
            Hop::new(Router::transparent(2, Asn(174))),
            Hop::new(Router::transparent(3, Asn(13335))),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = path.transit(&dgram(3, EcnCodepoint::Ect0), &mut rng);
        match outcome {
            TransitOutcome::TimeExceeded { response, .. } => {
                let icmp = IcmpMessage::decode(&response.payload, false).unwrap();
                let quoted = IpDatagram::from_bytes(icmp.quote()).unwrap();
                assert_eq!(quoted.header.ecn(), EcnCodepoint::NotEct);
            }
            other => panic!("expected TimeExceeded, got {other:?}"),
        }
    }

    #[test]
    fn silent_router_expires_without_response() {
        let path = Path::new(vec![Hop::new(
            Router::transparent(1, Asn(680)).with_icmp(IcmpBehavior::silent()),
        )]);
        let mut rng = StdRng::seed_from_u64(1);
        match path.transit(&dgram(1, EcnCodepoint::Ect0), &mut rng) {
            TransitOutcome::Expired { at_hop } => assert_eq!(at_hop, 0),
            other => panic!("expected Expired, got {other:?}"),
        }
    }

    #[test]
    fn lossy_hop_eventually_drops() {
        let path = Path::new(vec![
            Hop::new(Router::transparent(1, Asn(680))).with_loss(1.0)
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            path.transit(&dgram(64, EcnCodepoint::NotEct), &mut rng),
            TransitOutcome::Dropped { at_hop: 0 }
        );
    }

    #[test]
    fn truncated_icmp_quote_respects_router_setting() {
        let path = Path::new(vec![Hop::new(
            Router::transparent(1, Asn(680)).with_icmp(IcmpBehavior::minimal_quote()),
        )]);
        let mut rng = StdRng::seed_from_u64(1);
        match path.transit(&dgram(1, EcnCodepoint::Ect0), &mut rng) {
            TransitOutcome::TimeExceeded { response, .. } => {
                let icmp = IcmpMessage::decode(&response.payload, false).unwrap();
                assert_eq!(icmp.quote().len(), 28);
            }
            other => panic!("expected TimeExceeded, got {other:?}"),
        }
    }

    #[test]
    fn duplex_symmetric_reverse_is_clean() {
        let duplex = DuplexPath::symmetric_clean_reverse(three_hop_path(EcnPolicy::ClearEcn));
        assert!(duplex.forward.has_ecn_impairment());
        assert!(!duplex.reverse.has_ecn_impairment());
        assert_eq!(duplex.rtt(), SimDuration::from_millis(30));
    }

    #[test]
    fn empty_path_delivers_immediately() {
        let path = Path::empty();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = path.transit(&dgram(64, EcnCodepoint::Ect1), &mut rng);
        let (delivered, delay) = outcome.delivered().unwrap();
        assert_eq!(delivered.header.ecn(), EcnCodepoint::Ect1);
        assert_eq!(delay, SimDuration::ZERO);
        assert!(path.is_empty());
        assert_eq!(path.len(), 0);
    }
}
