//! Active queue management models that apply CE marks probabilistically.
//!
//! The study itself only rarely encountered genuine congestion marking (the
//! four "All CE" domains in Table 5 are more likely a broken middlebox), but
//! the paper's discussion section (§9.3) argues that ECT(0)→ECT(1) re-marking
//! interacts badly with L4S (RFC 9330/9331): an L4S queue treats ECT(1) as a
//! promise of scalable congestion control and marks it far more aggressively.
//! To let the repository demonstrate that interaction (the `l4s_ablation`
//! bench), routers can carry an AQM model in addition to their ECN policy.

use crate::policy::EcnPolicy;
use qem_packet::ecn::EcnCodepoint;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which AQM discipline a router applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AqmKind {
    /// Classic RED/CoDel-style marking: ECT packets are marked CE with the
    /// configured probability, not-ECT packets are dropped with the same
    /// probability.
    Classic {
        /// Marking / dropping probability in `[0, 1]`.
        mark_probability: f64,
    },
    /// An L4S dual-queue (RFC 9332-like) model: ECT(1) and CE packets go to
    /// the low-latency queue and are marked with `l4s_mark_probability`;
    /// ECT(0) packets are treated as classic traffic.
    L4sDualQueue {
        /// Marking probability for the classic queue (ECT(0)).
        classic_mark_probability: f64,
        /// Marking probability for the L4S queue (ECT(1)); typically much higher.
        l4s_mark_probability: f64,
    },
    /// Pathological device that marks every ECT packet CE (the "All CE" rows
    /// of Table 5).
    MarkAll,
}

/// AQM configuration attached to a router.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AqmConfig {
    /// The marking discipline.
    pub kind: AqmKind,
}

/// What the AQM decided to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AqmDecision {
    /// Forward the packet with the given (possibly re-marked) codepoint.
    Forward(EcnCodepoint),
    /// Drop the packet (congestion signalling for not-ECT traffic).
    Drop,
}

impl AqmConfig {
    /// A classic AQM with the given marking probability.
    pub fn classic(mark_probability: f64) -> Self {
        AqmConfig {
            kind: AqmKind::Classic { mark_probability },
        }
    }

    /// An L4S dual queue with typical probabilities (1 % classic, 20 % L4S).
    pub fn l4s_default() -> Self {
        AqmConfig {
            kind: AqmKind::L4sDualQueue {
                classic_mark_probability: 0.01,
                l4s_mark_probability: 0.20,
            },
        }
    }

    /// Apply the AQM to a packet carrying `ecn`, using `rng` for the marking
    /// decision.
    pub fn apply<R: Rng + ?Sized>(&self, ecn: EcnCodepoint, rng: &mut R) -> AqmDecision {
        match self.kind {
            AqmKind::Classic { mark_probability } => match ecn {
                EcnCodepoint::NotEct => {
                    if rng.gen_bool(mark_probability.clamp(0.0, 1.0)) {
                        AqmDecision::Drop
                    } else {
                        AqmDecision::Forward(ecn)
                    }
                }
                EcnCodepoint::Ect0 | EcnCodepoint::Ect1 => {
                    if rng.gen_bool(mark_probability.clamp(0.0, 1.0)) {
                        AqmDecision::Forward(EcnCodepoint::Ce)
                    } else {
                        AqmDecision::Forward(ecn)
                    }
                }
                EcnCodepoint::Ce => AqmDecision::Forward(EcnCodepoint::Ce),
            },
            AqmKind::L4sDualQueue {
                classic_mark_probability,
                l4s_mark_probability,
            } => {
                let p = match ecn {
                    EcnCodepoint::Ect1 | EcnCodepoint::Ce => l4s_mark_probability,
                    EcnCodepoint::Ect0 => classic_mark_probability,
                    EcnCodepoint::NotEct => classic_mark_probability,
                };
                match ecn {
                    EcnCodepoint::NotEct => {
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            AqmDecision::Drop
                        } else {
                            AqmDecision::Forward(ecn)
                        }
                    }
                    _ => {
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            AqmDecision::Forward(EcnCodepoint::Ce)
                        } else {
                            AqmDecision::Forward(ecn)
                        }
                    }
                }
            }
            AqmKind::MarkAll => match ecn {
                EcnCodepoint::NotEct => AqmDecision::Forward(ecn),
                _ => AqmDecision::Forward(EcnCodepoint::Ce),
            },
        }
    }

    /// The marking probability an L4S flow (ECT(1)) would experience if a
    /// broken router re-marks classic ECT(0) traffic into the L4S queue.
    /// Used by the ablation bench to quantify the paper's §9.3 concern.
    pub fn effective_mark_probability(&self, ecn: EcnCodepoint) -> f64 {
        match self.kind {
            AqmKind::Classic { mark_probability } => {
                if ecn == EcnCodepoint::NotEct {
                    0.0
                } else {
                    mark_probability
                }
            }
            AqmKind::L4sDualQueue {
                classic_mark_probability,
                l4s_mark_probability,
            } => match ecn {
                EcnCodepoint::Ect1 | EcnCodepoint::Ce => l4s_mark_probability,
                EcnCodepoint::Ect0 => classic_mark_probability,
                EcnCodepoint::NotEct => 0.0,
            },
            AqmKind::MarkAll => {
                if ecn == EcnCodepoint::NotEct {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

/// RED-style marking law for **shared** egress queues, driven by the queue's
/// combined occupancy rather than a per-flow constant.
///
/// Below `min_thresh` packets nothing is marked; at `max_thresh` and above
/// every ECT packet is marked CE; in between the probability ramps
/// linearly.  Not-ECT traffic is never touched by the law (RFC 3168 §6.1.1
/// — TCP SYNs must survive); it is only lost to tail drop when the queue is
/// actually full.  The deterministic extremes are deliberate: they let the
/// shared-bottleneck tests assert marking without depending on RNG draws,
/// and they mean an uncongested queue consumes no randomness at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyAqm {
    /// Occupancy below which nothing is marked.
    pub min_thresh: usize,
    /// Occupancy at which marking probability reaches 1.
    pub max_thresh: usize,
}

impl OccupancyAqm {
    /// Marking probability at the given occupancy.
    pub fn mark_probability(&self, occupancy: usize) -> f64 {
        if occupancy < self.min_thresh {
            0.0
        } else if occupancy >= self.max_thresh {
            1.0
        } else {
            let span = (self.max_thresh - self.min_thresh) as f64;
            (occupancy - self.min_thresh) as f64 / span
        }
    }

    /// Apply the law to a packet carrying `ecn` arriving at a queue holding
    /// `occupancy` packets.  No randomness is consumed in the deterministic
    /// regions (probability 0 or 1).
    ///
    /// This is an ECN-mode queue: only ECT packets are subject to the
    /// marking law; not-ECT traffic (e.g. TCP SYNs, which RFC 3168 §6.1.1
    /// forbids marking) passes and is lost only to tail drop when the queue
    /// is actually full — which [`SharedQueues`](crate::engine::SharedQueues)
    /// handles before consulting this law.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        ecn: EcnCodepoint,
        occupancy: usize,
        rng: &mut R,
    ) -> AqmDecision {
        match ecn {
            EcnCodepoint::Ce => AqmDecision::Forward(EcnCodepoint::Ce),
            EcnCodepoint::NotEct => AqmDecision::Forward(ecn),
            EcnCodepoint::Ect0 | EcnCodepoint::Ect1 => {
                let p = self.mark_probability(occupancy);
                let mark = if p >= 1.0 {
                    true
                } else if p <= 0.0 {
                    false
                } else {
                    rng.gen_bool(p)
                };
                if mark {
                    AqmDecision::Forward(EcnCodepoint::Ce)
                } else {
                    AqmDecision::Forward(ecn)
                }
            }
        }
    }
}

/// Convenience: combine an [`EcnPolicy`] (re-marking middlebox) with an L4S
/// AQM downstream of it and compute the marking probability the flow sees.
/// This is the quantitative core of the §9.3 / L4S ossification argument.
pub fn remark_then_aqm_probability(policy: EcnPolicy, aqm: &AqmConfig, sent: EcnCodepoint) -> f64 {
    let after_policy = policy.apply(sent);
    aqm.effective_mark_probability(after_policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn classic_never_marks_ce_into_something_else() {
        let aqm = AqmConfig::classic(1.0);
        let mut r = rng();
        assert_eq!(
            aqm.apply(EcnCodepoint::Ce, &mut r),
            AqmDecision::Forward(EcnCodepoint::Ce)
        );
    }

    #[test]
    fn classic_marks_ect_and_drops_not_ect_at_p1() {
        let aqm = AqmConfig::classic(1.0);
        let mut r = rng();
        assert_eq!(
            aqm.apply(EcnCodepoint::Ect0, &mut r),
            AqmDecision::Forward(EcnCodepoint::Ce)
        );
        assert_eq!(aqm.apply(EcnCodepoint::NotEct, &mut r), AqmDecision::Drop);
    }

    #[test]
    fn classic_at_p0_is_transparent() {
        let aqm = AqmConfig::classic(0.0);
        let mut r = rng();
        for cp in EcnCodepoint::ALL {
            assert_eq!(aqm.apply(cp, &mut r), AqmDecision::Forward(cp));
        }
    }

    #[test]
    fn l4s_marks_ect1_more_aggressively() {
        let aqm = AqmConfig::l4s_default();
        assert!(
            aqm.effective_mark_probability(EcnCodepoint::Ect1)
                > aqm.effective_mark_probability(EcnCodepoint::Ect0)
        );
    }

    #[test]
    fn mark_all_spares_not_ect() {
        let aqm = AqmConfig {
            kind: AqmKind::MarkAll,
        };
        let mut r = rng();
        assert_eq!(
            aqm.apply(EcnCodepoint::NotEct, &mut r),
            AqmDecision::Forward(EcnCodepoint::NotEct)
        );
        assert_eq!(
            aqm.apply(EcnCodepoint::Ect0, &mut r),
            AqmDecision::Forward(EcnCodepoint::Ce)
        );
    }

    #[test]
    fn occupancy_aqm_ramps_from_zero_to_certain() {
        let aqm = OccupancyAqm {
            min_thresh: 4,
            max_thresh: 8,
        };
        assert_eq!(aqm.mark_probability(0), 0.0);
        assert_eq!(aqm.mark_probability(3), 0.0);
        assert_eq!(aqm.mark_probability(6), 0.5);
        assert_eq!(aqm.mark_probability(8), 1.0);
        assert_eq!(aqm.mark_probability(100), 1.0);

        let mut r = rng();
        // Deterministic regions: no marks below min, certain marks above max.
        assert_eq!(
            aqm.apply(EcnCodepoint::Ect0, 0, &mut r),
            AqmDecision::Forward(EcnCodepoint::Ect0)
        );
        assert_eq!(
            aqm.apply(EcnCodepoint::Ect0, 8, &mut r),
            AqmDecision::Forward(EcnCodepoint::Ce)
        );
        // Not-ECT traffic is never dropped by the marking law (RFC 3168
        // §6.1.1 — think TCP SYNs); only tail drop can lose it.
        assert_eq!(
            aqm.apply(EcnCodepoint::NotEct, 8, &mut r),
            AqmDecision::Forward(EcnCodepoint::NotEct)
        );
        assert_eq!(
            aqm.apply(EcnCodepoint::Ce, 8, &mut r),
            AqmDecision::Forward(EcnCodepoint::Ce)
        );
    }

    #[test]
    fn remarking_raises_l4s_marking_for_classic_flows() {
        // A classic ECT(0) flow passing a re-marking middlebox and then an L4S
        // queue sees the aggressive marking probability — the §9.3 hazard.
        let clean = remark_then_aqm_probability(
            EcnPolicy::Pass,
            &AqmConfig::l4s_default(),
            EcnCodepoint::Ect0,
        );
        let remarked = remark_then_aqm_probability(
            EcnPolicy::RemarkEct0ToEct1,
            &AqmConfig::l4s_default(),
            EcnCodepoint::Ect0,
        );
        assert!(remarked > clean * 10.0);
    }
}
