//! AS-level topology building blocks.
//!
//! The synthetic web landscape (crate `qem-web`) decides *which* transit
//! provider sits between a vantage point and a hosting provider; this module
//! provides the vocabulary for expressing that decision and turning it into a
//! concrete [`Path`].

use crate::path::{DuplexPath, Hop, Path};
use crate::policy::{DscpPolicy, EcnPolicy};
use crate::router::Router;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous system number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u32);

impl Asn {
    /// DFN (German Research Network) — the paper's upstream at the main vantage point.
    pub const DFN: Asn = Asn(680);
    /// Arelion / Telia Carrier — the transit provider the paper identifies as
    /// the main source of ECN clearing and re-marking (AS 1299).
    pub const ARELION: Asn = Asn(1299);
    /// Cogent (AS 174), seen downstream of Arelion in the re-marking cases.
    pub const COGENT: Asn = Asn(174);
    /// Lumen / Level3 (AS 3356), the pre-December-2022 route towards Server Central.
    pub const LEVEL3: Asn = Asn(3356);
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The behaviour of the transit segment between a vantage point and a
/// destination network, as far as ECN is concerned.
///
/// These profiles correspond to the path phenomena the paper observes:
/// clean transit, ToS bleaching (clearing), ECT(0)→ECT(1) re-marking, the
/// double rewrite (re-mark then clear), and pathological all-CE marking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitProfile {
    /// No ECN-relevant rewriting anywhere on the path.
    Clean,
    /// A router in `asn` clears the ECN bits (ToS bleaching).
    Clearing {
        /// AS of the clearing router.
        asn: Asn,
    },
    /// A router in `asn` re-marks ECT(0) to ECT(1).
    Remarking {
        /// AS of the re-marking router.
        asn: Asn,
    },
    /// A router in `first` re-marks ECT(0)→ECT(1), a later router in `second`
    /// clears ECT to not-ECT (the AS 1299 double rewrite of §7.3).
    RemarkThenClear {
        /// AS of the re-marking router.
        first: Asn,
        /// AS of the clearing router.
        second: Asn,
    },
    /// A router in `asn` marks every ECT packet CE ("All CE" rows of Table 5).
    MarkAllCe {
        /// AS of the marking router.
        asn: Asn,
    },
}

impl TransitProfile {
    /// Whether the profile impairs ECN in a way QUIC's validation would flag.
    pub fn is_impairing(self) -> bool {
        !matches!(self, TransitProfile::Clean)
    }

    /// The AS to which a tracebox-style analysis would attribute the
    /// *first visible* change, if any.
    pub fn attributed_asn(self) -> Option<Asn> {
        match self {
            TransitProfile::Clean => None,
            TransitProfile::Clearing { asn }
            | TransitProfile::Remarking { asn }
            | TransitProfile::MarkAllCe { asn } => Some(asn),
            TransitProfile::RemarkThenClear { first, .. } => Some(first),
        }
    }
}

/// Builder assembling a [`Path`] hop by hop with sensible defaults.
#[derive(Debug, Clone, Default)]
pub struct PathBuilder {
    hops: Vec<Hop>,
    next_router_id: u32,
    v6: bool,
    default_delay: SimDuration,
    default_loss: f64,
}

impl PathBuilder {
    /// Start a new IPv4 path.
    pub fn new() -> Self {
        PathBuilder {
            hops: Vec::new(),
            next_router_id: 1,
            v6: false,
            default_delay: SimDuration::from_millis(3),
            default_loss: 0.0,
        }
    }

    /// Start a new IPv6 path (router ICMP sources get IPv6 addresses).
    pub fn new_v6() -> Self {
        PathBuilder {
            v6: true,
            ..PathBuilder::new()
        }
    }

    /// Set the per-hop delay used for subsequently added hops.
    pub fn default_delay(mut self, delay: SimDuration) -> Self {
        self.default_delay = delay;
        self
    }

    /// Set the per-hop loss probability used for subsequently added hops.
    pub fn default_loss(mut self, loss: f64) -> Self {
        self.default_loss = loss.clamp(0.0, 1.0);
        self
    }

    fn make_router(&mut self, asn: Asn) -> Router {
        let id = self.next_router_id;
        self.next_router_id += 1;
        if self.v6 {
            Router::transparent_v6(id, asn)
        } else {
            Router::transparent(id, asn)
        }
    }

    /// Append `count` transparent routers belonging to `asn`.
    pub fn transparent_hops(mut self, asn: Asn, count: usize) -> Self {
        for _ in 0..count {
            let router = self.make_router(asn);
            let hop = Hop::new(router)
                .with_delay(self.default_delay)
                .with_loss(self.default_loss);
            self.hops.push(hop);
        }
        self
    }

    /// Append a router in `asn` applying `policy`.
    pub fn policy_hop(mut self, asn: Asn, policy: EcnPolicy) -> Self {
        let router = self.make_router(asn).with_ecn_policy(policy);
        let hop = Hop::new(router)
            .with_delay(self.default_delay)
            .with_loss(self.default_loss);
        self.hops.push(hop);
        self
    }

    /// Append a fully customised router.
    pub fn custom_hop(mut self, router: Router) -> Self {
        let hop = Hop::new(router)
            .with_delay(self.default_delay)
            .with_loss(self.default_loss);
        self.hops.push(hop);
        self
    }

    /// Append a router that resets DSCP but leaves ECN alone (the benign
    /// AS-boundary behaviour the tracer must *not* flag).
    pub fn dscp_reset_hop(mut self, asn: Asn) -> Self {
        let router = self
            .make_router(asn)
            .with_dscp_policy(DscpPolicy::ResetToBestEffort);
        self.hops.push(
            Hop::new(router)
                .with_delay(self.default_delay)
                .with_loss(self.default_loss),
        );
        self
    }

    /// Finish building.
    pub fn build(self) -> Path {
        Path::new(self.hops)
    }
}

/// Build the canonical vantage-point → destination path used throughout the
/// reproduction: a couple of hops in the vantage AS, a transit segment shaped
/// by `profile`, and an ingress segment in the destination AS.
pub fn build_transit_path(
    vantage_asn: Asn,
    destination_asn: Asn,
    profile: TransitProfile,
    v6: bool,
) -> Path {
    let builder = if v6 {
        PathBuilder::new_v6()
    } else {
        PathBuilder::new()
    };
    let builder = builder.transparent_hops(vantage_asn, 2);
    let builder = match profile {
        TransitProfile::Clean => builder.transparent_hops(Asn::LEVEL3, 3),
        TransitProfile::Clearing { asn } => builder
            .transparent_hops(asn, 1)
            .policy_hop(asn, EcnPolicy::BleachTos)
            .transparent_hops(asn, 1),
        TransitProfile::Remarking { asn } => builder
            .transparent_hops(asn, 1)
            .policy_hop(asn, EcnPolicy::RemarkEct0ToEct1)
            .transparent_hops(asn, 1),
        TransitProfile::RemarkThenClear { first, second } => builder
            .policy_hop(first, EcnPolicy::RemarkEct0ToEct1)
            .transparent_hops(first, 1)
            .policy_hop(second, EcnPolicy::RemarkEctToNotEct)
            .transparent_hops(second, 1),
        TransitProfile::MarkAllCe { asn } => builder
            .transparent_hops(asn, 1)
            .policy_hop(asn, EcnPolicy::MarkAllCe),
    };
    builder.transparent_hops(destination_asn, 2).build()
}

/// Build a [`DuplexPath`] whose forward direction follows `profile` and whose
/// reverse direction optionally applies `reverse_profile`.
pub fn build_duplex_path(
    vantage_asn: Asn,
    destination_asn: Asn,
    profile: TransitProfile,
    reverse_profile: TransitProfile,
    v6: bool,
) -> DuplexPath {
    let forward = build_transit_path(vantage_asn, destination_asn, profile, v6);
    let mut reverse = build_transit_path(destination_asn, vantage_asn, reverse_profile, v6);
    // Both directions are numbered from 1 by their builders; mark the
    // reverse ids so a shared queue registered at a forward hop never
    // captures a numerically-colliding reverse hop (see RouterId docs).
    for hop in &mut reverse.hops {
        hop.router.id = hop.router.id.reverse_direction();
    }
    DuplexPath::new(forward, reverse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qem_packet::ecn::EcnCodepoint;

    #[test]
    fn well_known_asns() {
        assert_eq!(Asn::ARELION.0, 1299);
        assert_eq!(Asn::COGENT.0, 174);
        assert_eq!(Asn::ARELION.to_string(), "AS1299");
    }

    #[test]
    fn profile_attribution() {
        assert_eq!(TransitProfile::Clean.attributed_asn(), None);
        assert_eq!(
            TransitProfile::Clearing { asn: Asn::ARELION }.attributed_asn(),
            Some(Asn::ARELION)
        );
        assert_eq!(
            TransitProfile::RemarkThenClear {
                first: Asn::ARELION,
                second: Asn::COGENT
            }
            .attributed_asn(),
            Some(Asn::ARELION)
        );
        assert!(!TransitProfile::Clean.is_impairing());
        assert!(TransitProfile::MarkAllCe { asn: Asn(64500) }.is_impairing());
    }

    #[test]
    fn builder_produces_unique_router_ids() {
        let path = PathBuilder::new()
            .transparent_hops(Asn::DFN, 2)
            .policy_hop(Asn::ARELION, EcnPolicy::ClearEcn)
            .transparent_hops(Asn(13335), 2)
            .build();
        let mut ids: Vec<_> = path.hops.iter().map(|h| h.router.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), path.len());
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn transit_path_shapes_match_profiles() {
        let clean = build_transit_path(Asn::DFN, Asn(16509), TransitProfile::Clean, false);
        assert_eq!(
            clean.expected_arrival_ecn(EcnCodepoint::Ect0),
            EcnCodepoint::Ect0
        );
        assert!(!clean.has_ecn_impairment());

        let clearing = build_transit_path(
            Asn::DFN,
            Asn(20473),
            TransitProfile::Clearing { asn: Asn::ARELION },
            false,
        );
        assert_eq!(
            clearing.expected_arrival_ecn(EcnCodepoint::Ect0),
            EcnCodepoint::NotEct
        );

        let remarking = build_transit_path(
            Asn::DFN,
            Asn(20473),
            TransitProfile::Remarking { asn: Asn::ARELION },
            false,
        );
        assert_eq!(
            remarking.expected_arrival_ecn(EcnCodepoint::Ect0),
            EcnCodepoint::Ect1
        );

        let double = build_transit_path(
            Asn::DFN,
            Asn(20473),
            TransitProfile::RemarkThenClear {
                first: Asn::ARELION,
                second: Asn::COGENT,
            },
            false,
        );
        assert_eq!(
            double.expected_arrival_ecn(EcnCodepoint::Ect0),
            EcnCodepoint::NotEct
        );

        let all_ce = build_transit_path(
            Asn::DFN,
            Asn(20473),
            TransitProfile::MarkAllCe { asn: Asn(64500) },
            false,
        );
        assert_eq!(
            all_ce.expected_arrival_ecn(EcnCodepoint::Ect0),
            EcnCodepoint::Ce
        );
    }

    #[test]
    fn v6_paths_use_v6_router_addresses() {
        let path = build_transit_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Clearing { asn: Asn::ARELION },
            true,
        );
        assert!(path.hops.iter().all(|h| h.router.address.is_ipv6()));
    }

    #[test]
    fn duplex_paths_can_differ_per_direction() {
        let duplex = build_duplex_path(
            Asn::DFN,
            Asn(13335),
            TransitProfile::Clearing { asn: Asn::ARELION },
            TransitProfile::Clean,
            false,
        );
        assert!(duplex.forward.has_ecn_impairment());
        assert!(!duplex.reverse.has_ecn_impairment());
    }

    #[test]
    fn dscp_reset_hop_is_not_an_ecn_impairment() {
        let path = PathBuilder::new().dscp_reset_hop(Asn::DFN).build();
        assert!(!path.has_ecn_impairment());
    }
}
