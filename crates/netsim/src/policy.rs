//! Per-router ECN and DSCP rewrite policies.
//!
//! These model the middlebox behaviours the paper observes in the wild:
//!
//! * routers that forward the traffic-class octet untouched,
//! * routers that clear the two ECN bits (§6.1, "Cleared ECN Codepoints" —
//!   attributed mostly to AS 1299),
//! * routers that re-mark `ECT(0)` to `ECT(1)` (§7.1/§7.3 — the validation
//!   failure class that also threatens L4S),
//! * routers that re-mark ECT to `not-ECT` only after a first re-marking hop
//!   (the AS 1299 double rewrite seen in §7.3),
//! * legacy devices that bleach the whole former ToS octet (DSCP and ECN).

use qem_packet::ecn::{Dscp, EcnCodepoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a router rewrites the ECN field of forwarded packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EcnPolicy {
    /// Forward the codepoint unchanged (the default, and what RFC 3168 asks for).
    Pass,
    /// Clear both ECN bits: every packet leaves as `not-ECT`.
    ClearEcn,
    /// Re-mark `ECT(0)` to `ECT(1)`; other codepoints pass unchanged.
    RemarkEct0ToEct1,
    /// Re-mark any ECT codepoint to `not-ECT` but leave `CE` alone
    /// (observed as the second stage of the AS 1299 double rewrite).
    RemarkEctToNotEct,
    /// Mark every ECT packet `CE` (broken device or severe congestion).
    MarkAllCe,
    /// Rewrite the entire former ToS octet to zero: DSCP *and* ECN are lost.
    /// This is the "legacy router rewriting the complete ToS field" hypothesis
    /// from §6.1.
    BleachTos,
    /// Rewrite `CE` back to `ECT(0)` but forward every other codepoint
    /// untouched: the congestion signal set by an upstream AQM is destroyed
    /// in transit while the path still *looks* ECN-capable to both endpoints.
    /// This is the CE-blackholing failure mode the broken-path workload
    /// variants exercise — marks are spent at the bottleneck, but the
    /// feedback loop never closes.
    EraseCe,
}

impl EcnPolicy {
    /// Apply the policy to a codepoint, returning the forwarded codepoint.
    pub fn apply(self, ecn: EcnCodepoint) -> EcnCodepoint {
        match self {
            EcnPolicy::Pass => ecn,
            EcnPolicy::ClearEcn | EcnPolicy::BleachTos => EcnCodepoint::NotEct,
            EcnPolicy::RemarkEct0ToEct1 => {
                if ecn == EcnCodepoint::Ect0 {
                    EcnCodepoint::Ect1
                } else {
                    ecn
                }
            }
            EcnPolicy::RemarkEctToNotEct => {
                if ecn.is_ect() {
                    EcnCodepoint::NotEct
                } else {
                    ecn
                }
            }
            EcnPolicy::MarkAllCe => {
                if ecn == EcnCodepoint::NotEct {
                    EcnCodepoint::NotEct
                } else {
                    EcnCodepoint::Ce
                }
            }
            EcnPolicy::EraseCe => {
                if ecn == EcnCodepoint::Ce {
                    EcnCodepoint::Ect0
                } else {
                    ecn
                }
            }
        }
    }

    /// Whether the policy can change at least one codepoint, i.e. whether a
    /// path containing such a router is impaired for ECN purposes.
    pub fn is_impairing(self) -> bool {
        self != EcnPolicy::Pass
    }
}

impl fmt::Display for EcnPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EcnPolicy::Pass => "pass",
            EcnPolicy::ClearEcn => "clear-ecn",
            EcnPolicy::RemarkEct0ToEct1 => "remark-ect0-to-ect1",
            EcnPolicy::RemarkEctToNotEct => "remark-ect-to-not-ect",
            EcnPolicy::MarkAllCe => "mark-all-ce",
            EcnPolicy::BleachTos => "bleach-tos",
            EcnPolicy::EraseCe => "erase-ce",
        };
        f.write_str(s)
    }
}

/// How a router rewrites the DSCP field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DscpPolicy {
    /// Forward the DSCP unchanged.
    #[default]
    Pass,
    /// Reset the DSCP to best effort (common at AS boundaries) without
    /// touching the ECN bits — the *correct* way to bleach.
    ResetToBestEffort,
    /// Rewrite to a fixed DSCP value.
    Rewrite(Dscp),
}

impl DscpPolicy {
    /// Apply the policy to a DSCP value.
    pub fn apply(self, dscp: Dscp) -> Dscp {
        match self {
            DscpPolicy::Pass => dscp,
            DscpPolicy::ResetToBestEffort => Dscp::BEST_EFFORT,
            DscpPolicy::Rewrite(d) => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_is_identity() {
        for cp in EcnCodepoint::ALL {
            assert_eq!(EcnPolicy::Pass.apply(cp), cp);
        }
        assert!(!EcnPolicy::Pass.is_impairing());
    }

    #[test]
    fn clear_maps_everything_to_not_ect() {
        for cp in EcnCodepoint::ALL {
            assert_eq!(EcnPolicy::ClearEcn.apply(cp), EcnCodepoint::NotEct);
        }
        assert!(EcnPolicy::ClearEcn.is_impairing());
    }

    #[test]
    fn remark_only_touches_ect0() {
        assert_eq!(
            EcnPolicy::RemarkEct0ToEct1.apply(EcnCodepoint::Ect0),
            EcnCodepoint::Ect1
        );
        assert_eq!(
            EcnPolicy::RemarkEct0ToEct1.apply(EcnCodepoint::Ect1),
            EcnCodepoint::Ect1
        );
        assert_eq!(
            EcnPolicy::RemarkEct0ToEct1.apply(EcnCodepoint::Ce),
            EcnCodepoint::Ce
        );
        assert_eq!(
            EcnPolicy::RemarkEct0ToEct1.apply(EcnCodepoint::NotEct),
            EcnCodepoint::NotEct
        );
    }

    #[test]
    fn remark_to_not_ect_spares_ce() {
        assert_eq!(
            EcnPolicy::RemarkEctToNotEct.apply(EcnCodepoint::Ect1),
            EcnCodepoint::NotEct
        );
        assert_eq!(
            EcnPolicy::RemarkEctToNotEct.apply(EcnCodepoint::Ce),
            EcnCodepoint::Ce
        );
    }

    #[test]
    fn mark_all_ce_spares_not_ect() {
        assert_eq!(
            EcnPolicy::MarkAllCe.apply(EcnCodepoint::NotEct),
            EcnCodepoint::NotEct
        );
        assert_eq!(
            EcnPolicy::MarkAllCe.apply(EcnCodepoint::Ect0),
            EcnCodepoint::Ce
        );
    }

    #[test]
    fn double_rewrite_composes_like_as1299() {
        // §7.3: first hop re-marks ECT(0) → ECT(1), later hop re-marks ECT → not-ECT.
        let after_first = EcnPolicy::RemarkEct0ToEct1.apply(EcnCodepoint::Ect0);
        let after_second = EcnPolicy::RemarkEctToNotEct.apply(after_first);
        assert_eq!(after_second, EcnCodepoint::NotEct);
    }

    #[test]
    fn erase_ce_blackholes_only_the_congestion_signal() {
        assert_eq!(
            EcnPolicy::EraseCe.apply(EcnCodepoint::Ce),
            EcnCodepoint::Ect0
        );
        for cp in [EcnCodepoint::NotEct, EcnCodepoint::Ect0, EcnCodepoint::Ect1] {
            assert_eq!(EcnPolicy::EraseCe.apply(cp), cp);
        }
        assert!(EcnPolicy::EraseCe.is_impairing());
    }

    #[test]
    fn dscp_policies() {
        let d = Dscp::new(46);
        assert_eq!(DscpPolicy::Pass.apply(d), d);
        assert_eq!(DscpPolicy::ResetToBestEffort.apply(d), Dscp::BEST_EFFORT);
        assert_eq!(DscpPolicy::Rewrite(Dscp::CS1).apply(d), Dscp::CS1);
    }
}
