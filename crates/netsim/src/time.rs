//! Virtual time used by the simulator and the sans-IO endpoints.
//!
//! Real wall-clock time would make campaigns over hundreds of thousands of
//! simulated connections both slow and non-deterministic.  Instead every
//! endpoint and every path shares a microsecond-granularity virtual timeline.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A span of virtual time with microsecond granularity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    /// Multiply by an integer factor (saturating).
    fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A point on the virtual timeline.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The origin of the timeline.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Construct from microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimInstant(micros)
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_micros())
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: SimInstant,
}

impl SimClock {
    /// A clock starting at the epoch.
    pub fn new() -> Self {
        SimClock {
            now: SimInstant::EPOCH,
        }
    }

    /// The current instant.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advance the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now = self.now + d;
    }

    /// Advance the clock to `instant` if it lies in the future.
    pub fn advance_to(&mut self, instant: SimInstant) {
        if instant > self.now {
            self.now = instant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_millis(), 0);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!((t1 - t0).as_millis(), 10);
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn clock_is_monotone() {
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_millis(5));
        let t = clock.now();
        clock.advance_to(SimInstant::EPOCH); // must not go backwards
        assert_eq!(clock.now(), t);
        clock.advance_to(t + SimDuration::from_secs(1));
        assert!(clock.now() > t);
    }

    #[test]
    fn duration_display_scales() {
        assert_eq!(SimDuration::from_micros(500).to_string(), "500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.0ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn saturating_and_mul() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(4);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!((b * 3).as_millis(), 12);
    }
}
