//! A discrete-event simulation engine driving many concurrent flows over a
//! shared topology.
//!
//! The per-connection drivers (`qem_quic::driver`, `qem_tcp`) each step a
//! private path: no two flows ever share a queue, so AQM marking probability
//! is a per-flow constant rather than an emergent property of congestion.
//! This module adds the missing piece, in three layers:
//!
//! * [`Scheduler`] — the event-scheduling boundary: virtual time, FIFO
//!   tie-breaking (two events scheduled for the same instant fire in the
//!   order they were scheduled, on every run, on every machine), O(1)
//!   cancellation by [`EventId`], and same-instant batch draining.  Two
//!   implementations share the contract: [`EventQueue`], the original
//!   binary heap, kept as the reference oracle differential tests compare
//!   against; and [`TimerWheel`](crate::wheel::TimerWheel), the
//!   hierarchical timer wheel production engines run on.
//! * [`SharedQueues`] — real egress queues attached to routers by
//!   [`RouterId`].  Packets from *all* flows crossing a registered router
//!   occupy the same queue; [`OccupancyAqm`](crate::aqm::OccupancyAqm) marks
//!   CE based on the combined occupancy, so congestion experienced by one
//!   flow is caused by the others — the load-dependent regime of the paper's
//!   §6.2/§6.3 findings.
//! * [`Engine`] — the scheduler that owns virtual time and wakes sans-IO
//!   [`Flow`]s.  A flow does whatever work it can at the current instant
//!   (transmit, receive, time out) and either asks to sleep until its next
//!   timer or declares itself done.
//!
//! Single-flow wrappers (`run_connection`, `run_tcp_connection`) run a
//! one-flow engine with **no** registered queues; in that configuration the
//! shared-queue hooks consume no randomness and add no delay, so legacy
//! callers get bit-identical results.

use crate::aqm::{AqmDecision, OccupancyAqm};
use crate::fault::{FaultStats, FaultVerdict};
use crate::path::Path;
use crate::router::RouterId;
use crate::time::{SimDuration, SimInstant};
use crate::wheel::TimerWheel;
use qem_obs::{Histogram, MetricsSnapshot, TraceRing};
use qem_packet::ecn::EcnCodepoint;
use qem_packet::ip::{IpDatagram, IpHeader, IpProtocol, Ipv4Header, Ipv6Header};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::net::IpAddr;

// ---------------------------------------------------------------------------
// The scheduler boundary
// ---------------------------------------------------------------------------

/// Identifier of a scheduled event, unique within one [`Scheduler`].
///
/// The encoding is implementation-private: the heap hands out sequence
/// numbers, the wheel hands out packed arena keys.  Ids are only meaningful
/// to the scheduler that produced them — hold on to one to cancel the event
/// later via [`Scheduler::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// Running counters of one [`Scheduler`], surfaced through
/// [`EngineCore::telemetry`] so cancellations are never silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Events accepted by `schedule_at` / `schedule_after`.
    pub scheduled: u64,
    /// Successful `cancel` calls.
    pub cancelled: u64,
    /// Cancelled (stale) entries encountered and discarded while popping or
    /// cascading — every successful cancel eventually shows up here too.
    pub stale: u64,
}

/// The event-scheduling contract of the engine: virtual time with FIFO
/// tie-breaking, cancellation by [`EventId`] and same-instant batch
/// draining.
///
/// Both implementations — [`EventQueue`] (binary heap, the reference
/// oracle) and [`TimerWheel`](crate::wheel::TimerWheel) (the production
/// scheduler) — produce bit-identical `(fire time, schedule order)` event
/// sequences for identical workloads; `tests/scheduler_differential.rs`
/// and the schedule/cancel proptests pin that equivalence down.
pub trait Scheduler<T> {
    /// The current virtual time: the fire time of the last event handed
    /// out (cancelled events drained past also advance the clock).
    fn now(&self) -> SimInstant;

    /// Number of pending (scheduled, neither fired nor cancelled) events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at `at` (clamped to the present: events cannot
    /// fire in the past).  The returned id can cancel the event until it
    /// fires.
    fn schedule_at(&mut self, at: SimInstant, payload: T) -> EventId;

    /// Schedule `payload` after `delay` from the current instant.
    fn schedule_after(&mut self, delay: SimDuration, payload: T) -> EventId;

    /// Cancel a pending event.  Returns `false` — and counts nothing — when
    /// the id already fired, was already cancelled, or never existed.
    fn cancel(&mut self, id: EventId) -> bool;

    /// Pop the next event, advancing virtual time to its fire time.
    fn pop(&mut self) -> Option<Event<T>>;

    /// Drain every event firing at the next occupied instant into `out`
    /// (cleared first), in FIFO order; returns the batch size.  Equivalent
    /// to repeated [`pop`](Scheduler::pop) while the fire time stays equal —
    /// the engine uses it to amortise dispatch across same-instant wakes.
    fn pop_batch(&mut self, out: &mut Vec<Event<T>>) -> usize;

    /// Scheduling/cancellation counters (monotone).
    fn stats(&self) -> SchedulerStats;
}

/// A popped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event<T> {
    /// When the event fires.
    pub at: SimInstant,
    /// The event's id (for [`EventQueue`], also its FIFO sequence number).
    pub id: EventId,
    /// The caller-supplied payload.
    pub payload: T,
}

#[derive(Debug)]
struct Scheduled<T> {
    at: SimInstant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Primary: fire time.  Tie-break: schedule order (FIFO) — the
        // property the determinism gate leans on.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A binary-heap event queue over virtual time with FIFO tie-breaking.
///
/// The original engine scheduler, kept as the slow-but-obviously-correct
/// reference oracle behind the [`Scheduler`] trait: differential tests
/// drive it and [`TimerWheel`](crate::wheel::TimerWheel) through identical
/// workloads and assert identical event sequences.  Cancellation here is
/// O(n) (a membership scan plus a lazy tombstone) — the wheel is where
/// cancels are O(1).
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Scheduled<T>>>,
    /// Sequence numbers of cancelled-but-still-heaped events, skipped (and
    /// counted) lazily on pop.
    tombstones: BTreeSet<u64>,
    next_seq: u64,
    now: SimInstant,
    stats: SchedulerStats,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue starting at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            tombstones: BTreeSet::new(),
            next_seq: 0,
            now: SimInstant::EPOCH,
            stats: SchedulerStats::default(),
        }
    }

    /// The current virtual time (the fire time of the last popped event).
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Number of pending events (cancelled ones no longer count, even while
    /// their tombstoned heap entries await lazy removal).
    pub fn len(&self) -> usize {
        self.heap.len() - self.tombstones.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fire time of the next heap entry.  May report a cancelled event's
    /// time: tombstones are only resolved on pop.
    pub fn peek_at(&self) -> Option<SimInstant> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Schedule `payload` at `at` (clamped to the present: events cannot
    /// fire in the past).
    pub fn schedule_at(&mut self, at: SimInstant, payload: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.scheduled += 1;
        self.heap.push(Reverse(Scheduled {
            at: at.max(self.now),
            seq,
            payload,
        }));
        EventId(seq)
    }

    /// Schedule `payload` after `delay` from the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: T) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, payload)
    }

    /// Cancel a pending event.  O(n): the heap is scanned to prove the id
    /// is actually pending (this is the reference oracle — the wheel does
    /// this in O(1)), then a tombstone defers removal to pop time.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let seq = id.0;
        if self.tombstones.contains(&seq) {
            return false;
        }
        if !self.heap.iter().any(|Reverse(s)| s.seq == seq) {
            return false;
        }
        self.tombstones.insert(seq);
        self.stats.cancelled += 1;
        true
    }

    /// Pop the next live event, advancing virtual time to its fire time.
    /// Tombstoned entries drained on the way are counted as stale; like the
    /// wheel, draining past them still advances the clock.
    pub fn pop(&mut self) -> Option<Event<T>> {
        loop {
            let Reverse(scheduled) = self.heap.pop()?;
            self.now = self.now.max(scheduled.at);
            if self.tombstones.remove(&scheduled.seq) {
                self.stats.stale += 1;
                continue;
            }
            return Some(Event {
                at: scheduled.at,
                id: EventId(scheduled.seq),
                payload: scheduled.payload,
            });
        }
    }

    /// Drain the whole batch of events sharing the next occupied fire time
    /// into `out` (cleared first), FIFO within the batch.
    pub fn pop_batch(&mut self, out: &mut Vec<Event<T>>) -> usize {
        out.clear();
        let Some(first) = self.pop() else {
            return 0;
        };
        let at = first.at;
        out.push(first);
        while let Some(Reverse(next)) = self.heap.peek() {
            if next.at != at {
                break;
            }
            let Some(Reverse(scheduled)) = self.heap.pop() else {
                break;
            };
            if self.tombstones.remove(&scheduled.seq) {
                self.stats.stale += 1;
                continue;
            }
            out.push(Event {
                at: scheduled.at,
                id: EventId(scheduled.seq),
                payload: scheduled.payload,
            });
        }
        out.len()
    }

    /// Scheduling/cancellation counters.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

impl<T> Scheduler<T> for EventQueue<T> {
    fn now(&self) -> SimInstant {
        EventQueue::now(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn schedule_at(&mut self, at: SimInstant, payload: T) -> EventId {
        EventQueue::schedule_at(self, at, payload)
    }
    fn schedule_after(&mut self, delay: SimDuration, payload: T) -> EventId {
        EventQueue::schedule_after(self, delay, payload)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        EventQueue::cancel(self, id)
    }
    fn pop(&mut self) -> Option<Event<T>> {
        EventQueue::pop(self)
    }
    fn pop_batch(&mut self, out: &mut Vec<Event<T>>) -> usize {
        EventQueue::pop_batch(self, out)
    }
    fn stats(&self) -> SchedulerStats {
        EventQueue::stats(self)
    }
}

// ---------------------------------------------------------------------------
// Shared router egress queues
// ---------------------------------------------------------------------------

/// Configuration of one shared router egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Maximum number of queued packets; arrivals beyond it are dropped.
    pub capacity: usize,
    /// Occupancy-driven CE marking law.
    pub aqm: OccupancyAqm,
    /// Serialization time per packet (the drain rate of the queue).
    pub service_time: SimDuration,
}

impl QueueConfig {
    /// A bottleneck queue with RED-style thresholds at `min`/`max` packets.
    pub fn bottleneck(capacity: usize, min: usize, max: usize) -> Self {
        QueueConfig {
            capacity,
            aqm: OccupancyAqm {
                min_thresh: min,
                max_thresh: max,
            },
            service_time: SimDuration::from_micros(500),
        }
    }
}

/// Running counters of one shared queue, for tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Packets admitted to the queue.
    pub enqueued: u64,
    /// Packets that left with a CE mark applied by this queue.
    pub marked: u64,
    /// Packets dropped (tail drop or AQM drop of not-ECT traffic).
    pub dropped: u64,
    /// Highest occupancy observed at any admission.
    pub peak_occupancy: usize,
}

#[derive(Debug)]
struct QueueState {
    config: QueueConfig,
    /// Departure times of the packets currently in the queue.
    departures: BinaryHeap<Reverse<SimInstant>>,
    /// Departure time of the most recently admitted packet.
    last_departure: SimInstant,
    stats: QueueStats,
    /// Occupancy observed at each arrival (drained, pre-admission), as a
    /// log-linear distribution — `peak_occupancy` tells the worst case,
    /// this tells where the queue actually sat.
    occupancy_hist: Histogram,
}

impl QueueState {
    fn drain(&mut self, now: SimInstant) {
        while let Some(Reverse(at)) = self.departures.peek() {
            if *at <= now {
                self.departures.pop();
            } else {
                break;
            }
        }
    }
}

/// The shared egress queues of a topology, keyed by router.
///
/// Only routers explicitly registered here queue packets; everything else
/// forwards as before.  An empty `SharedQueues` is the legacy behaviour.
#[derive(Debug, Default)]
pub struct SharedQueues {
    queues: BTreeMap<RouterId, QueueState>,
    faults: FaultStats,
}

impl SharedQueues {
    /// No shared queues: every hop forwards exactly as the plain path
    /// simulator does, with zero extra randomness.
    pub fn new() -> Self {
        SharedQueues::default()
    }

    /// Attach a shared egress queue to `router`.
    pub fn register(&mut self, router: RouterId, config: QueueConfig) {
        self.queues.insert(
            router,
            QueueState {
                config,
                departures: BinaryHeap::new(),
                last_departure: SimInstant::EPOCH,
                stats: QueueStats::default(),
                occupancy_hist: Histogram::standalone(),
            },
        );
    }

    /// Whether no queue is registered.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Whether `router` has a registered queue.
    pub fn has(&self, router: RouterId) -> bool {
        self.queues.contains_key(&router)
    }

    /// Current occupancy of `router`'s queue at `now` (after draining
    /// departed packets).
    pub fn occupancy(&mut self, router: RouterId, now: SimInstant) -> usize {
        match self.queues.get_mut(&router) {
            Some(state) => {
                state.drain(now);
                state.departures.len()
            }
            None => 0,
        }
    }

    /// Counters of `router`'s queue.
    pub fn stats(&self, router: RouterId) -> Option<QueueStats> {
        self.queues.get(&router).map(|s| s.stats)
    }

    /// Pass a packet carrying `ecn` through `router`'s egress queue at `now`.
    ///
    /// Returns the AQM decision plus the queueing delay the packet picks up
    /// waiting for service.  Routers without a registered queue forward
    /// unchanged, instantly, consuming no randomness.
    pub fn admit<R: Rng + ?Sized>(
        &mut self,
        router: RouterId,
        now: SimInstant,
        ecn: EcnCodepoint,
        rng: &mut R,
    ) -> (AqmDecision, SimDuration) {
        let Some(state) = self.queues.get_mut(&router) else {
            return (AqmDecision::Forward(ecn), SimDuration::ZERO);
        };
        state.drain(now);
        let occupancy = state.departures.len();
        state.stats.peak_occupancy = state.stats.peak_occupancy.max(occupancy);
        state.occupancy_hist.record(occupancy as u64);
        if occupancy >= state.config.capacity {
            state.stats.dropped += 1;
            return (AqmDecision::Drop, SimDuration::ZERO);
        }
        let decision = state.config.aqm.apply(ecn, occupancy, rng);
        if decision == AqmDecision::Drop {
            state.stats.dropped += 1;
            return (AqmDecision::Drop, SimDuration::ZERO);
        }
        let start = state.last_departure.max(now);
        let departure = start + state.config.service_time;
        state.departures.push(Reverse(departure));
        state.last_departure = departure;
        state.stats.enqueued += 1;
        if decision == AqmDecision::Forward(EcnCodepoint::Ce) && ecn != EcnCodepoint::Ce {
            state.stats.marked += 1;
        }
        (decision, departure - now)
    }

    /// Fold one fault-plan verdict into the run's fault counters.  Called
    /// by [`Path::transit_shared`](crate::path::Path::transit_shared) for
    /// every packet crossing a path with a non-empty plan.
    pub fn record_fault(&mut self, verdict: &FaultVerdict) {
        self.faults.record(verdict);
    }

    /// The fault-injection counters accumulated so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Per-router metrics of every registered queue, in router-id order:
    /// `queue.r<id>.{enqueued,marked,dropped}` counters, the
    /// `queue.r<id>.peak_occupancy` gauge and the `queue.r<id>.occupancy`
    /// arrival-occupancy histogram.  This is the read side of
    /// [`QueueStats`], which was previously write-only outside of tests.
    pub fn telemetry(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (router, state) in &self.queues {
            let prefix = format!("queue.r{}.", router.0);
            snap.set_counter(format!("{prefix}enqueued"), state.stats.enqueued);
            snap.set_counter(format!("{prefix}marked"), state.stats.marked);
            snap.set_counter(format!("{prefix}dropped"), state.stats.dropped);
            snap.set_gauge(
                format!("{prefix}peak_occupancy"),
                state.stats.peak_occupancy as u64,
            );
            snap.set_histogram(
                format!("{prefix}occupancy"),
                state.occupancy_hist.snapshot(),
            );
        }
        // Fault counters are emitted only when nonzero: fault-free runs —
        // every golden-pinned scenario — keep byte-identical telemetry.
        for (key, value) in [
            ("fault.drops.loss", self.faults.loss_drops),
            ("fault.drops.burst", self.faults.burst_drops),
            ("fault.drops.blackhole", self.faults.blackhole_drops),
            ("fault.drops.flap", self.faults.flap_drops),
            ("fault.corrupted", self.faults.corrupted),
            ("fault.duplicates", self.faults.duplicates),
            ("fault.dup_salvaged", self.faults.salvaged),
            ("fault.reordered", self.faults.reordered),
            ("fault.jittered", self.faults.jittered),
        ] {
            if value > 0 {
                snap.set_counter(key, value);
            }
        }
        snap
    }
}

// ---------------------------------------------------------------------------
// Flows and the engine
// ---------------------------------------------------------------------------

/// What a [`Flow`] wants after being woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStatus {
    /// Wake the flow again at (or after) the given instant.
    Sleep(SimInstant),
    /// The flow has finished; never wake it again.
    Done,
}

/// A sans-IO participant of the simulation.
///
/// A flow owns its endpoints and its randomness; the engine owns time.  On
/// each wake the flow performs all work possible at the current instant —
/// transmitting through (shared-queue aware) paths, delivering, handling
/// timeouts — and returns when it next needs the clock.
pub trait Flow {
    /// Wake the flow at `now` with access to the shared queues.
    fn on_wake(&mut self, now: SimInstant, net: &mut SharedQueues) -> FlowStatus;
}

/// One entry of the engine's event-order log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowWake {
    /// Virtual time of the wake.
    pub at: SimInstant,
    /// Index of the woken flow (in registration order).
    pub flow: usize,
}

/// Default capacity of the engine's wake log: large enough to retain every
/// wake of any probe-scale scenario in the workspace, small enough to bound
/// memory over arbitrarily long runs.
pub const DEFAULT_EVENT_LOG_CAPACITY: usize = 65_536;

/// Post-run observability bundle of one engine: deterministic metrics plus
/// the (ring-bounded) virtual-time wake trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineTelemetry {
    /// Engine counters merged with [`SharedQueues::telemetry`].
    pub metrics: MetricsSnapshot,
    /// Retained wake log, oldest first (see [`EngineCore::event_log`]).
    pub trace: Vec<FlowWake>,
}

/// The production engine: an [`EngineCore`] scheduling through the
/// hierarchical [`TimerWheel`].  Every observable output — event log,
/// telemetry, queue stats — is bit-identical to [`HeapEngine`]'s.
pub type Engine<'a> = EngineCore<'a, TimerWheel<usize>>;

/// The reference engine: an [`EngineCore`] scheduling through the original
/// binary-heap [`EventQueue`].  Kept for differential tests and heap-vs-
/// wheel benchmarks.
pub type HeapEngine<'a> = EngineCore<'a, EventQueue<usize>>;

/// The discrete-event scheduler: owns virtual time, the shared queues and
/// a [`Scheduler`] implementation, and drives registered flows to
/// completion.  Use the [`Engine`] alias (timer wheel) unless you are
/// differentially testing against the [`HeapEngine`] oracle.
pub struct EngineCore<'a, S: Scheduler<usize>> {
    queue: S,
    flows: Vec<&'a mut dyn Flow>,
    shared: SharedQueues,
    log: TraceRing<FlowWake>,
    max_events: usize,
    events_processed: u64,
    /// Reusable same-instant dispatch batch (see [`EngineCore::run`]).
    batch: Vec<Event<usize>>,
}

impl<'a, S: Scheduler<usize> + Default> EngineCore<'a, S> {
    /// An engine over the given shared queues.
    pub fn new(shared: SharedQueues) -> Self {
        EngineCore {
            queue: S::default(),
            flows: Vec::new(),
            shared,
            log: TraceRing::new(DEFAULT_EVENT_LOG_CAPACITY),
            max_events: 10_000_000,
            events_processed: 0,
            batch: Vec::new(),
        }
    }
}

impl<'a, S: Scheduler<usize>> EngineCore<'a, S> {
    /// Cap the number of events processed (a livelock guard; the default is
    /// ten million).
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// Retain at most `capacity` wake-log entries (the newest ones; the
    /// default is [`DEFAULT_EVENT_LOG_CAPACITY`]).  Evictions are counted
    /// in [`EngineCore::telemetry`] as `engine.trace.dropped`.
    pub fn with_event_log_capacity(mut self, capacity: usize) -> Self {
        self.log = TraceRing::new(capacity);
        self
    }

    /// Register a flow to start at the epoch.  Flows registered earlier wake
    /// first on ties.
    pub fn add_flow(&mut self, flow: &'a mut dyn Flow) -> usize {
        self.add_flow_at(SimInstant::EPOCH, flow)
    }

    /// Register a flow to start at `start`.
    pub fn add_flow_at(&mut self, start: SimInstant, flow: &'a mut dyn Flow) -> usize {
        let index = self.flows.len();
        self.flows.push(flow);
        self.queue.schedule_at(start, index);
        index
    }

    /// The current virtual time.
    pub fn now(&self) -> SimInstant {
        self.queue.now()
    }

    /// The shared queues (e.g. to read [`QueueStats`] after a run).
    pub fn shared(&self) -> &SharedQueues {
        &self.shared
    }

    /// The order in which flows were woken — identical across runs for
    /// identical inputs (and across scheduler implementations, which the
    /// differential tests assert).  Bounded: only the newest
    /// [`EngineCore::with_event_log_capacity`] wakes are retained.
    pub fn event_log(&self) -> Vec<FlowWake> {
        self.log.to_vec()
    }

    /// Total number of events processed so far (unbounded, unlike the log).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Deterministic metrics and the retained wake trace: engine counters
    /// (`engine.events_processed`, `engine.flows`, trace accounting, the
    /// virtual clock) merged with the per-router queue metrics of
    /// [`SharedQueues::telemetry`].  Purely a read — taking telemetry does
    /// not perturb the simulation, so instrumented and uninstrumented runs
    /// stay bit-identical.
    pub fn telemetry(&self) -> EngineTelemetry {
        let mut metrics = self.shared.telemetry();
        metrics.set_counter("engine.events_processed", self.events_processed);
        metrics.set_counter("engine.flows", self.flows.len() as u64);
        metrics.set_counter("engine.trace.recorded", self.log.recorded());
        metrics.set_counter("engine.trace.dropped", self.log.dropped());
        metrics.set_gauge("engine.virtual_now_us", self.queue.now().as_micros());
        // Cancellation counters are emitted only when nonzero: runs that
        // never cancel — every golden-pinned scenario — keep byte-identical
        // telemetry documents across the scheduler swap.
        let sched = self.queue.stats();
        if sched.cancelled > 0 {
            metrics.set_counter("engine.sched.cancelled", sched.cancelled);
        }
        if sched.stale > 0 {
            metrics.set_counter("engine.sched.stale_pops", sched.stale);
        }
        EngineTelemetry {
            metrics,
            trace: self.log.to_vec(),
        }
    }

    /// The scheduler's own counters (also folded into
    /// [`EngineCore::telemetry`] when nonzero).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.queue.stats()
    }

    /// Schedule an extra wake for the flow at `index` (as returned by
    /// [`EngineCore::add_flow`]) at `at`.  Unlike the automatic reschedule
    /// of [`FlowStatus::Sleep`], the returned id makes this wake
    /// cancellable via [`EngineCore::cancel_wake`] — O(1) on the default
    /// wheel scheduler.
    pub fn schedule_wake_at(&mut self, at: SimInstant, index: usize) -> EventId {
        self.queue.schedule_at(at, index)
    }

    /// Cancel a wake scheduled with [`EngineCore::schedule_wake_at`].
    /// Returns `false` when it already fired or was already cancelled;
    /// successful cancels surface in telemetry as `engine.sched.cancelled`
    /// (and, once the dead entry drains, `engine.sched.stale_pops`) —
    /// never silently dropped.
    pub fn cancel_wake(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Run until every flow is done (or the event cap is hit).
    ///
    /// Events are drained in same-instant batches ([`Scheduler::pop_batch`])
    /// to amortise scheduler dispatch across flows sharing a tick — wakes
    /// scheduled *during* a batch land at a later sequence number and thus
    /// in a later batch, so the observable wake order is provably the same
    /// as popping one event at a time.
    pub fn run(&mut self) {
        let mut processed = 0usize;
        let mut batch = std::mem::take(&mut self.batch);
        'run: loop {
            if self.queue.pop_batch(&mut batch) == 0 {
                break;
            }
            for &event in &batch {
                processed += 1;
                if processed > self.max_events {
                    break 'run;
                }
                self.events_processed += 1;
                let index = event.payload;
                self.log.push(FlowWake {
                    at: event.at,
                    flow: index,
                });
                let Some(flow) = self.flows.get_mut(index) else {
                    continue;
                };
                match flow.on_wake(event.at, &mut self.shared) {
                    FlowStatus::Sleep(at) => {
                        self.queue.schedule_at(at, index);
                    }
                    FlowStatus::Done => {}
                }
            }
        }
        self.batch = batch;
    }
}

// ---------------------------------------------------------------------------
// Cross traffic
// ---------------------------------------------------------------------------

/// An opt-in background-load scenario: `flows` paced flows pushing packets
/// through the measured path's bottleneck router, which gets a shared egress
/// queue.  With enough background load the queue occupancy crosses the AQM
/// thresholds and the *measured* flow starts seeing CE marks — marking
/// becomes a property of congestion instead of a per-flow constant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossTraffic {
    /// Number of background flows; `0` disables the scenario entirely.
    pub flows: u32,
    /// Packets each background flow sends before stopping.
    pub packets_per_flow: u32,
    /// Pacing interval between packets of one background flow.
    pub interval: SimDuration,
    /// Bottleneck queue capacity in packets.
    pub queue_capacity: u32,
    /// Occupancy at which CE marking begins.
    pub mark_min_thresh: u32,
    /// Occupancy at which every ECT packet is marked.
    pub mark_max_thresh: u32,
    /// Serialization time per packet at the bottleneck.
    pub service_time: SimDuration,
}

impl CrossTraffic {
    /// No cross traffic: the legacy single-flow behaviour, bit for bit.
    pub fn none() -> Self {
        CrossTraffic {
            flows: 0,
            packets_per_flow: 0,
            interval: SimDuration::ZERO,
            queue_capacity: 0,
            mark_min_thresh: 0,
            mark_max_thresh: 0,
            service_time: SimDuration::ZERO,
        }
    }

    /// A congested bottleneck: 32 background flows arriving well above the
    /// service rate, so the queue sits in the certain-marking region while
    /// the measured connection runs.
    pub fn congested() -> Self {
        CrossTraffic {
            flows: 32,
            packets_per_flow: 64,
            interval: SimDuration::from_millis(1),
            queue_capacity: 256,
            mark_min_thresh: 8,
            mark_max_thresh: 24,
            service_time: SimDuration::from_micros(500),
        }
    }

    /// Whether the scenario is active.
    pub fn is_enabled(&self) -> bool {
        self.flows > 0
    }

    /// The queue configuration for the bottleneck router.
    pub fn queue_config(&self) -> QueueConfig {
        QueueConfig {
            capacity: self.queue_capacity as usize,
            aqm: OccupancyAqm {
                min_thresh: self.mark_min_thresh as usize,
                max_thresh: self.mark_max_thresh as usize,
            },
            service_time: self.service_time,
        }
    }

    /// The bottleneck of a forward path: its last hop — the egress into the
    /// destination network, which all traffic towards the measured host
    /// shares.
    pub fn bottleneck_of(path: &Path) -> Option<RouterId> {
        path.hops.last().map(|hop| hop.router.id)
    }

    /// Build the shared queues and background flows for a measured forward
    /// path.  Returns `None` when disabled or when the path has no hops.
    pub fn instantiate(&self, forward: &Path, seed: u64) -> Option<(SharedQueues, Vec<LoadFlow>)> {
        if !self.is_enabled() {
            return None;
        }
        let bottleneck = Self::bottleneck_of(forward)?;
        let hop = forward.hops.last()?.clone();
        let mut queues = SharedQueues::new();
        queues.register(bottleneck, self.queue_config());
        // Background load shares the impaired link, so the forward path's
        // fault plan rides along onto the derived one-hop load path — an
        // empty plan keeps this draw-free and bit-identical to before.
        let load_path = Path::new(vec![hop]).with_fault(forward.fault.clone());
        let flows = LoadFlow::fleet(
            &load_path,
            self.flows,
            self.packets_per_flow as u64,
            self.interval,
            EcnCodepoint::Ect0,
            seed,
        );
        Some((queues, flows))
    }
}

/// A background load generator: a flow that pushes ECT(0)-marked UDP
/// datagrams down a (typically one-hop) path on a fixed pacing schedule.
///
/// Load flows are what make shared queues *shared*: their packets occupy the
/// same egress queue as the measured connection's.
#[derive(Debug)]
pub struct LoadFlow {
    path: Path,
    packets: u64,
    interval: SimDuration,
    ecn: EcnCodepoint,
    rng: StdRng,
    sent: u64,
    delivered: u64,
}

impl LoadFlow {
    /// A load flow sending `packets` ECT(0) datagrams, one every `interval`.
    pub fn new(path: Path, packets: u64, interval: SimDuration, seed: u64) -> Self {
        LoadFlow {
            path,
            packets,
            interval,
            ecn: EcnCodepoint::Ect0,
            rng: StdRng::seed_from_u64(seed),
            sent: 0,
            delivered: 0,
        }
    }

    /// Override the codepoint the generated datagrams carry (default ECT(0)).
    /// Workload scenarios use this so background load follows the same ECN
    /// variant as the measured applications.
    pub fn with_ecn(mut self, ecn: EcnCodepoint) -> Self {
        self.ecn = ecn;
        self
    }

    /// The single code path deriving a fleet of load flows from one seed —
    /// used both by [`CrossTraffic::instantiate`] and by workload scenarios
    /// expressing background load as a regular app, so the two never drift.
    pub fn fleet(
        path: &Path,
        flows: u32,
        packets_per_flow: u64,
        interval: SimDuration,
        ecn: EcnCodepoint,
        seed: u64,
    ) -> Vec<LoadFlow> {
        (0..flows)
            .map(|i| {
                LoadFlow::new(
                    path.clone(),
                    packets_per_flow,
                    interval,
                    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(u64::from(i)),
                )
                .with_ecn(ecn)
            })
            .collect()
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets that made it through the path (not dropped by the queue).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    fn datagram(&self) -> IpDatagram {
        // Benchmarking address range (RFC 2544): never collides with
        // simulated vantage points or servers.
        let header = match self.path.hops.first().map(|h| h.router.address) {
            Some(IpAddr::V6(_)) => IpHeader::V6(
                Ipv6Header::new(
                    // 2001:db8:bbbb::1 / ::2 — const-constructed so the
                    // per-datagram path neither parses strings nor panics.
                    std::net::Ipv6Addr::new(0x2001, 0x0db8, 0xbbbb, 0, 0, 0, 0, 1),
                    std::net::Ipv6Addr::new(0x2001, 0x0db8, 0xbbbb, 0, 0, 0, 0, 2),
                    IpProtocol::Udp,
                    64,
                )
                .with_ecn(self.ecn),
            ),
            _ => IpHeader::V4(
                Ipv4Header::new(
                    std::net::Ipv4Addr::new(198, 18, 0, 1),
                    std::net::Ipv4Addr::new(198, 19, 0, 1),
                    IpProtocol::Udp,
                    64,
                )
                .with_ecn(self.ecn),
            ),
        };
        IpDatagram::new(header, vec![0u8; 64])
    }
}

impl Flow for LoadFlow {
    fn on_wake(&mut self, now: SimInstant, net: &mut SharedQueues) -> FlowStatus {
        if self.sent >= self.packets {
            return FlowStatus::Done;
        }
        let datagram = self.datagram();
        if self
            .path
            .transit_shared(&datagram, now, &mut self.rng, net)
            .is_delivered()
        {
            self.delivered += 1;
        }
        self.sent += 1;
        if self.sent >= self.packets {
            FlowStatus::Done
        } else {
            FlowStatus::Sleep(now + self.interval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Router;
    use crate::topology::Asn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn event_queue_orders_by_time_then_fifo() {
        let mut queue = EventQueue::new();
        let t1 = SimInstant::EPOCH + SimDuration::from_millis(1);
        queue.schedule_at(t1, "b");
        queue.schedule_at(SimInstant::EPOCH, "a");
        queue.schedule_at(t1, "c");
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["a", "b", "c"], "same-instant events must be FIFO");
    }

    #[test]
    fn event_queue_clamps_past_events_to_now() {
        let mut queue = EventQueue::new();
        queue.schedule_at(SimInstant::EPOCH + SimDuration::from_millis(5), ());
        queue.pop().unwrap();
        queue.schedule_at(SimInstant::EPOCH, ());
        let event = queue.pop().unwrap();
        assert_eq!(event.at, SimInstant::EPOCH + SimDuration::from_millis(5));
    }

    #[test]
    fn unregistered_router_forwards_without_randomness() {
        let mut queues = SharedQueues::new();
        let mut rng = StdRng::seed_from_u64(1);
        let before: u64 = rng.gen();
        let mut rng = StdRng::seed_from_u64(1);
        let (decision, wait) =
            queues.admit(RouterId(9), SimInstant::EPOCH, EcnCodepoint::Ect0, &mut rng);
        assert_eq!(decision, AqmDecision::Forward(EcnCodepoint::Ect0));
        assert_eq!(wait, SimDuration::ZERO);
        assert_eq!(rng.gen::<u64>(), before, "no rng draw on unshared hops");
    }

    #[test]
    fn queue_occupancy_drains_over_time() {
        let mut queues = SharedQueues::new();
        queues.register(RouterId(1), QueueConfig::bottleneck(8, 4, 6));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..3 {
            queues.admit(RouterId(1), SimInstant::EPOCH, EcnCodepoint::Ect0, &mut rng);
        }
        assert_eq!(queues.occupancy(RouterId(1), SimInstant::EPOCH), 3);
        // Service time is 500 µs per packet; after 2 ms all three are gone.
        let later = SimInstant::EPOCH + SimDuration::from_millis(2);
        assert_eq!(queues.occupancy(RouterId(1), later), 0);
    }

    #[test]
    fn full_queue_tail_drops() {
        let mut queues = SharedQueues::new();
        queues.register(RouterId(1), QueueConfig::bottleneck(2, 100, 200));
        let mut rng = StdRng::seed_from_u64(1);
        let mut outcomes = Vec::new();
        for _ in 0..3 {
            let (d, _) = queues.admit(RouterId(1), SimInstant::EPOCH, EcnCodepoint::Ect0, &mut rng);
            outcomes.push(d);
        }
        assert_eq!(outcomes[0], AqmDecision::Forward(EcnCodepoint::Ect0));
        assert_eq!(outcomes[1], AqmDecision::Forward(EcnCodepoint::Ect0));
        assert_eq!(outcomes[2], AqmDecision::Drop);
        assert_eq!(queues.stats(RouterId(1)).unwrap().dropped, 1);
    }

    #[test]
    fn occupancy_above_max_thresh_marks_every_ect_packet() {
        let mut queues = SharedQueues::new();
        queues.register(RouterId(1), QueueConfig::bottleneck(32, 2, 4));
        let mut rng = StdRng::seed_from_u64(1);
        // Fill past the max threshold…
        for _ in 0..4 {
            queues.admit(RouterId(1), SimInstant::EPOCH, EcnCodepoint::Ect0, &mut rng);
        }
        // …then every further ECT packet is deterministically marked.
        let (decision, _) =
            queues.admit(RouterId(1), SimInstant::EPOCH, EcnCodepoint::Ect0, &mut rng);
        assert_eq!(decision, AqmDecision::Forward(EcnCodepoint::Ce));
        assert!(queues.stats(RouterId(1)).unwrap().marked >= 1);
    }

    #[test]
    fn load_flows_share_a_bottleneck_and_mark_each_other() {
        let hop = crate::path::Hop::new(Router::transparent(1, Asn(680)));
        let path = Path::new(vec![hop]);
        let cross = CrossTraffic {
            flows: 2,
            packets_per_flow: 16,
            interval: SimDuration::from_micros(100),
            queue_capacity: 64,
            mark_min_thresh: 1,
            mark_max_thresh: 2,
            service_time: SimDuration::from_millis(1),
        };
        let (queues, mut flows) = cross.instantiate(&path, 7).expect("enabled scenario");
        let mut engine = Engine::new(queues);
        for flow in flows.iter_mut() {
            engine.add_flow(flow);
        }
        engine.run();
        let stats = engine
            .shared()
            .stats(RouterId(1))
            .expect("registered queue");
        assert!(stats.marked > 0, "combined occupancy must trigger CE marks");

        // A single flow paced slower than the drain rate never crosses the
        // marking threshold: congestion needs company.
        let mut queues = SharedQueues::new();
        queues.register(RouterId(1), cross.queue_config());
        let mut solo = LoadFlow::new(path.clone(), 16, SimDuration::from_millis(2), 7);
        let mut engine = Engine::new(queues);
        engine.add_flow(&mut solo);
        engine.run();
        let stats = engine
            .shared()
            .stats(RouterId(1))
            .expect("registered queue");
        assert_eq!(stats.marked, 0, "a lone slow flow must not be marked");
    }

    #[test]
    fn not_ect_load_fleet_is_marked_never_and_tail_dropped_only() {
        // `LoadFlow::fleet` with a NotEct override models ECN-off background
        // load: RFC 3168 §6.1.1 forbids marking it, so the only congestion
        // signal left is tail drop at capacity.
        let hop = crate::path::Hop::new(Router::transparent(1, Asn(680)));
        let path = Path::new(vec![hop]);
        let mut queues = SharedQueues::new();
        queues.register(RouterId(1), QueueConfig::bottleneck(4, 1, 2));
        let mut flows = LoadFlow::fleet(
            &path,
            8,
            16,
            SimDuration::from_micros(100),
            EcnCodepoint::NotEct,
            11,
        );
        let mut engine = Engine::new(queues);
        for flow in flows.iter_mut() {
            engine.add_flow(flow);
        }
        engine.run();
        let stats = engine.shared().stats(RouterId(1)).expect("registered");
        assert_eq!(stats.marked, 0, "not-ECT load must never be CE-marked");
        assert!(stats.dropped > 0, "overload must surface as tail drops");
    }

    #[test]
    fn reverse_direction_hops_do_not_share_the_forward_queue() {
        use crate::path::DuplexPath;
        use crate::topology::{build_duplex_path, TransitProfile};

        // Both directions of a duplex path are numbered from 1 by their
        // builders; the reverse-direction bit must keep them out of each
        // other's queues.
        let duplex = build_duplex_path(
            Asn(680),
            Asn(16509),
            TransitProfile::Clean,
            TransitProfile::Clean,
            false,
        );
        let forward_bottleneck = CrossTraffic::bottleneck_of(&duplex.forward).unwrap();
        for hop in &duplex.reverse.hops {
            assert_ne!(
                hop.router.id, forward_bottleneck,
                "reverse hop collides with the forward bottleneck id"
            );
        }

        // Same for the mirrored-reverse constructor.
        let hop = crate::path::Hop::new(Router::transparent(1, Asn(680)));
        let mirrored = DuplexPath::symmetric_clean_reverse(Path::new(vec![hop]));
        let mut queues = SharedQueues::new();
        queues.register(
            CrossTraffic::bottleneck_of(&mirrored.forward).unwrap(),
            QueueConfig::bottleneck(8, 1, 2),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let dgram = LoadFlow::new(mirrored.forward.clone(), 1, SimDuration::ZERO, 1).datagram();
        // Forward transits occupy the queue…
        mirrored
            .forward
            .transit_shared(&dgram, SimInstant::EPOCH, &mut rng, &mut queues);
        assert_eq!(queues.stats(RouterId(1)).unwrap().enqueued, 1);
        // …reverse transits of the "same" router do not.
        mirrored
            .reverse
            .transit_shared(&dgram, SimInstant::EPOCH, &mut rng, &mut queues);
        assert_eq!(
            queues.stats(RouterId(1)).unwrap().enqueued,
            1,
            "reverse direction must use its own egress queue"
        );
    }

    #[test]
    fn engine_event_order_is_reproducible() {
        let run = || {
            let hop = crate::path::Hop::new(Router::transparent(3, Asn(1299)));
            let path = Path::new(vec![hop]);
            let cross = CrossTraffic::congested();
            let (queues, mut flows) = cross.instantiate(&path, 42).expect("enabled");
            let mut engine = Engine::new(queues);
            for flow in flows.iter_mut() {
                engine.add_flow(flow);
            }
            engine.run();
            engine.event_log().to_vec()
        };
        let first = run();
        let second = run();
        assert!(!first.is_empty());
        assert_eq!(first, second, "event order must be identical across runs");
    }

    #[test]
    fn event_log_ring_keeps_the_newest_wakes_and_counts_evictions() {
        let run = |capacity: Option<usize>| {
            let hop = crate::path::Hop::new(Router::transparent(3, Asn(1299)));
            let path = Path::new(vec![hop]);
            let cross = CrossTraffic::congested();
            let (queues, mut flows) = cross.instantiate(&path, 42).expect("enabled");
            let mut engine = Engine::new(queues);
            if let Some(capacity) = capacity {
                engine = engine.with_event_log_capacity(capacity);
            }
            for flow in flows.iter_mut() {
                engine.add_flow(flow);
            }
            engine.run();
            (engine.event_log(), engine.telemetry())
        };
        let (full, full_telemetry) = run(None);
        let (bounded, bounded_telemetry) = run(Some(16));
        assert_eq!(bounded.len(), 16);
        assert_eq!(
            bounded,
            full[full.len() - 16..],
            "the ring must retain exactly the newest wakes"
        );
        // Bounding the trace must not perturb the simulation itself…
        assert_eq!(
            full_telemetry.metrics.counter("engine.events_processed"),
            bounded_telemetry.metrics.counter("engine.events_processed"),
        );
        // …and the telemetry must account for every wake, retained or not.
        assert_eq!(
            bounded_telemetry.metrics.counter("engine.trace.recorded"),
            Some(full.len() as u64)
        );
        assert_eq!(
            bounded_telemetry.metrics.counter("engine.trace.dropped"),
            Some(full.len() as u64 - 16)
        );
        assert_eq!(
            full_telemetry.metrics.counter("engine.trace.dropped"),
            Some(0)
        );
    }

    #[test]
    fn queue_telemetry_mirrors_queue_stats() {
        let hop = crate::path::Hop::new(Router::transparent(1, Asn(680)));
        let path = Path::new(vec![hop]);
        let (queues, mut flows) = CrossTraffic::congested()
            .instantiate(&path, 7)
            .expect("enabled");
        let mut engine = Engine::new(queues);
        for flow in flows.iter_mut() {
            engine.add_flow(flow);
        }
        engine.run();
        let stats = engine.shared().stats(RouterId(1)).expect("registered");
        let telemetry = engine.telemetry();
        assert_eq!(
            telemetry.metrics.counter("queue.r1.enqueued"),
            Some(stats.enqueued)
        );
        assert_eq!(
            telemetry.metrics.counter("queue.r1.marked"),
            Some(stats.marked)
        );
        assert_eq!(
            telemetry.metrics.counter("queue.r1.dropped"),
            Some(stats.dropped)
        );
        assert_eq!(
            telemetry.metrics.gauge("queue.r1.peak_occupancy"),
            Some(stats.peak_occupancy as u64)
        );
        let occupancy = telemetry
            .metrics
            .histogram("queue.r1.occupancy")
            .expect("occupancy histogram");
        assert_eq!(
            occupancy.count,
            stats.enqueued + stats.dropped,
            "every arrival must be sampled, admitted or not"
        );
    }
}
